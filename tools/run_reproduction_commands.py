#!/usr/bin/env python
"""Execute every command documented in docs/REPRODUCTION.md.

The reproduction guide's figure-by-figure tables promise that each
listed invocation works as written.  This script keeps that promise
honest in CI: it extracts every backtick-quoted ``python -m repro ...``
or ``... python -m pytest ...`` command from the *tables* of
``docs/REPRODUCTION.md`` (the prose/bash blocks at the end repeat table
commands at larger ``--scale``, so they are skipped) and runs each one,
failing if any exits non-zero.

Usage::

    python tools/run_reproduction_commands.py [--list]

Figure output goes to /dev/null — this checks the commands execute, not
what they print (the benchmarks in ``benchmarks/`` assert the shapes).
A throwaway cache directory is used so CI runs never collide with a
developer's cache.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

COMMAND = re.compile(r"`((?:PYTHONPATH=\S+ )?python -m (?:repro|pytest)[^`]*)`")


def extract_commands(doc: Path):
    """Backtick-quoted repro/pytest commands from the document's tables."""
    commands = []
    for line in doc.read_text(encoding="utf-8").splitlines():
        if not line.lstrip().startswith("|"):
            continue
        for match in COMMAND.finditer(line):
            command = match.group(1).strip()
            if command not in commands:
                commands.append(command)
    return commands


def main(argv) -> int:
    """Run (or with ``--list`` just print) the documented commands."""
    root = Path(__file__).resolve().parents[1]
    doc = root / "docs" / "REPRODUCTION.md"
    commands = extract_commands(doc)
    if not commands:
        print(f"no commands found in {doc} — table format changed?")
        return 1
    if "--list" in argv[1:]:
        print("\n".join(commands))
        return 0

    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-cache-") as cache_dir:
        env["REPRO_CACHE_DIR"] = cache_dir
        for command in commands:
            start = time.perf_counter()
            proc = subprocess.run(
                command,
                shell=True,
                cwd=root,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            wall = time.perf_counter() - start
            status = "ok" if proc.returncode == 0 else f"FAIL ({proc.returncode})"
            print(f"{status:10s} {wall:6.1f}s  {command}")
            if proc.returncode != 0:
                failures += 1
                sys.stderr.write(proc.stderr.decode(errors="replace")[-2000:] + "\n")
    if failures:
        print(f"{failures}/{len(commands)} documented command(s) failed")
        return 1
    print(f"all {len(commands)} documented commands ran clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
