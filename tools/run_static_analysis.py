#!/usr/bin/env python
"""CI entry point for the static gates: ``repro check`` + the mypy ratchet.

Two phases, one exit code:

1. **Domain rules** — run the :mod:`repro.analysis.static` rules
   (DET/ORD/PROB/SCHED/PICKLE/FLOAT/OBS plus the project-wide TAINT and
   UNIT) over ``src/repro`` and gate the per-rule counts against the
   findings baseline ``tools/findings_baseline.json`` (new findings fail;
   counts below a ceiling auto-lower it — the ratchet only tightens).
   ``--update-findings-baseline`` rewrites the baseline with the measured
   counts; ``--require-baseline`` also fails when the baseline file is
   missing.
2. **Typing** — run mypy over ``src/repro`` using the ``[tool.mypy]``
   configuration in ``pyproject.toml`` (strict-level flags for
   ``repro.sim`` / ``repro.aqm`` / ``repro.metrics``, lenient elsewhere)
   and compare the error count against ``tools/mypy_ratchet.json``:

   * ``max_errors: null`` — report-only: the baseline has not been
     recorded yet, so the count is printed but never fails the build;
   * ``max_errors: N`` — the count must not exceed N.  Lower N as debt is
     paid down; ``--update-ratchet`` rewrites the file with the measured
     count.

   ``--require-baseline`` turns the ratchet from report-only into a hard
   gate: a ``null`` baseline is itself a failure (CI uses this so the
   typing gate can never silently fall back to report-only).

   When mypy is not installed (the pinned simulation container has no
   network access), the phase is skipped with a note — the domain rules
   still gate.

Usage::

    python tools/run_static_analysis.py [--format human|json]
                                        [--skip-mypy] [--update-ratchet]
                                        [--require-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RATCHET_PATH = REPO_ROOT / "tools" / "mypy_ratchet.json"
FINDINGS_BASELINE_PATH = REPO_ROOT / "tools" / "findings_baseline.json"

sys.path.insert(0, str(REPO_ROOT / "src"))


def run_domain_rules(
    output_format: str,
    update_baseline: bool = False,
    require_baseline: bool = False,
) -> int:
    """Phase 1: repro check rules gated by the findings baseline."""
    from repro.analysis.static import analyze_paths, apply_baseline

    report = analyze_paths([REPO_ROOT / "src" / "repro"])
    if output_format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format_human())
    return apply_baseline(
        report,
        FINDINGS_BASELINE_PATH,
        update=update_baseline,
        require=require_baseline,
    )


def run_mypy(update_ratchet: bool, require_baseline: bool = False) -> int:
    """Phase 2: the typing ratchet; returns 0 ok / 1 over-budget."""
    try:
        from mypy import api as mypy_api
    except ImportError:
        print("mypy: not installed; skipping the typing gate")
        return 0

    stdout, stderr, _status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml"),
         str(REPO_ROOT / "src" / "repro")]
    )
    errors = sum(1 for line in stdout.splitlines() if ": error:" in line)
    if stderr.strip():
        print(stderr.strip())
    print(f"mypy: {errors} error(s)")

    ratchet = json.loads(RATCHET_PATH.read_text()) if RATCHET_PATH.exists() else {}
    ceiling = ratchet.get("max_errors")

    if update_ratchet:
        ratchet["max_errors"] = errors
        RATCHET_PATH.write_text(json.dumps(ratchet, indent=2, sort_keys=True) + "\n")
        print(f"mypy: ratchet updated to {errors} in {RATCHET_PATH}")
        return 0
    if ceiling is None:
        if require_baseline:
            print("mypy: FAIL — no baseline recorded (max_errors: null) but "
                  "--require-baseline was given; run --update-ratchet to pin "
                  "the ceiling")
            return 1
        print("mypy: no baseline recorded (max_errors: null) — report only; "
              "run with --update-ratchet to start gating")
        return 0
    if errors > ceiling:
        print(f"mypy: FAIL — {errors} error(s) exceeds the ratchet ceiling "
              f"of {ceiling}; fix the new errors or (only for justified "
              f"debt) raise {RATCHET_PATH.name}")
        for line in stdout.splitlines():
            if ": error:" in line:
                print(f"  {line}")
        return 1
    if errors < ceiling:
        print(f"mypy: {ceiling - errors} error(s) below the ceiling — "
              "consider lowering the ratchet (--update-ratchet)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--format", choices=["human", "json"], default="human",
                        dest="output_format")
    parser.add_argument("--skip-mypy", action="store_true",
                        help="run only the domain rules")
    parser.add_argument("--update-ratchet", action="store_true",
                        help="rewrite tools/mypy_ratchet.json with the "
                             "measured mypy error count")
    parser.add_argument("--require-baseline", action="store_true",
                        help="fail (instead of report-only) when the mypy "
                             "ratchet or findings baseline is missing")
    parser.add_argument("--update-findings-baseline", action="store_true",
                        help="rewrite tools/findings_baseline.json with the "
                             "measured per-rule finding counts")
    args = parser.parse_args(argv)

    findings_rc = run_domain_rules(
        args.output_format,
        update_baseline=args.update_findings_baseline,
        require_baseline=args.require_baseline,
    )
    mypy_rc = 0 if args.skip_mypy else run_mypy(
        args.update_ratchet, require_baseline=args.require_baseline
    )
    return 1 if findings_rc or mypy_rc else 0


if __name__ == "__main__":
    raise SystemExit(main())
