#!/usr/bin/env python
"""Fail on broken intra-repo markdown links.

Scans every ``*.md`` file in the repository (skipping dot-directories)
for markdown links and checks that each link whose target is a relative
path resolves to an existing file or directory.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
ignored; an anchor suffix on a file link (``docs/FOO.md#section``) is
stripped before the existence check.

Usage::

    python tools/check_markdown_links.py [ROOT]

Exits 1 and lists every broken link if any target is missing.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    """Yield repo markdown files, skipping hidden and cache directories."""
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        if "__pycache__" in path.parts:
            continue
        yield path


def broken_links(root: Path):
    """Return (file, link) pairs whose relative target does not exist."""
    failures = []
    for md in iter_markdown_files(root):
        for match in LINK.finditer(md.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            if not resolved.exists():
                failures.append((md.relative_to(root), target))
    return failures


def main(argv) -> int:
    """Entry point: check links under ``argv[1]`` (default: repo root)."""
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parents[1]
    failures = broken_links(root)
    for md, target in failures:
        print(f"BROKEN {md}: ({target})")
    checked = len(list(iter_markdown_files(root)))
    if failures:
        print(f"{len(failures)} broken link(s) across {checked} markdown files")
        return 1
    print(f"all intra-repo links resolve ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
