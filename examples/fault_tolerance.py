#!/usr/bin/env python3
"""Fault tolerance: AQMs under injected faults, and sweeps that survive
broken cells.

Part 1 drives PI2 and PIE through the same hostile schedule — a 1 s
bottleneck outage followed by a 4 s window of Gilbert–Elliott bursty
loss — with invariant checking enabled, and shows each controller
re-pinning its 20 ms target once the faults clear.

Part 2 runs a coexistence sweep in which one cell's AQM is sabotaged to
diverge (its controller update returns NaN).  With ``on_error="capture"``
the sweep retries the cell on a bumped seed, records a structured failure
with the virtual time of the divergence, and still completes every other
cell — a 25-cell overnight sweep no longer dies at cell 23.

Run:  python examples/fault_tolerance.py
"""

import random

from repro.aqm.pi import PiAqm
from repro.harness import (
    Experiment,
    FlowGroup,
    pi2_factory,
    pie_factory,
    run_coexistence_grid,
    run_experiment,
)
from repro.net.faults import BurstLossFault, LinkFlapFault

FAULTS = [
    LinkFlapFault(10.0, 1.0),
    BurstLossFault(15.0, 4.0, loss_rate=0.05, mean_burst=8.0),
]


def run_through_faults(name, factory):
    result = run_experiment(
        Experiment(
            capacity_bps=10e6,
            duration=40.0,
            warmup=5.0,
            aqm_factory=factory,
            flows=[FlowGroup(cc="reno", count=5, rtt=0.02)],
            faults=FAULTS,
            validate=True,
        )
    )
    print(f"\n=== {name} through link flap + burst loss ===")
    for t, msg in result.fault_timeline:
        print(f"  t={t:6.2f}s  {msg}")
    during = result.queue_delay.window(10.0, 19.0)
    after = result.queue_delay.window(30.0, 40.0)
    print(f"  queue delay during faults  mean {during.mean() * 1e3:6.1f} ms")
    print(f"  queue delay after recovery mean {after.mean() * 1e3:6.1f} ms"
          f"  (target 20 ms)")
    print(f"  fault-gate drops {result.queue_stats.fault_dropped}"
          f"   invariant checks passed {result.invariant_checks}")


def divergent_pi_factory():
    """A PI factory whose first build is sabotaged: its controller sees a
    NaN delay on every update, so the run diverges deterministically."""
    built = {"n": 0}

    def make(rng: random.Random):
        built["n"] += 1
        aqm = PiAqm(rng=rng)
        if built["n"] <= 2:  # first attempt and its seed-bumped retry
            original = aqm.controller.update

            def poisoned(delay, gain_scale=1.0):
                return original(float("nan"))

            aqm.controller.update = poisoned
        return aqm

    return make


def resilient_sweep():
    print("\n=== resilient sweep with one sabotaged cell ===")
    outcome = run_coexistence_grid(
        divergent_pi_factory(),
        links_mbps=[10],
        rtts_ms=[10, 20, 40],
        duration=4.0,
        warmup=1.0,
        on_error="capture",
        max_retries=1,
    )
    print(f"  cells completed: {len(outcome)} of 3")
    print("  " + outcome.failure_report().replace("\n", "\n  "))


def main():
    run_through_faults("PI2", pi2_factory())
    run_through_faults("PIE", pie_factory())
    resilient_sweep()
    print("\nSweeps degrade gracefully: partial results plus a structured "
          "failure report, never a dead overnight run.")


if __name__ == "__main__":
    main()
