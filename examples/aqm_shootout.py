#!/usr/bin/env python3
"""AQM shoot-out: tail-drop, RED, CoDel, PIE, bare-PIE, PI2 on one workload.

The paper's Section 3 traces the lineage RED → PI → PIE → PI2 (with CoDel
teaching the time-units lesson along the way).  This example runs the
whole family on the same scenario — 10 Reno flows, 10 Mb/s, 100 ms RTT —
and prints queue delay, utilization, and loss, showing each generation's
trade-off:

* tail-drop: full buffer, huge standing queue (bufferbloat);
* RED: delay grows with load (pushes back with both delay and loss);
* CoDel / PIE / PI2: delay pinned near their targets, PI2 with the
  simplest algorithm of the three.

Run:  python examples/aqm_shootout.py
"""

from repro.aqm.codel import CodelAqm
from repro.aqm.red import RedAqm
from repro.harness import (
    MBPS,
    bare_pie_factory,
    pi2_factory,
    pie_factory,
    run_experiment,
    taildrop_factory,
)
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.sweep import format_table


def red_factory():
    return lambda rng: RedAqm(rng=rng)


def codel_factory():
    return lambda rng: CodelAqm()


CONTENDERS = [
    ("tail-drop", taildrop_factory()),
    ("RED", red_factory()),
    ("CoDel", codel_factory()),
    ("PIE", pie_factory()),
    ("bare-PIE", bare_pie_factory()),
    ("PI2", pi2_factory()),
]


def main():
    print("AQM shoot-out: 10 Reno flows, 10 Mb/s, 100 ms RTT, 40 s\n")
    rows = []
    for name, factory in CONTENDERS:
        result = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS,
                duration=40.0,
                warmup=10.0,
                aqm_factory=factory,
                flows=[FlowGroup(cc="reno", count=10, rtt=0.100)],
                buffer_packets=400,  # a reasonable real-router buffer
            )
        )
        delay = result.sojourn_summary(percentiles=(99,))
        rows.append(
            (
                name,
                delay["mean"] * 1e3,
                delay["p99"] * 1e3,
                result.mean_utilization() * 100,
                result.queue_stats.dropped,
                result.queue_stats.ce_marked,
            )
        )
    print(
        format_table(
            ["aqm", "q mean [ms]", "q p99 [ms]", "util [%]", "drops", "marks"],
            rows,
        )
    )
    print("\nNote how the PI family pins the mean near its 20 ms target;")
    print("PI2 does it without PIE's lookup table or corrective heuristics.")


if __name__ == "__main__":
    main()
