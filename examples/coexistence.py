#!/usr/bin/env python3
"""Coexistence demo: why DCTCP needs the coupled PI+PI2 AQM.

Reproduces the paper's headline result (Figure 15) at one operating
point: a DCTCP flow and a Cubic flow share a single 40 Mb/s / 10 ms
bottleneck queue.

* Under **PIE**, both flows see the same signal probability, but DCTCP's
  response (W = 2/p) is far more aggressive than Cubic's (W ∝ 1/√p), so
  DCTCP takes nearly everything — the paper's ~10× starvation.
* Under the **coupled PI+PI2** AQM the ECN classifier gives Cubic the
  *square* of (half) the DCTCP probability, exactly counterbalancing the
  window laws — the shares come back to ≈ 1:1.

Run:  python examples/coexistence.py
"""

from repro.harness import coexistence_pair, coupled_factory, pie_factory, run_experiment


def bar(value, scale=30.0, cap=40.0):
    width = int(min(value, cap) / cap * scale)
    return "#" * width


def main():
    print("One DCTCP flow vs one Cubic flow, 40 Mb/s, 10 ms RTT, 30 s\n")

    for name, factory in (("PIE", pie_factory()), ("coupled PI+PI2", coupled_factory())):
        result = run_experiment(coexistence_pair(factory, duration=30.0))
        cubic = sum(result.goodputs("cubic")) / 1e6
        dctcp = sum(result.goodputs("dctcp")) / 1e6
        delay = result.sojourn_summary()["mean"] * 1e3

        print(f"=== {name} ===")
        print(f"  dctcp  {dctcp:5.1f} Mb/s  {bar(dctcp)}")
        print(f"  cubic  {cubic:5.1f} Mb/s  {bar(cubic)}")
        print(f"  cubic/dctcp ratio: {cubic / dctcp:.2f}"
              f"   (queue delay {delay:.1f} ms)")
        if hasattr(result.aqm, "classic_probability"):
            print(f"  p_scalable = {result.aqm.probability * 100:.2f} %   "
                  f"p_classic = (p_s/2)^2 = {result.aqm.classic_probability * 100:.3f} %")
        print()

    print("Paper expectation: ratio ≈ 0.1 under PIE (starvation), ≈ 1 under PI2.")


if __name__ == "__main__":
    main()
