#!/usr/bin/env python3
"""Fluid-model step response: the stability story in the time domain.

The Bode plots (Figures 4 and 7) predict that a fixed-gain PI on Reno is
unstable at low load while PI2's squared output is stable with 2.5×
higher gains.  This example integrates Appendix B's nonlinear
delay-differential equations through a load step (5 → 25 flows at t=20 s)
and renders the queue-delay trajectories as ASCII strip charts, making
the predicted behaviours visible:

* ``reno_pi`` with PIE's base gains rings for a long time after a
  disturbance at a light-load operating point;
* ``reno_pi2`` (2.5× gains) settles quickly and cleanly;
* ``scal_pi`` (5× gains) is faster still.

Run:  python examples/fluid_step_response.py
"""

from repro.analysis.timedomain import FluidScenario, simulate_fluid

CAP_PPS = 10e6 / (1448 * 8)  # 10 Mb/s in segments/s
RTT = 0.1


def strip_chart(result, t_from, t_to, rows=12, cols=72, vmax=0.06):
    """Render queue delay vs time as an ASCII chart."""
    pts = [
        (t, v)
        for t, v in zip(result.times, result.queue_delay)
        if t_from <= t <= t_to
    ]
    grid = [[" "] * cols for _ in range(rows)]
    for t, v in pts:
        x = int((t - t_from) / (t_to - t_from) * (cols - 1))
        y = rows - 1 - int(min(v, vmax) / vmax * (rows - 1))
        grid[y][x] = "*"
    target_row = rows - 1 - int(0.020 / vmax * (rows - 1))
    for x in range(cols):
        if grid[target_row][x] == " ":
            grid[target_row][x] = "-"
    lines = ["".join(row) for row in grid]
    lines.append(f"{t_from:.0f}s{' ' * (cols - 8)}{t_to:.0f}s   (-- = 20 ms target)")
    return "\n".join(lines)


def main():
    configs = [
        ("reno_pi  (alpha=0.125, beta=1.25 — PIE base gains, no square)",
         "reno_pi", 0.125, 1.25),
        ("reno_pi2 (alpha=0.3125, beta=3.125 — 2.5x gains + square)",
         "reno_pi2", 0.3125, 3.125),
        ("scal_pi  (alpha=0.625, beta=6.25 — Scalable control, linear)",
         "scal_pi", 0.625, 6.25),
    ]
    print("Fluid model: 10 Mb/s, 100 ms RTT, load step 5 -> 25 flows at t=20 s\n")
    for title, kind, alpha, beta in configs:
        scenario = FluidScenario(
            capacity_pps=CAP_PPS,
            n_flows=5,
            base_rtt=RTT,
            alpha=alpha,
            beta=beta,
            kind=kind,
            duration=50.0,
            flows=lambda t: 5 if t < 20 else 25,
        )
        result = simulate_fluid(scenario)
        print(f"=== {title} ===")
        print(strip_chart(result, 10.0, 50.0))
        pre = [
            v for t, v in zip(result.times, result.queue_delay) if 10 <= t < 20
        ]
        mean_pre = sum(pre) / len(pre)
        std_pre = (sum((v - mean_pre) ** 2 for v in pre) / len(pre)) ** 0.5
        settle = next(
            (
                t - 20.0
                for t, v in zip(result.times, result.queue_delay)
                if t > 21.0 and abs(v - 0.020) < 0.002
            ),
            float("inf"),
        )
        print(
            f"light-load oscillation (std) {std_pre * 1e3:.2f} ms, "
            f"post-step settle {settle:.1f} s, "
            f"steady delay {result.tail_mean('queue_delay') * 1e3:.1f} ms\n"
        )


if __name__ == "__main__":
    main()
