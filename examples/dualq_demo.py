#!/usr/bin/env python3
"""DualQ Coupled demo: where the PI2 research programme leads.

The paper's conclusion is explicit: the single-queue coupled AQM is a
research step — Scalable traffic still suffers the Classic queue's 20 ms.
The recommended deployment (later RFC 9332 'DualPI2') gives Scalable
traffic its own shallow queue, coupled to the Classic PI2 AQM.

This demo runs a DCTCP + Cubic pair through both arrangements and prints
per-class queue delay and throughput: DualQ keeps the ≈1:1 rate balance
*and* gives DCTCP sub-millisecond queuing while Cubic keeps its 20 ms.

Run:  python examples/dualq_demo.py
"""

import numpy as np

from repro.aqm.dualq import DualQueueCoupledAqm
from repro.harness import MBPS, coupled_factory
from repro.harness.topology import Dumbbell
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

CAPACITY = 40 * MBPS
RTT = 0.010
DURATION = 30.0
WARMUP = 10.0


def run(kind):
    sim = Simulator()
    streams = RandomStreams(7)
    per_class = {"scalable": [], "classic": []}

    def on_sojourn(now, sojourn, pkt):
        if now >= WARMUP:
            key = "scalable" if pkt.is_scalable else "classic"
            per_class[key].append(sojourn)

    if kind == "single queue (paper §5)":
        aqm = coupled_factory()(streams.stream("aqm"))
        queue = AQMQueue(sim, aqm, CAPACITY, on_sojourn=on_sojourn)
    else:
        queue = DualQueueCoupledAqm(
            sim, CAPACITY, rng=streams.stream("aqm"), on_sojourn=on_sojourn
        )
    bed = Dumbbell(sim, streams, CAPACITY, aqm=None, queue=queue)
    bed.add_tcp_flow("dctcp", rtt=RTT, label="dctcp")
    bed.add_tcp_flow("cubic", rtt=RTT, label="cubic")
    sim.at(WARMUP, bed.flows.open_windows, WARMUP)
    sim.run(DURATION)

    dctcp = sum(bed.goodput_bps("dctcp", DURATION)) / 1e6
    cubic = sum(bed.goodput_bps("cubic", DURATION)) / 1e6
    print(f"=== {kind} ===")
    print(f"  DCTCP queue delay: {np.mean(per_class['scalable']) * 1e3:6.2f} ms"
          f"   throughput {dctcp:5.1f} Mb/s")
    print(f"  Cubic queue delay: {np.mean(per_class['classic']) * 1e3:6.2f} ms"
          f"   throughput {cubic:5.1f} Mb/s")
    print(f"  rate balance cubic/dctcp: {cubic / dctcp:.2f}\n")


def main():
    print("DCTCP + Cubic, 40 Mb/s, 10 ms base RTT, 30 s\n")
    run("single queue (paper §5)")
    run("DualQ Coupled (paper §7 / RFC 9332 direction)")
    print("DualQ keeps the coexistence property and removes the Classic")
    print("queue's delay from the Scalable traffic — 'ultra-low delay for all'.")


if __name__ == "__main__":
    main()
