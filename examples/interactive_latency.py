#!/usr/bin/env python3
"""Interactive-application latency: the paper's motivation, end to end.

"Interactive latency-sensitive applications are becoming prevalent on the
public Internet ... perception of quality tends to be dominated by worst
case delays."  This demo puts a VoIP-like flow (200 B every 20 ms) behind
the same 10 Mb/s bottleneck as five bulk Cubic transfers and measures
what the application actually experiences under four queue disciplines:

* tail-drop      — bufferbloat: the voice flow rides a full buffer;
* PIE            — queuing pinned near the 20 ms target;
* PI2            — same target, simpler AQM, slightly tighter tail;
* DualQ Coupled  — the paper's end goal: the voice flow opts into the
  Scalable queue (ECT(1)) and sees ~millisecond delay while the bulk
  transfers keep their throughput.

Run:  python examples/interactive_latency.py
"""

from repro.aqm.dualq import DualQueueCoupledAqm
from repro.harness import MBPS, pi2_factory, pie_factory
from repro.harness.topology import Dumbbell
from repro.harness.sweep import format_table
from repro.net.packet import ECN
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

CAPACITY = 10 * MBPS
RTT = 0.040
DURATION = 30.0


def run(kind):
    sim = Simulator()
    streams = RandomStreams(11)
    voice_ecn = ECN.NOT_ECT

    if kind == "tail-drop":
        bed = Dumbbell(sim, streams, CAPACITY, None, buffer_packets=400)
    elif kind == "PIE":
        bed = Dumbbell(sim, streams, CAPACITY,
                       pie_factory()(streams.stream("aqm")))
    elif kind == "PI2":
        bed = Dumbbell(sim, streams, CAPACITY,
                       pi2_factory()(streams.stream("aqm")))
    else:  # DualQ: the voice flow declares ECT(1) and rides the L queue
        queue = DualQueueCoupledAqm(sim, CAPACITY, rng=streams.stream("aqm"))
        bed = Dumbbell(sim, streams, CAPACITY, aqm=None, queue=queue)
        voice_ecn = ECN.ECT1

    for _ in range(5):
        bed.add_tcp_flow("cubic", rtt=RTT)
    source, sink = bed.add_realtime_flow(rtt=RTT, ecn=voice_ecn)
    sim.at(5.0, bed.flows.open_windows, 5.0)  # goodput after warm-up
    sim.run(DURATION)

    bulk = sum(bed.goodput_bps("cubic", DURATION)) / 1e6
    return (
        kind,
        sink.mean_delay() * 1e3,
        sink.delay_percentile(99) * 1e3,
        sink.jitter * 1e3,
        sink.loss_fraction(source.sent) * 100,
        bulk,
    )


def main():
    print("A VoIP flow (200 B / 20 ms) sharing 10 Mb/s with 5 bulk Cubic flows\n")
    rows = [run(kind) for kind in ("tail-drop", "PIE", "PI2", "DualQ")]
    print(
        format_table(
            ["queue", "delay mean [ms]", "delay p99 [ms]", "jitter [ms]",
             "loss [%]", "bulk goodput [Mb/s]"],
            rows,
        )
    )
    print("\nWorst-case (P99) delay is what users perceive: AQM cuts it by an")
    print("order of magnitude, and DualQ by another — without hurting the bulk")
    print("transfers. 'Ultra-low delay for all.'")


if __name__ == "__main__":
    main()
