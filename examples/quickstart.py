#!/usr/bin/env python3
"""Quickstart: run a PI2 AQM over a simulated bottleneck in ~20 lines.

Builds the paper's canonical single-bottleneck scenario — five long-running
TCP Reno flows through a 10 Mb/s link with 100 ms RTT — once under plain
tail-drop (bufferbloat) and once under PI2, and prints what the AQM buys:
queue delay pinned near the 20 ms target at (almost) no throughput cost.

Run:  python examples/quickstart.py
"""

from repro.harness import light_tcp, pi2_factory, run_experiment, taildrop_factory


def describe(name, result):
    delay = result.sojourn_summary()
    print(f"\n{name}")
    print(f"  queue delay   mean {delay['mean'] * 1e3:7.1f} ms"
          f"   p99 {delay['p99'] * 1e3:7.1f} ms")
    print(f"  link utilization   {result.mean_utilization() * 100:5.1f} %")
    print(f"  packets dropped    {result.queue_stats.dropped}")
    print(f"  packets CE-marked  {result.queue_stats.ce_marked}")


def main():
    print("PI2 quickstart: 5 Reno flows, 10 Mb/s bottleneck, 100 ms RTT, 30 s")

    bloated = run_experiment(light_tcp(taildrop_factory(), duration=30.0))
    describe("tail-drop only (bufferbloat)", bloated)

    pi2 = run_experiment(light_tcp(pi2_factory(), duration=30.0))
    describe("PI2 (target 20 ms)", pi2)

    saved = (bloated.sojourn_summary()["mean"] - pi2.sojourn_summary()["mean"]) * 1e3
    print(f"\nPI2 removed {saved:.0f} ms of standing queue while keeping "
          f"{pi2.mean_utilization() * 100:.0f} % utilization.")


if __name__ == "__main__":
    main()
