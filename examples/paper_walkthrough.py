#!/usr/bin/env python3
"""The paper's argument, executed end to end in one command.

Walks through PI2's reasoning chain with live computations at each step:

  1. §2  — scalability: Classic signals-per-RTT shrink with rate,
           Scalable ones don't (equations (1)–(3));
  2. §4  — the problem: a fixed-gain PI on Reno is unstable at low p
           (Bode margins, Figure 4);
  3. §4  — PIE's fix is secretly √(2p) (Figure 5's table fit);
  4. §4  — PI2's fix: square the output; margins flatten, gains ×2.5
           (Figure 7 + the headroom computation);
  5. §6  — it works: queue pinned to target (packet simulation);
  6. §4/5 — coexistence: the same p' drives DCTCP directly and Cubic
           through (ps/2)², so they share a queue ≈ equally.

Each step prints the numbers it just computed.  Runtime ≈ 30 s.

Run:  python examples/paper_walkthrough.py
"""


from repro.analysis import steady_state as ss
from repro.analysis.bode import margins_reno_pi, margins_reno_pi2, max_stable_gain
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS
from repro.aqm.tune_table import sqrt2p, tune
from repro.harness import (
    coexistence_pair,
    coupled_factory,
    light_tcp,
    pi2_factory,
    pie_factory,
    run_experiment,
)


def step(n, title):
    print(f"\n--- step {n}: {title} " + "-" * max(0, 48 - len(title)))


def main():
    print("PI2 (CoNEXT 2016): the argument, recomputed live")

    step(1, "Classic controls starve themselves of feedback (§2)")
    for w in (10, 100, 1000):
        c_reno = ss.signals_per_rtt(w, ss.p_for_window_reno(w))
        c_dctcp = ss.signals_per_rtt(w, ss.p_for_window_dctcp(w))
        print(f"  W={w:5d}:  Reno {c_reno:6.3f} signals/RTT   "
              f"DCTCP {c_dctcp:4.1f} signals/RTT")
    print("  Reno's c = pW ∝ 1/W vanishes as rates scale; DCTCP's stays 2.")

    step(2, "Fixed-gain PI on Reno goes unstable at low p (Fig 4)")
    for p in (1e-4, 1e-2, 0.5):
        m = margins_reno_pi(p, 0.1, PAPER_PIE_GAINS, tune_factor=1.0)
        state = "UNSTABLE" if m.gain_margin_db < 0 else "stable"
        print(f"  p={p:8.4f}: gain margin {m.gain_margin_db:7.1f} dB  {state}")

    step(3, "PIE's stepped 'tune' is secretly sqrt(2p) (Fig 5)")
    for p in (1e-4, 1e-2, 0.5):
        print(f"  p={p:8.4f}: tune={tune(p):8.5f}   sqrt(2p)={sqrt2p(p):8.5f}")
    print("  K_PIE ≈ 1/√2 — the heuristic table was a square root in disguise.")

    step(4, "Square the output instead: flat margins, x2.5 gains (Fig 7)")
    for pp in (1e-3, 1e-1, 0.8):
        m = margins_reno_pi2(pp, 0.1, PAPER_PI2_GAINS)
        print(f"  p'={pp:7.3f}: gain margin {m.gain_margin_db:5.1f} dB")
    headroom = min(
        max_stable_gain("reno_pi2", p, 0.1, PAPER_PIE_GAINS)
        for p in (1e-3, 1e-2, 1e-1, 0.5, 1.0)
    )
    print(f"  worst-case stable gain multiple over PIE's base gains: "
          f"x{headroom:.1f}  (the paper deploys x2.5)")

    step(5, "And it controls a real queue (packet-level, Fig 11a)")
    for name, factory in (("PIE", pie_factory()), ("PI2", pi2_factory())):
        r = run_experiment(light_tcp(factory, duration=25.0))
        s = r.sojourn_summary()
        print(f"  {name}: queue delay mean {s['mean'] * 1e3:5.1f} ms "
              f"(target 20), p99 {s['p99'] * 1e3:5.1f} ms, "
              f"utilization {r.mean_utilization() * 100:.0f} %")

    step(6, "One queue, two output stages: coexistence (Fig 15)")
    for name, factory in (("PIE", pie_factory()), ("coupled PI+PI2", coupled_factory())):
        r = run_experiment(coexistence_pair(factory, duration=25.0))
        cubic = sum(r.goodputs("cubic")) / 1e6
        dctcp = sum(r.goodputs("dctcp")) / 1e6
        print(f"  {name:15s}: cubic {cubic:5.1f} Mb/s, dctcp {dctcp:5.1f} Mb/s "
              f"-> ratio {cubic / dctcp:5.2f}")
    print("  'Think once to mark, think twice to drop.'")


if __name__ == "__main__":
    main()
