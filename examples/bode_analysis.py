#!/usr/bin/env python3
"""Stability analysis demo: regenerate the paper's Bode-margin insight.

Sweeps the operating-point probability and prints gain margins for:

* fixed-gain PI on Reno (Figure 4, tune = 1) — the margin runs diagonally
  and goes **negative** (unstable) at low p;
* PIE's auto-tuned gains — rescued by the stepped table;
* PI2 (squared output, 2.5× gains) and Scalable-on-PI (5× gains) —
  flat, positive margins across the whole range (Figure 7).

An ASCII rendering of the gain-margin curves makes the 'diagonal vs flat'
contrast visible in the terminal.

Run:  python examples/bode_analysis.py
"""

from repro.analysis.bode import (
    margins_reno_pi,
    margins_reno_pi2,
    margins_reno_pie,
    margins_scal_pi,
)
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS, PAPER_SCAL_GAINS

R0 = 0.1  # the paper's 100 ms analysis RTT
PROBS = [1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5]


def gm(margins):
    return margins.gain_margin_db if margins.gain_margin_db is not None else float("nan")


def row_for(p):
    return {
        "pi(tune=1)": gm(margins_reno_pi(p, R0, PAPER_PIE_GAINS)),
        "pie(auto)": gm(margins_reno_pie(p, R0, PAPER_PIE_GAINS)),
        "pi2": gm(margins_reno_pi2(p, R0, PAPER_PI2_GAINS)),
        "scal-pi": gm(margins_scal_pi(p, R0, PAPER_SCAL_GAINS)),
    }


def ascii_gauge(value, lo=-30.0, hi=30.0, width=30):
    """Render a margin as a gauge with the stability boundary at centre."""
    pos = int((max(lo, min(hi, value)) - lo) / (hi - lo) * width)
    cells = ["-"] * width
    centre = width // 2
    cells[centre] = "|"
    marker = "X" if value < 0 else "O"
    cells[min(pos, width - 1)] = marker
    return "".join(cells)


def main():
    print(f"Bode gain margins, Reno fluid model, R0 = {R0 * 1e3:.0f} ms, T = 32 ms")
    print("gauge: -30 dB .... 0 (stability boundary) .... +30 dB;"
          " X = unstable\n")

    rows = {p: row_for(p) for p in PROBS}
    for config in ("pi(tune=1)", "pie(auto)", "pi2", "scal-pi"):
        print(f"--- {config} ---")
        for p in PROBS:
            value = rows[p][config]
            print(f"  p={p:8.5f}  GM {value:7.2f} dB  {ascii_gauge(value)}")
        print()

    print("The fixed-gain diagonal crosses zero near p ≈ 1 %; squaring the")
    print("output (PI2) flattens it, leaving room for 2.5x higher gains —")
    print("the paper's ~5.5 dB responsiveness improvement without instability.")


if __name__ == "__main__":
    main()
