"""Figure 5 — PIE's stepped 'tune' factor vs the analytic √(2p) curve.

Paper: the RFC 8033 lookup table, extended down to 0.0001 % during IETF
review, tracks √(2p) — i.e. PIE's heuristic was implicitly implementing
the square-root linearization that PI2 performs exactly.
"""

import math

from benchmarks.conftest import emit, run_once
from repro.aqm.tune_table import tune_table_rows
from repro.harness.sweep import format_table


def test_fig05_tune_table_fits_sqrt2p(benchmark):
    rows = run_once(benchmark, lambda: tune_table_rows(points_per_decade=2))

    emit(
        format_table(
            ["p", "tune(p)", "sqrt(2p)", "ratio"],
            [(p, t, s, t / s if s else float("nan")) for p, t, s in rows],
            title="Figure 5: PIE auto-tune steps vs sqrt(2p) (log-log in the paper)\n"
            "paper shape: the steps straddle the sqrt curve over 6 decades",
        )
    )

    # Within the table's covered range the step function stays within one
    # table step (factor 4 each way) of the analytic curve ...
    in_range = [(p, t, s) for p, t, s in rows if 1e-6 <= p <= 1.0 and s > 0]
    for p, t, s in in_range:
        assert 0.125 < t / s < 8.0, f"p={p}"
    # ... and is unbiased on average (geometric mean ratio ≈ 1).
    log_mean = sum(math.log(t / s) for _, t, s in in_range) / len(in_range)
    assert abs(log_mean) < math.log(2.5)
