"""Figures 19 and 20 — throughput balance and normalized per-flow rates
across flow-count combinations.

Paper setup: 40 Mb/s link, 10 ms RTT; the number of flows of class A
(DCTCP or ECN-Cubic) and class B (Cubic) sweeps through A1-B1 … A10-B0
style combinations.

Paper shapes:

* Fig 19 — the per-flow DCTCP/Cubic ratio under PIE is ~10 regardless of
  the mix; under coupled PI2 it stays ≈ 1 for every combination.
* Fig 20 — normalized per-flow rates (rate ÷ capacity/total-flows) sit
  near 1 for both classes under PI2, while under PIE the DCTCP flows sit
  far above 1 and the Cubic flows far below.

Scale-down: 25 s runs, a representative subset of the paper's mixes.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import coupled_factory, pie_factory, run_mix_sweep
from repro.harness.sweep import format_table
from repro.metrics.stats import geometric_mean, normalized_rates

MIXES = ((1, 1), (1, 9), (5, 5), (9, 1), (2, 8), (8, 2))
CAPACITY_MBPS = 40.0


def run_sweeps(mix_cache):
    if "pie" not in mix_cache:
        for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory())):
            mix_cache[name] = run_mix_sweep(
                factory, mixes=MIXES, capacity_mbps=CAPACITY_MBPS,
                rtt_ms=10.0, duration=25.0, warmup=10.0,
            )
    return mix_cache


def test_fig19_throughput_balance_vs_mix(benchmark, mix_cache):
    sweeps = run_once(benchmark, lambda: run_sweeps(mix_cache))

    rows = []
    ratios = {"pie": [], "pi2": []}
    for name in ("pie", "pi2"):
        for (n_a, n_b), result in sweeps[name].items():
            ratio = result.balance("dctcp", "cubic")
            rows.append((name, f"A{n_a}-B{n_b}", ratio))
            ratios[name].append(ratio)
    emit(
        format_table(
            ["aqm", "mix (A=dctcp B=cubic)", "DCTCP/Cubic per-flow ratio"],
            rows,
            title="Figure 19: rate balance vs flow mix, 40 Mb/s, 10 ms RTT\n"
            "paper shape: PIE ~10 for every mix; PI2 ≈ 1 for every mix",
        )
    )

    # PIE's imbalance is large for every mix; PI2's near 1 for every mix.
    assert geometric_mean(ratios["pie"]) > 4.0
    assert 0.4 < geometric_mean(ratios["pi2"]) < 2.5
    for r in ratios["pi2"]:
        assert 0.25 < r < 4.0
    # PI2 beats PIE on balance in every single mix.
    for (pie_r, pi2_r) in zip(ratios["pie"], ratios["pi2"]):
        assert abs(np.log(pi2_r)) < abs(np.log(pie_r))


def test_fig20_normalized_rates(benchmark, mix_cache):
    sweeps = run_once(benchmark, lambda: run_sweeps(mix_cache))

    rows = []
    stats = {"pie": {"dctcp": [], "cubic": []}, "pi2": {"dctcp": [], "cubic": []}}
    for name in ("pie", "pi2"):
        for (n_a, n_b), result in sweeps[name].items():
            total = n_a + n_b
            for label in ("dctcp", "cubic"):
                norm = normalized_rates(
                    result.goodputs(label), CAPACITY_MBPS * 1e6, total
                )
                if norm:
                    stats[name][label].extend(norm)
                    rows.append(
                        (name, f"A{n_a}-B{n_b}", label,
                         float(np.mean(norm)), float(np.min(norm)),
                         float(np.max(norm)))
                    )
    emit(
        format_table(
            ["aqm", "mix", "class", "norm mean", "min", "max"],
            rows,
            title="Figure 20: normalized per-flow rate (1 = fair share)\n"
            "paper shape: PI2 both classes ≈ 1; PIE dctcp >> 1 >> cubic",
        )
    )

    # Under PI2 both classes sit near the fair share ...
    for label in ("dctcp", "cubic"):
        mean_norm = float(np.mean(stats["pi2"][label]))
        assert 0.4 < mean_norm < 2.2, (label, mean_norm)
    # ... under PIE the classes are split around it by a large factor.
    assert float(np.mean(stats["pie"]["dctcp"])) > 1.5
    assert float(np.mean(stats["pie"]["cubic"])) < 0.5
