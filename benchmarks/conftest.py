"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper at reduced
duration, printing the paper's expected values next to the measured ones
(run ``pytest benchmarks/ --benchmark-only -s`` to see the tables), and
asserts the *shape* of the result — who wins, by roughly what factor —
rather than absolute numbers, which depend on the testbed.

Expensive multi-run artifacts (the Figure 15–18 coexistence grid, the
Figure 19–20 mix sweep) are computed once per session and shared across
the benchmarks that report different views of them.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a results table, visibly bracketed in benchmark output."""
    print()
    print(text)


@pytest.fixture(scope="session")
def grid_cache():
    """Session cache for the Figure 15–18 grid, keyed by AQM name."""
    return {}


@pytest.fixture(scope="session")
def mix_cache():
    """Session cache for the Figure 19–20 flow-mix sweep."""
    return {}


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
