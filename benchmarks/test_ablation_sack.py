"""Ablation — SACK vs NewReno loss recovery, and its effect on Figure 15.

EXPERIMENTS.md attributes PI2's residual Cubic deficit (ratio ≈ 0.7
instead of the paper's ≈ 1) to NewReno-without-SACK recovery costs; the
paper's Linux testbed senders used SACK.  This bench quantifies both
halves of that claim:

* single-flow goodput under i.i.d. loss, SACK on vs off;
* the coexistence rate balance (Figure 15's metric) with the Cubic flow
  running SACK — which should move the ratio toward 1.
"""

from benchmarks.conftest import emit, run_once
from repro.aqm.fixed import FixedProbabilityAqm
from repro.analysis import steady_state as ss
from repro.harness import MBPS, coupled_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.sweep import format_table

MSS = 1448
RTT = 0.04


def loss_goodput(p, sack):
    exp = Experiment(
        capacity_bps=200e6, duration=40.0, warmup=10.0,
        aqm_factory=lambda rng: FixedProbabilityAqm(p, rng),
        flows=[FlowGroup(cc="reno", count=1, rtt=RTT, label="x", sack=sack)],
        record_sojourns=False,
    )
    return sum(run_experiment(exp).goodputs("x")) * RTT / (MSS * 8)


def coexistence_ratio(sack):
    exp = Experiment(
        capacity_bps=40 * MBPS, duration=30.0, warmup=10.0,
        aqm_factory=coupled_factory(),
        flows=[
            FlowGroup(cc="dctcp", count=1, rtt=0.010, label="dctcp"),
            FlowGroup(cc="cubic", count=1, rtt=0.010, label="cubic", sack=sack),
        ],
    )
    return run_experiment(exp).balance("cubic", "dctcp")


def run_all():
    rows = []
    for p in (0.01, 0.03):
        w_off = loss_goodput(p, sack=False)
        w_on = loss_goodput(p, sack=True)
        rows.append((p, w_off, w_on, ss.window_reno(p)))
    ratio_off = coexistence_ratio(sack=False)
    ratio_on = coexistence_ratio(sack=True)
    return rows, ratio_off, ratio_on


def test_ablation_sack(benchmark):
    rows, ratio_off, ratio_on = run_once(benchmark, run_all)

    emit(
        format_table(
            ["loss p", "W newreno", "W sack", "W analytic eq(5)"],
            rows,
            title="Ablation: SACK vs NewReno under i.i.d. loss"
            " (the testbed senders had SACK)",
        )
    )
    emit(
        format_table(
            ["cubic recovery", "Cubic/DCTCP ratio under coupled PI2"],
            [("newreno", ratio_off), ("sack", ratio_on)],
            title="Effect on Figure 15's balance (paper measured ≈ 1 with"
            " SACK-enabled Linux)",
        )
    )

    # SACK recovers goodput at every loss rate and narrows the gap to the
    # analytic law.
    for p, w_off, w_on, w_law in rows:
        assert w_on > w_off, p
        assert w_on / w_law > w_off / w_law
    # And moves the coexistence balance toward 1.
    assert abs(1 - ratio_on) < abs(1 - ratio_off) + 0.05
    assert 0.5 < ratio_on < 2.0
