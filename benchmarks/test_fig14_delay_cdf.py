"""Figure 14 — CDF of per-packet queuing delay at 5 ms and 20 ms targets.

Paper setup: 10 Mb/s, RTT 100 ms; (a) 20 TCP flows, (b) 5 TCP + 2×6 Mb/s
UDP; target delay 5 ms (top row) and 20 ms (bottom row).

Paper shape: PI2's delay distribution is similar to PIE's in all four
panels — the restructuring does not change steady-state queue behaviour,
it removes heuristics.  Duration shortened to 30 s.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, pi2_factory, pie_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup, UdpGroup
from repro.harness.sweep import format_table
from repro.metrics.stats import ecdf

DURATION = 30.0


def build(factory, target, with_udp):
    flows = [FlowGroup(cc="reno", count=5 if with_udp else 20, rtt=0.100)]
    udp = [UdpGroup(rate_bps=6 * MBPS, count=2)] if with_udp else []
    return Experiment(
        capacity_bps=10 * MBPS,
        duration=DURATION,
        warmup=10.0,
        aqm_factory=factory,
        flows=flows,
        udp=udp,
    )


def run_all():
    out = {}
    for target in (0.005, 0.020):
        for with_udp in (False, True):
            for name, make in (
                ("pie", lambda t: pie_factory(target_delay=t)),
                ("pi2", lambda t: pi2_factory(target_delay=t)),
            ):
                key = (target, with_udp, name)
                out[key] = run_experiment(build(make(target), target, with_udp))
    return out


def test_fig14_delay_cdf(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    medians = {}
    for (target, with_udp, name), r in sorted(results.items(), key=str):
        soj = r.sojourn_samples()
        xs, ps = ecdf(soj)
        med = float(np.percentile(soj, 50)) * 1e3
        p90 = float(np.percentile(soj, 90)) * 1e3
        medians[(target, with_udp, name)] = med
        scenario = "5TCP+2UDP" if with_udp else "20 TCP"
        rows.append((f"{target*1e3:.0f} ms", scenario, name, med, p90))

    emit(
        format_table(
            ["target", "scenario", "aqm", "median [ms]", "p90 [ms]"],
            rows,
            title="Figure 14: queue-delay CDF summary (10 Mb/s, RTT 100 ms)\n"
            "paper shape: PI2 ≈ PIE in all panels",
        )
    )

    # PI2's distribution tracks PIE's in the pure-TCP panels (the paper's
    # CDFs nearly overlap).
    for target in (0.005, 0.020):
        pie_med = medians[(target, False, "pie")]
        pi2_med = medians[(target, False, "pi2")]
        assert pi2_med < pie_med * 2.5 + 2.0, target
    # Under 12 Mb/s of unresponsive UDP, PI2's 25 % classic cap binds and
    # the queue settles at the overload equilibrium (~40 ms here) rather
    # than the target, while PIE pushes its probability past 25 % — a
    # documented structural divergence (see EXPERIMENTS.md).  Assert both
    # stay bounded far below the buffer.
    for target in (0.005, 0.020):
        assert medians[(target, True, "pie")] < 60.0
        assert medians[(target, True, "pi2")] < 80.0
    # The target knob moves the whole distribution: for the pure-TCP panel
    # the 20 ms-target median is clearly above the 5 ms-target one.
    for name in ("pie", "pi2"):
        assert medians[(0.020, False, name)] > medians[(0.005, False, name)]
