"""Ablation — DCTCP under probabilistic vs step (threshold) marking.

Appendix A: with a probabilistic (PI-driven) marker DCTCP's window is
W = 2/p (equation 11, B = 1); the original DCTCP paper's W = 2/p²
(equation 12, B = 2) applies only to a *step* threshold marker, whose
on-off marking produces RTT-length mark trains.  "This explains the same
phenomenon found empirically in Irteza et al [22]".

This bench measures the exponent B̂ = −d log W / d log p under both
marker types and checks it lands near 1 (probabilistic) vs near 2 (step).
"""

import math


from benchmarks.conftest import emit, run_once
from repro.aqm.fixed import FixedProbabilityAqm
from repro.aqm.step import StepThresholdAqm
from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.sweep import format_table

MSS = 1448
RTT = 0.04


def window_at(aqm_factory, capacity=100e6, duration=40.0):
    exp = Experiment(
        capacity_bps=capacity, duration=duration, warmup=15.0,
        aqm_factory=aqm_factory,
        flows=[FlowGroup(cc="dctcp", count=1, rtt=RTT, label="x")],
        record_sojourns=False,
    )
    r = run_experiment(exp)
    w = sum(r.goodputs("x")) * RTT / (MSS * 8)
    return w, r.aqm.probability if hasattr(r.aqm, "probability") else None, r


def run_all():
    # Probabilistic marking at two probabilities → exponent fit.
    probs = (0.04, 0.16)
    prob_ws = [window_at(lambda rng, p=p: FixedProbabilityAqm(p, rng))[0] for p in probs]
    b_prob = -(math.log(prob_ws[1] / prob_ws[0]) / math.log(probs[1] / probs[0]))

    # Step marking: p is endogenous (the flow pins W at the BDP and the
    # marker supplies whatever fraction sustains it), so vary the BDP via
    # capacity and fit B from the measured (W, fraction) pairs.
    step_points = []
    for capacity in (25e6, 100e6):
        w, _, r = window_at(lambda rng: StepThresholdAqm(threshold_bytes=10_000), capacity=capacity)
        step_points.append((w, r.aqm.probability))
    (w1, f1), (w2, f2) = step_points
    b_step = -(math.log(w2 / w1) / math.log(f2 / f1))
    return probs, prob_ws, b_prob, step_points, b_step


def test_ablation_dctcp_marking_exponent(benchmark):
    probs, prob_ws, b_prob, step_points, b_step = run_once(benchmark, run_all)

    emit(
        format_table(
            ["marker", "p or fraction", "W measured", "fitted B"],
            [
                ("probabilistic", probs[0], prob_ws[0], b_prob),
                ("probabilistic", probs[1], prob_ws[1], b_prob),
                ("step", step_points[0][1], step_points[0][0], b_step),
                ("step", step_points[1][1], step_points[1][0], b_step),
            ],
            title="Ablation: DCTCP marking type (paper: B=1 probabilistic"
            " eq(11); B=2 step eq(12))",
        )
    )

    # Probabilistic marking: W ∝ 1/p (B = 1).
    assert 0.75 < b_prob < 1.3
    # Step marking: a clearly super-linear exponent, toward B = 2 (real
    # DCTCP's α-EWMA moderates the idealized on-off derivation, so the
    # measured exponent lands between 1 and 2 — clearly above the
    # probabilistic one).
    assert b_step > 1.3
    assert b_step > b_prob + 0.25
