"""Figure 12 — queue delay under varying link capacity (100:20:100 Mb/s).

Paper setup: 20 TCP flows, RTT 100 ms, capacity steps 100 → 20 → 100 Mb/s
over equal stages.  Paper shape: PI2 shows less overshoot at start-up,
drains the transient faster at the capacity drop (peak 250 ms vs PIE's
510 ms at 100 ms sampling), and shows no visible overshoot when capacity
rises again while PIE does.  Stages shortened 50 s → 15 s.
"""


from benchmarks.conftest import emit, run_once
from repro.harness import pi2_factory, pie_factory, run_experiment, varying_capacity
from repro.harness.sweep import format_table

STAGE = 15.0


def run_pair():
    out = {}
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_capacity(factory, stage=STAGE)
        exp.sample_period = 0.1  # the paper samples the transient at 100 ms
        out[name] = run_experiment(exp)
    return out


def test_fig12_varying_capacity(benchmark):
    results = run_once(benchmark, run_pair)

    metrics = {}
    for name, r in results.items():
        metrics[name] = {
            # transient peak right after the drop to 20 Mb/s
            "drop_peak_ms": r.queue_delay.max(STAGE, STAGE + 5.0) * 1e3,
            # settle quality in the tail of the 20 Mb/s stage
            "low_mean_ms": r.queue_delay.mean(STAGE + 5.0, 2 * STAGE) * 1e3,
            # overshoot when capacity returns to 100 Mb/s
            "rise_peak_ms": r.queue_delay.max(2 * STAGE, 2 * STAGE + 5.0) * 1e3,
            "final_mean_ms": r.queue_delay.mean(2 * STAGE + 5.0, 3 * STAGE) * 1e3,
        }
    emit(
        format_table(
            ["aqm", "peak@drop [ms]", "mean@20M [ms]", "peak@rise [ms]",
             "mean@100M [ms]"],
            [(n, m["drop_peak_ms"], m["low_mean_ms"], m["rise_peak_ms"],
              m["final_mean_ms"]) for n, m in metrics.items()],
            title="Figure 12: capacity 100:20:100 Mb/s, 20 flows, RTT 100 ms\n"
            "paper: peak at drop 510 ms (PIE) vs 250 ms (PI2); no PI2"
            " overshoot at rise",
        )
    )

    pie, pi2 = metrics["pie"], metrics["pi2"]
    # PI2's transient at the capacity drop is no worse than PIE's.
    assert pi2["drop_peak_ms"] <= pie["drop_peak_ms"] * 1.1
    # Both settle near target in each stage's tail.
    assert pie["low_mean_ms"] < 60.0 and pi2["low_mean_ms"] < 60.0
    assert pie["final_mean_ms"] < 40.0 and pi2["final_mean_ms"] < 40.0
    # No large PI2 overshoot when capacity increases.
    assert pi2["rise_peak_ms"] < 80.0
