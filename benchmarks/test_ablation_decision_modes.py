"""Ablation — PI2's two drop-decision implementations (Section 5).

"The squaring can be implemented either by multiplying p' by itself, or
by comparing it with the maximum of 2 random variables ... The first is
easy to perform in a software implementation ... The latter might be
preferred for a hardware implementation."

Unit tests already show the two are Bernoulli(p'²)-identical per packet;
this bench closes the loop at system level: a full experiment under each
mode must produce statistically indistinguishable queue delay,
probability, and goodput.
"""


from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, pi2_factory
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.repeat import repeat_experiment
from repro.harness.sweep import format_table


def build(mode):
    return Experiment(
        capacity_bps=10 * MBPS,
        duration=25.0,
        warmup=10.0,
        aqm_factory=pi2_factory(decision_mode=mode),
        flows=[FlowGroup(cc="reno", count=5, rtt=0.05)],
        record_sojourns=False,
    )


def run_all():
    metrics = {
        "delay": lambda r: r.queue_delay.mean(10.0),
        "p": lambda r: r.probability.mean(10.0),
        "goodput": lambda r: sum(r.goodputs("reno")),
    }
    seeds = (1, 2, 3)
    return {
        mode: repeat_experiment(build(mode), metrics, seeds=seeds)
        for mode in ("multiply", "two-randoms")
    }


def test_ablation_decision_modes(benchmark):
    estimates = run_once(benchmark, run_all)

    rows = []
    for mode, est in estimates.items():
        rows.append(
            (mode, est["delay"].mean * 1e3, est["delay"].ci95 * 1e3,
             est["p"].mean * 100, est["goodput"].mean / 1e6)
        )
    emit(
        format_table(
            ["decision mode", "q delay [ms]", "±95% [ms]", "p [%]",
             "goodput [Mb/s]"],
            rows,
            title="Ablation: software (multiply) vs hardware (two-randoms)"
            " PI2 decision — §5 says equivalent",
        )
    )

    mult, two = estimates["multiply"], estimates["two-randoms"]
    # Confidence intervals overlap on every metric.
    for key in ("delay", "p", "goodput"):
        assert mult[key].overlaps(two[key]), key
    # And point estimates are close in absolute/relative terms.
    assert abs(mult["delay"].mean - two["delay"].mean) < 0.01
    assert (
        abs(mult["goodput"].mean - two["goodput"].mean) / mult["goodput"].mean
        < 0.05
    )
