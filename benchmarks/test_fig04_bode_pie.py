"""Figure 4 — Bode margins of PI on Reno, fixed vs auto-tuned gains.

Paper: for R = 100 ms, α = 0.125·tune, β = 1.25·tune, T = 32 ms, the
fixed-gain (tune = 1) gain margin runs diagonally with p, crossing into
instability (negative margins) at low p; smaller constant tunes shift the
diagonal; the stepped auto-tune keeps margins above zero at low p while
keeping them low (responsive) at high p.
"""


from benchmarks.conftest import emit, run_once
from repro.analysis.bode import margins_reno_pi, margins_reno_pie
from repro.analysis.fluid import PAPER_PIE_GAINS
from repro.harness.sweep import format_table

R0 = 0.1
PROBS = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0]


def compute():
    rows = []
    for p in PROBS:
        auto = margins_reno_pie(p, R0, PAPER_PIE_GAINS)
        fixed = margins_reno_pi(p, R0, PAPER_PIE_GAINS, tune_factor=1.0)
        eighth = margins_reno_pi(p, R0, PAPER_PIE_GAINS, tune_factor=1 / 8)
        rows.append((p, auto, fixed, eighth))
    return rows


def test_fig04_bode_margins(benchmark):
    rows = run_once(benchmark, compute)

    def gm(m):
        return float("nan") if m.gain_margin_db is None else m.gain_margin_db

    emit(
        format_table(
            ["p", "GM auto [dB]", "GM tune=1 [dB]", "GM tune=1/8 [dB]"],
            [(p, gm(a), gm(f), gm(e)) for p, a, f, e in rows],
            title="Figure 4: Bode gain margins, Reno on PI (R=100 ms, T=32 ms)\n"
            "paper shape: tune=1 goes negative at low p; auto-tune stays >0",
        )
    )

    by_p = {p: (a, f, e) for p, a, f, e in rows}
    # Fixed gains unstable at low p (the diagonal dips below zero).
    assert by_p[1e-4][1].gain_margin_db < 0
    # Auto-tune keeps every sampled point at or above zero margin.
    for p, (auto, _, _) in by_p.items():
        assert auto.gain_margin_db is None or auto.gain_margin_db > 0, f"p={p}"
    # Constant smaller tune shifts the whole diagonal up.
    assert by_p[1e-4][2].gain_margin_db > by_p[1e-4][1].gain_margin_db
    # The diagonal: ~10 dB per decade of p for fixed gains.
    slope = by_p[1e-2][1].gain_margin_db - by_p[1e-3][1].gain_margin_db
    assert 7.0 < slope < 13.0
