"""Figure 13 — PIE vs PI2 under varying traffic intensity at 10 Mb/s.

Paper setup: 10:30:50:30:10 TCP flows over five equal stages, 10 Mb/s,
RTT 100 ms (the low-rate sibling of Figure 6, but comparing against full
PIE rather than un-tuned PI).  Paper shape: PI2 reduces overshoot during
load increases and upward fluctuations in the steady stages.  Stages
shortened 50 s → 12 s.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, pi2_factory, pie_factory, run_experiment, varying_intensity
from repro.harness.sweep import format_table

STAGE = 12.0


def run_pair():
    out = {}
    for name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=10 * MBPS, rtt=0.100, stage=STAGE)
        exp.sample_period = 0.1
        out[name] = run_experiment(exp)
    return out


def test_fig13_varying_intensity(benchmark):
    results = run_once(benchmark, run_pair)

    flows = [10, 30, 50, 30, 10]
    rows = []
    peaks = {}
    for name, r in results.items():
        stage_means = []
        stage_peaks = []
        for s in range(5):
            t0, t1 = s * STAGE + 1.0, (s + 1) * STAGE
            qd = r.queue_delay.window(t0, t1)
            stage_means.append(float(np.mean(qd)) * 1e3)
            stage_peaks.append(float(np.max(qd)) * 1e3)
        peaks[name] = stage_peaks
        for s in range(5):
            rows.append((name, f"{s+1} ({flows[s]} fl)", stage_means[s], stage_peaks[s]))

    emit(
        format_table(
            ["aqm", "stage", "q mean [ms]", "q peak [ms]"],
            rows,
            title="Figure 13: varying intensity at 10 Mb/s, RTT 100 ms\n"
            "paper shape: PI2 less overshoot at load jumps, fewer upward"
            " fluctuations",
        )
    )

    # Overshoot at the two load-increase stages (2 and 3): PI2 no worse.
    for s in (1, 2):
        assert peaks["pi2"][s] <= peaks["pie"][s] * 1.2, f"stage {s+1}"
    # Both keep the queue bounded near target in every stage (stage 1
    # includes the cold-start transient, so it gets a looser bound).
    for name in ("pie", "pi2"):
        assert peaks[name][0] < 300.0, (name, 0)
        for s in range(1, 5):
            assert peaks[name][s] < 150.0, (name, s)
