"""Ablation — bare-PIE vs full PIE (Section 5's control experiment).

The paper disabled every Linux PIE heuristic ('bare-PIE'), re-ran all its
experiments, and "saw no difference in any experiment between bare-PIE
and the full PIE", concluding the PI2 improvements are due to the
restructuring, not to removing heuristics.  This bench re-checks that on
the light/heavy steady-state scenarios.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import bare_pie_factory, pie_factory, run_experiment
from repro.harness.scenarios import heavy_tcp, light_tcp
from repro.harness.sweep import format_table


def run_all():
    out = {}
    for scenario_name, scenario in (("5 TCP", light_tcp), ("50 TCP", heavy_tcp)):
        for aqm_name, factory in (
            ("pie", pie_factory()),
            ("bare-pie", bare_pie_factory()),
        ):
            out[(scenario_name, aqm_name)] = run_experiment(
                scenario(factory, duration=40.0)
            )
    return out


def test_ablation_bare_pie_equivalence(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    stats = {}
    for (scenario, aqm), r in results.items():
        soj = r.sojourn_samples()
        stats[(scenario, aqm)] = {
            "mean": float(np.mean(soj)) * 1e3,
            "p99": float(np.percentile(soj, 99)) * 1e3,
            "util": r.mean_utilization(),
        }
        s = stats[(scenario, aqm)]
        rows.append((scenario, aqm, s["mean"], s["p99"], s["util"] * 100))

    emit(
        format_table(
            ["scenario", "aqm", "q mean [ms]", "q p99 [ms]", "util [%]"],
            rows,
            title="Ablation: full PIE vs bare-PIE (paper: 'no difference in"
            " any experiment')",
        )
    )

    for scenario in ("5 TCP", "50 TCP"):
        full = stats[(scenario, "pie")]
        bare = stats[(scenario, "bare-pie")]
        assert abs(full["mean"] - bare["mean"]) < 10.0, scenario
        assert abs(full["util"] - bare["util"]) < 0.05, scenario
