"""Perf smoke: determinism regressions + benchmark harness sanity.

Run as tests (CI's `perf-smoke` job)::

    PYTHONPATH=src python -m pytest benchmarks/perf_smoke.py -q

or as a script, which also writes the ``BENCH_<date>.json`` artifact::

    PYTHONPATH=src python benchmarks/perf_smoke.py

The determinism checks here are deliberately *bit-exact* (``digest()``
equality, not approx): the simulator promises same seed ⇒ same result,
serial or parallel, fresh or cached, and any drift is a regression even
when the numbers only move in the 15th decimal.
"""

import tempfile

from repro.harness.cache import ResultCache
from repro.harness.factories import coupled_factory
from repro.harness.sweep import run_coexistence_grid

#: Small enough for CI, big enough to cross warmup and exercise the AQM.
TINY_GRID = {"links_mbps": (4, 12), "rtts_ms": (5, 10), "duration": 5.0, "warmup": 2.0}


def _digests(outcome):
    return [cell.result.digest() for cell in outcome]


def test_serial_rerun_is_bit_identical():
    a = run_coexistence_grid(coupled_factory(), seed=7, **TINY_GRID)
    b = run_coexistence_grid(coupled_factory(), seed=7, **TINY_GRID)
    assert _digests(a) == _digests(b)


def test_parallel_matches_serial_bit_exact():
    serial = run_coexistence_grid(coupled_factory(), seed=7, **TINY_GRID)
    parallel = run_coexistence_grid(coupled_factory(), seed=7, jobs=2, **TINY_GRID)
    assert len(serial) == len(parallel)
    assert [(c.link_mbps, c.rtt_ms) for c in serial] == [
        (c.link_mbps, c.rtt_ms) for c in parallel
    ]
    assert _digests(serial) == _digests(parallel)


def test_cached_rerun_matches_and_hits():
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        cold = run_coexistence_grid(coupled_factory(), seed=7, cache=cache, **TINY_GRID)
        assert cache.stats.stores == len(cold)
        warm = run_coexistence_grid(coupled_factory(), seed=7, cache=cache, **TINY_GRID)
        assert cache.stats.hits == len(cold)
        assert _digests(cold) == _digests(warm)


def test_batched_links_match_unbatched_bit_exact():
    """Link-layer event batching must not change results, only speed.

    The batcher's seq-reservation contract promises the batched run fires
    the same callbacks at the same (time, seq) points as the unbatched
    one, so digests must agree bit-for-bit — and the logical event count
    (processed + absorbed) must be *exactly* the unbatched event count.
    """
    from dataclasses import replace

    from repro.harness.experiment import run_experiment
    from repro.harness.factories import pi2_factory
    from repro.harness.scenarios import coexistence_pair

    base = coexistence_pair(
        pi2_factory(),
        capacity_bps=40_000_000,
        rtt=0.020,
        duration=5.0,
        warmup=2.0,
        seed=7,
    )
    off = run_experiment(replace(base, link_batching=False))
    on = run_experiment(replace(base, link_batching=True))
    assert on.digest() == off.digest()
    assert on.bed.sim.events_batched > 0  # the batcher actually engaged
    logical_on = on.bed.sim.events_processed + on.bed.sim.events_batched
    assert logical_on == off.bed.sim.events_processed


def test_supervised_matches_serial_bit_exact():
    """The watchdogged backend must be invisible in the results."""
    serial = run_coexistence_grid(coupled_factory(), seed=7, **TINY_GRID)
    supervised = run_coexistence_grid(
        coupled_factory(), seed=7, jobs=2, supervised=True, **TINY_GRID
    )
    assert _digests(serial) == _digests(supervised)
    assert supervised.recovery is not None
    assert supervised.recovery.executed == len(serial)


def test_journal_resume_matches_uninterrupted_bit_exact():
    """A journaled run resumed from its own journal replays every cell
    without re-simulating, and the digests are bit-identical."""
    import os

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "grid.journal")
        first = run_coexistence_grid(
            coupled_factory(), seed=7, journal=journal, **TINY_GRID
        )
        resumed = run_coexistence_grid(
            coupled_factory(), seed=7, journal=journal, resume=True, **TINY_GRID
        )
        assert _digests(first) == _digests(resumed)
        assert resumed.recovery.replayed == len(first)
        assert resumed.recovery.executed == 0


def test_wheel_matches_heap_grid_bit_exact():
    """The timer-wheel event core must be invisible in the results.

    Same grid, same seeds, both scheduler backends: every cell's digest
    must agree bit-for-bit with the reference binary heap.
    """
    heap = run_coexistence_grid(
        coupled_factory(), seed=7, scheduler="heap", **TINY_GRID
    )
    wheel = run_coexistence_grid(
        coupled_factory(), seed=7, scheduler="wheel", **TINY_GRID
    )
    assert _digests(heap) == _digests(wheel)


def test_scheduler_bench_parity_and_speedup_gate():
    """Wheel vs heap on the 4-cell population×spread grid.

    Parity (identical dispatch trace + experiment digest) is a hard
    bit-exactness gate; the aggregate events/sec ratio is the perf gate
    the tentpole promises: >= 1.4x over the reference heap.
    """
    from repro.perf import bench_scheduler

    record = bench_scheduler(events_per_cell=60_000, seed=7)
    assert record.extra["matches_heap"] is True
    assert record.extra["cells"] == 4
    assert record.extra["speedup_vs_heap"] >= 1.4


def test_shared_cache_single_flight():
    """N workers x the same figure cells -> each cell computed once."""
    from repro.perf import bench_shared_cache

    record = bench_shared_cache(jobs=4, seed=7)
    assert record.extra["single_flight_ok"] is True
    assert record.extra["compute_count"] == record.extra["unique_cells"]
    assert record.extra["requests"] == (
        record.extra["workers"] * record.extra["unique_cells"]
    )


def test_figure_resume_matches_bit_exact():
    """Journaled and resumed figure runs must reproduce the plain rows
    byte-for-byte, and journaling must cost <5% (or <0.5s absolute)."""
    from repro.perf import bench_figure_resume

    record = bench_figure_resume(scale=0.1)
    assert record.extra["matches_serial"] is True
    assert record.extra["matches_resume"] is True
    assert record.extra["journal_overhead_ok"] is True
    assert record.extra["cells"] == 2
    assert record.extra["replayed"] == 2
    assert record.extra["resume_executed"] == 0
    assert record.extra["journal_bytes"] > 0


def test_journal_overhead_within_gate():
    """Per-cell fsync'd journaling must cost <5% (or <0.5s absolute)."""
    from repro.perf import bench_supervised

    record = bench_supervised(grid=TINY_GRID, seed=7)
    assert record.extra["matches_serial"] is True
    assert record.extra["matches_resume"] is True
    assert record.extra["journal_overhead_ok"] is True
    assert record.extra["journal_bytes"] > 0


def test_bench_payload_shape(tmp_path=None):
    from repro.perf import run_benchmarks, write_bench_json

    payload = run_benchmarks(quick=True)
    names = {bench["name"] for bench in payload["benchmarks"]}
    assert {
        "engine_events",
        "cancel_churn",
        "experiment_light_tcp",
        "link_batching",
        "grid_serial",
        "grid_parallel",
        "grid_cache_cold",
        "grid_cache_warm",
        "grid_supervised",
        "figure_resume",
        "scheduler",
        "shared_cache",
    } <= names
    by_name = {bench["name"]: bench for bench in payload["benchmarks"]}
    assert by_name["grid_parallel"]["matches_serial"] is True
    assert by_name["grid_cache_warm"]["matches_cold"] is True
    assert by_name["link_batching"]["matches_unbatched"] is True
    assert by_name["link_batching"]["events_batched"] > 0
    assert by_name["engine_events"]["events_per_sec"] > 0
    assert by_name["grid_supervised"]["matches_serial"] is True
    assert by_name["grid_supervised"]["matches_resume"] is True
    assert by_name["grid_supervised"]["journal_overhead_ok"] is True
    assert by_name["figure_resume"]["matches_serial"] is True
    assert by_name["figure_resume"]["matches_resume"] is True
    assert by_name["figure_resume"]["journal_overhead_ok"] is True
    assert by_name["scheduler"]["matches_heap"] is True
    assert by_name["scheduler"]["speedup_vs_heap"] > 0
    assert by_name["shared_cache"]["single_flight_ok"] is True
    if tmp_path is not None:
        path = write_bench_json(payload, tmp_path / "BENCH_smoke.json")
        assert path.exists()


def main() -> int:
    """Script mode: run the checks, then emit the benchmark artifact."""
    from repro.perf import format_bench_table, run_benchmarks, write_bench_json

    test_serial_rerun_is_bit_identical()
    test_parallel_matches_serial_bit_exact()
    test_cached_rerun_matches_and_hits()
    test_batched_links_match_unbatched_bit_exact()
    test_wheel_matches_heap_grid_bit_exact()
    test_shared_cache_single_flight()
    test_supervised_matches_serial_bit_exact()
    test_journal_resume_matches_uninterrupted_bit_exact()
    test_figure_resume_matches_bit_exact()
    payload = run_benchmarks(quick=True)
    print(format_bench_table(payload))
    path = write_bench_json(payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
