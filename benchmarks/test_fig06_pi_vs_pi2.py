"""Figure 6 — un-tuned PI vs PI2 under varying traffic intensity.

Paper setup: 10:30:50:30:10 TCP flows over five equal stages, 100 Mb/s,
RTT 10 ms, α_PI = 0.125 / β_PI = 1.25 (PIE's base gains, *not* auto-tuned)
vs α_PI2 = 0.3125 / β_PI2 = 3.125, T = 32 ms.

Paper shape: during the low-load stages (10 flows — stages 1 and 5) the
fixed-gain PI over-reacts ("any onset of congestion is immediately
suppressed very aggressively"), its probability collapsing to zero and
the queue oscillating below target; PI2 with constant (2.5× larger) gains
holds the target smoothly through every stage.

Stages are shortened 50 s → 8 s; the dynamics per stage (hundreds of RTTs
and AQM updates) are preserved.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, pi_factory, pi2_factory, run_experiment, varying_intensity
from repro.harness.sweep import format_table

STAGE = 8.0


def run_pair():
    out = {}
    for name, factory in (("pi", pi_factory()), ("pi2", pi2_factory())):
        exp = varying_intensity(factory, capacity_bps=100 * MBPS, rtt=0.010, stage=STAGE)
        exp.sample_period = 0.1
        out[name] = run_experiment(exp)
    return out


def stage_stats(result, stage):
    t0, t1 = stage * STAGE + 1.0, (stage + 1) * STAGE
    p = result.probability.window(t0, t1)
    qd = result.queue_delay.window(t0, t1)
    return {
        "p_zero_frac": float(np.mean(p == 0)),
        "q_mean_ms": float(np.mean(qd)) * 1e3,
        "q_std_ms": float(np.std(qd)) * 1e3,
    }


def test_fig06_untuned_pi_vs_pi2(benchmark):
    results = run_once(benchmark, run_pair)

    rows = []
    stats = {}
    flows = [10, 30, 50, 30, 10]
    for s in range(5):
        pi = stage_stats(results["pi"], s)
        pi2 = stage_stats(results["pi2"], s)
        stats[s] = (pi, pi2)
        rows.append(
            (
                f"{s + 1} ({flows[s]} flows)",
                pi["q_mean_ms"],
                pi2["q_mean_ms"],
                pi["p_zero_frac"],
                pi2["p_zero_frac"],
            )
        )
    emit(
        format_table(
            ["stage", "PI q [ms]", "PI2 q [ms]", "PI p=0 frac", "PI2 p=0 frac"],
            rows,
            title="Figure 6: varying intensity 10:30:50:30:10, 100 Mb/s, 10 ms RTT\n"
            "paper shape: un-tuned PI oscillates (p collapses) at low load;"
            " PI2 holds 20 ms",
        )
    )

    for low_stage in (0, 4):
        pi, pi2 = stats[low_stage]
        # Un-tuned PI's control signal repeatedly collapses to zero ...
        assert pi["p_zero_frac"] > 0.02, f"stage {low_stage}"
        # ... while PI2 keeps a live signal throughout.
        assert pi2["p_zero_frac"] < pi["p_zero_frac"]
    # PI2 holds the queue at the 20 ms target in the low-load stage 5;
    # over-suppressing PI undershoots it.
    pi, pi2 = stats[4]
    assert abs(pi2["q_mean_ms"] - 20.0) < abs(pi["q_mean_ms"] - 20.0) + 0.5
    # Both control fine at high load (stage 3).
    pi, pi2 = stats[2]
    assert abs(pi["q_mean_ms"] - 20.0) < 5.0
    assert abs(pi2["q_mean_ms"] - 20.0) < 5.0
