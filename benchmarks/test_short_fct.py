"""Section 6 — short flow completion times under web-like workloads.

Paper: "mixed short flow completion times with PIE, bare PIE and PI2
under both heavy and light Web-like workloads were essentially the same".

This bench drives a Poisson stream of heavy-tailed short TCP flows
through the bottleneck alongside nothing else (the workload itself is the
load) and compares mean/P95 FCT across the three AQMs.
"""


from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, bare_pie_factory, pi2_factory, pie_factory
from repro.harness.topology import Dumbbell
from repro.harness.sweep import format_table
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.web import WebWorkload

CAPACITY = 20 * MBPS
RTT = 0.020
DURATION = 30.0


def run_one(factory, arrival_rate, seed=3):
    sim = Simulator()
    streams = RandomStreams(seed)
    bed = Dumbbell(sim, streams, CAPACITY, factory(streams.stream("aqm")),
                   record_sojourns=False)

    def spawn(size, on_complete):
        bed.add_tcp_flow(
            "cubic", rtt=RTT, start=sim.now, flow_size=size, jitter=0.0,
        ).on_complete = on_complete

    workload = WebWorkload(
        sim, spawn, arrival_rate=arrival_rate, rng=streams.stream("web"),
        size_max=500,
    )
    workload.start(0.5, until=DURATION - 5.0)
    sim.run(DURATION)
    return workload


def run_all():
    out = {}
    for load_name, rate in (("light", 20.0), ("heavy", 60.0)):
        for aqm_name, factory in (
            ("pie", pie_factory()),
            ("bare-pie", bare_pie_factory()),
            ("pi2", pi2_factory()),
        ):
            out[(load_name, aqm_name)] = run_one(factory, rate)
    return out


def test_short_flow_completion_times(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    fcts = {}
    for (load, aqm), wl in results.items():
        mean = wl.mean_fct()
        p95 = wl.percentile_fct(95)
        done = len(wl.completion_times)
        fcts[(load, aqm)] = mean
        rows.append((load, aqm, done, mean * 1e3, p95 * 1e3))

    emit(
        format_table(
            ["load", "aqm", "flows done", "mean FCT [ms]", "p95 FCT [ms]"],
            rows,
            title="Short-flow completion times (paper: PIE = bare-PIE = PI2,"
            " essentially)",
        )
    )

    # Every workload completed a healthy number of flows.
    for (load, aqm), wl in results.items():
        assert len(wl.completion_times) > 100, (load, aqm)
    # The three AQMs are essentially the same (within 2x on mean FCT
    # at each load level — the paper says indistinguishable).
    for load in ("light", "heavy"):
        means = [fcts[(load, a)] for a in ("pie", "bare-pie", "pi2")]
        assert max(means) / min(means) < 2.0, load
