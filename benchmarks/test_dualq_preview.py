"""DualQ Coupled preview — the paper's Section 7 forward pointer.

The paper's conclusion: the single-queue arrangement makes Scalable
traffic suffer Classic queuing delay; the recommended deployment is the
DualQ Coupled AQM [12, 13].  This bench contrasts the two with the same
traffic: per-class queuing delay and rate balance, single queue (coupled
PI+PI2) vs DualQ.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.aqm.dualq import DualQueueCoupledAqm
from repro.harness import MBPS, coupled_factory
from repro.harness.topology import Dumbbell
from repro.harness.sweep import format_table
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

CAPACITY = 40 * MBPS
RTT = 0.010
DURATION = 30.0
WARMUP = 10.0


def run_one(kind, seed=1):
    sim = Simulator()
    streams = RandomStreams(seed)
    l_soj, c_soj = [], []

    def on_sojourn(now, sojourn, pkt):
        if now < WARMUP:
            return
        (l_soj if pkt.is_scalable else c_soj).append(sojourn)

    if kind == "single-queue":
        from repro.net.queue import AQMQueue

        aqm = coupled_factory()(streams.stream("aqm"))
        queue = AQMQueue(sim, aqm, CAPACITY, on_sojourn=on_sojourn)
        bed = Dumbbell(sim, streams, CAPACITY, aqm=None, queue=queue)
        bed.aqm = aqm
    else:
        queue = DualQueueCoupledAqm(
            sim, CAPACITY, rng=streams.stream("aqm"), on_sojourn=on_sojourn
        )
        bed = Dumbbell(sim, streams, CAPACITY, aqm=None, queue=queue)

    bed.add_tcp_flow("dctcp", rtt=RTT, label="dctcp")
    bed.add_tcp_flow("cubic", rtt=RTT, label="cubic")
    sim.at(WARMUP, bed.flows.open_windows, WARMUP)
    sim.run(DURATION)
    cubic = sum(bed.goodput_bps("cubic", DURATION))
    dctcp = sum(bed.goodput_bps("dctcp", DURATION))
    return {
        "l_delay_ms": float(np.mean(l_soj)) * 1e3,
        "c_delay_ms": float(np.mean(c_soj)) * 1e3,
        "ratio": cubic / dctcp if dctcp else float("inf"),
        "util": (cubic + dctcp) / CAPACITY,
    }


def test_dualq_vs_single_queue(benchmark):
    results = run_once(
        benchmark, lambda: {k: run_one(k) for k in ("single-queue", "dualq")}
    )

    emit(
        format_table(
            ["arrangement", "L (dctcp) delay [ms]", "C (cubic) delay [ms]",
             "Cubic/DCTCP ratio", "goodput/cap"],
            [
                (k, r["l_delay_ms"], r["c_delay_ms"], r["ratio"], r["util"])
                for k, r in results.items()
            ],
            title="DualQ preview (paper §7: single queue makes Scalable"
            " traffic suffer Classic delay; DualQ isolates it)",
        )
    )

    single, dualq = results["single-queue"], results["dualq"]
    # Single queue: both classes share (roughly) the same ~target delay.
    assert abs(single["l_delay_ms"] - single["c_delay_ms"]) < 10.0
    # DualQ: the Scalable class gets well under the Classic queue's delay.
    assert dualq["l_delay_ms"] < dualq["c_delay_ms"] / 2
    assert dualq["l_delay_ms"] < 5.0
    # Both arrangements keep rate balance and utilization.
    for r in results.values():
        assert 0.25 < r["ratio"] < 4.0
        assert r["util"] > 0.85
