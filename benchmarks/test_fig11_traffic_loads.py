"""Figure 11 — queuing latency and throughput under three traffic loads.

Paper setup: 10 Mb/s link, 100 ms RTT, target 20 ms; columns
(a) 5 TCP flows, (b) 50 TCP flows, (c) 5 TCP + 2×6 Mb/s UDP; rows: queue
delay and total throughput over time, PIE vs PI2.

Paper shape: both AQMs hold ~20 ms with full throughput; PI2 shows less
start-up overshoot and damped oscillation.  Durations shortened 100 s →
30 s.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import (
    heavy_tcp,
    light_tcp,
    pi2_factory,
    pie_factory,
    run_experiment,
    tcp_plus_udp,
)
from repro.harness.sweep import format_table

DURATION = 30.0
MEASURE_FROM = 12.0


def run_all():
    out = {}
    scenarios = {
        "a) 5 TCP": light_tcp,
        "b) 50 TCP": heavy_tcp,
        "c) 5 TCP + 2 UDP": tcp_plus_udp,
    }
    for label, scenario in scenarios.items():
        for aqm_name, factory in (("pie", pie_factory()), ("pi2", pi2_factory())):
            out[(label, aqm_name)] = run_experiment(
                scenario(factory, duration=DURATION)
            )
    return out


def test_fig11_traffic_loads(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    summary = {}
    for (label, aqm_name), r in results.items():
        soj = r.sojourn_samples()
        tput = r.total_goodput_bps() / 1e6
        startup_peak = r.queue_delay.max(0.0, 10.0)
        summary[(label, aqm_name)] = {
            "mean_ms": float(np.mean(soj)) * 1e3,
            "p99_ms": float(np.percentile(soj, 99)) * 1e3,
            "tput": tput,
            "peak_ms": startup_peak * 1e3,
            "util": r.mean_utilization(),
        }
        s = summary[(label, aqm_name)]
        rows.append((label, aqm_name, s["mean_ms"], s["p99_ms"], s["peak_ms"], s["tput"]))

    emit(
        format_table(
            ["scenario", "aqm", "q mean [ms]", "q p99 [ms]", "startup peak [ms]",
             "goodput [Mb/s]"],
            rows,
            title="Figure 11: traffic loads at 10 Mb/s, 100 ms RTT (target 20 ms)\n"
            "paper shape: both hold ~20 ms at full throughput; PI2 less overshoot",
        )
    )

    # (a) and (b): both AQMs near the 20 ms target, high utilization.
    for label in ("a) 5 TCP", "b) 50 TCP"):
        for aqm_name in ("pie", "pi2"):
            s = summary[(label, aqm_name)]
            assert s["mean_ms"] < 45.0, (label, aqm_name)
            assert s["util"] > 0.85, (label, aqm_name)
    # Light load: mean within ~10 ms of target for both.
    for aqm_name in ("pie", "pi2"):
        assert abs(summary[("a) 5 TCP", aqm_name)]["mean_ms"] - 20.0) < 12.0
    # PI2's start-up overshoot no worse than PIE's (usually much less).
    for label in ("a) 5 TCP", "b) 50 TCP"):
        assert (
            summary[(label, "pi2")]["peak_ms"]
            <= summary[(label, "pie")]["peak_ms"] * 1.25
        )
    # (c) unresponsive overload: PIE pushes p high and holds near target;
    # PI2 saturates its 25 % classic cap so the queue settles above target
    # but remains bounded (Section 5's overload strategy).
    assert summary[("c) 5 TCP + 2 UDP", "pie")]["mean_ms"] < 60.0
    assert summary[("c) 5 TCP + 2 UDP", "pi2")]["mean_ms"] < 300.0
    # Throughput is pinned at link rate under overload for both.
    for aqm_name in ("pie", "pi2"):
        assert summary[("c) 5 TCP + 2 UDP", aqm_name)]["util"] > 0.95
