"""Ablation — the coupling factor k: analytic 1.19 vs deployed 2 (and 4).

Appendix A derives k ≈ 1.19 for idealized steady-state equality, but the
paper deploys k = 2 "having been validated empirically" — real DCTCP's
smoothing and dynamics make it effectively more aggressive than the
idealized W = 2/p law.  This bench sweeps k in the coupled AQM and
reports the resulting Cubic/DCTCP balance: larger k weakens the Classic
signal, shifting the balance toward Cubic.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import coupled_factory, run_experiment
from repro.harness.scenarios import coexistence_pair
from repro.harness.sweep import format_table

K_VALUES = (1.19, 2.0, 4.0)


def run_all():
    out = {}
    for k in K_VALUES:
        r = run_experiment(
            coexistence_pair(coupled_factory(k=k), duration=30.0, warmup=10.0)
        )
        out[k] = r.balance("cubic", "dctcp")
    return out


def test_ablation_k_factor(benchmark):
    ratios = run_once(benchmark, run_all)

    emit(
        format_table(
            ["k", "Cubic/DCTCP ratio"],
            [(k, ratios[k]) for k in K_VALUES],
            title="Ablation: coupling factor k (40 Mb/s, 10 ms RTT)\n"
            "paper: k=1.19 analytic, k=2 deployed (validated empirically)",
        )
    )

    # Monotonicity: larger k → gentler Classic signal → more Cubic share.
    assert ratios[1.19] < ratios[2.0] < ratios[4.0]
    # The deployed k = 2 lands nearest to balance.
    distances = {k: abs(np.log(r)) for k, r in ratios.items()}
    assert distances[2.0] <= min(distances[1.19], distances[4.0]) + 0.3
    # k = 2 keeps the ratio in a sane band.
    assert 0.3 < ratios[2.0] < 3.0
