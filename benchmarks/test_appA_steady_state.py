"""Appendix A — measured steady-state windows vs equations (5)–(14).

Runs each congestion control against the idealized constant-probability
marker/dropper and prints measured vs analytic windows, plus the
coupling check: a DCTCP flow at ps and a CReno flow at (ps/1.19)² achieve
the same window (equation 13/14).
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.aqm.fixed import FixedProbabilityAqm
from repro.analysis import steady_state as ss
from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.sweep import format_table

MSS = 1448
RTT = 0.04


def measure(cc, p, duration=50.0, seed=5):
    exp = Experiment(
        capacity_bps=200e6, duration=duration, warmup=15.0,
        aqm_factory=lambda rng: FixedProbabilityAqm(p, rng),
        flows=[FlowGroup(cc=cc, count=1, rtt=RTT, label="x")],
        seed=seed, record_sojourns=False,
    )
    r = run_experiment(exp)
    return sum(r.goodputs("x")) * RTT / (MSS * 8)


CASES = [
    ("reno", 0.003, lambda p: ss.window_reno(p), "eq(5) 1.22/sqrt(p)"),
    ("reno", 0.01, lambda p: ss.window_reno(p), "eq(5) 1.22/sqrt(p)"),
    ("ecn-cubic", 0.01, lambda p: ss.window_creno(p), "eq(7) 1.68/sqrt(p)"),
    ("cubic", 0.01, lambda p: ss.window_creno(p), "eq(7) 1.68/sqrt(p)"),
    ("dctcp", 0.02, lambda p: ss.window_dctcp(p), "eq(11) 2/p"),
    ("dctcp", 0.05, lambda p: ss.window_dctcp(p), "eq(11) 2/p"),
    ("dctcp", 0.1, lambda p: ss.window_dctcp(p), "eq(11) 2/p"),
]


def run_all():
    return [(cc, p, measure(cc, p), law(p), eq) for cc, p, law, eq in CASES]


def test_appA_window_laws(benchmark):
    rows = run_once(benchmark, run_all)

    emit(
        format_table(
            ["cc", "p", "W measured", "W analytic", "equation"],
            [(cc, p, w, lw, eq) for cc, p, w, lw, eq in rows],
            title="Appendix A: steady-state windows vs the paper's equations\n"
            "(loss-based CCs run below the law by NewReno recovery costs;"
            " ECN-based match)",
        )
    )

    by_case = {(cc, p): (w, lw) for cc, p, w, lw, _ in rows}
    # ECN-driven flows match their laws tightly.
    w, lw = by_case[("ecn-cubic", 0.01)]
    assert w / lw == pytest.approx(1.0, abs=0.2)
    for p in (0.02, 0.05, 0.1):
        w, lw = by_case[("dctcp", p)]
        assert w / lw == pytest.approx(1.0, abs=0.2)
    # Loss-driven flows land within NewReno recovery costs of the law.
    for cc in ("reno", "cubic"):
        w, lw = by_case[(cc, 0.01)]
        assert 0.55 < w / lw <= 1.15, cc


def test_appA_equal_rate_coupling(benchmark):
    """Equation (13)/(14): pc = (ps/1.19)² equalizes DCTCP and CReno."""

    def run():
        ps = 0.1
        pc = ss.coupled_classic_probability(ps)  # analytic k = 1.19
        w_dctcp = measure("dctcp", ps)
        w_creno = measure("ecn-cubic", pc)
        return ps, pc, w_dctcp, w_creno

    ps, pc, w_dctcp, w_creno = run_once(benchmark, run)
    emit(
        format_table(
            ["ps (dctcp)", "pc=(ps/1.19)^2", "W dctcp", "W creno", "ratio"],
            [(ps, pc, w_dctcp, w_creno, w_creno / w_dctcp)],
            title="Appendix A eq(14): equal steady-state windows via the"
            " analytic coupling (paper: ratio = 1)",
        )
    )
    assert w_creno / w_dctcp == pytest.approx(1.0, abs=0.25)
