"""Figures 15–18 — the coexistence grid: rate balance, queue delay,
signal probability and utilization over link ∈ {4,12,40,120,200} Mb/s ×
RTT ∈ {5,10,20,50,100} ms, one long-running flow per congestion control.

Paper shapes:

* Fig 15 — under PIE, DCTCP starves Cubic (ratio ≈ 0.1); under coupled
  PI+PI2 the Cubic/DCTCP ratio stays ≈ 1 across the grid.  The
  Cubic/ECN-Cubic control pair is ≈ 1 under both AQMs.
* Fig 16 — queue delay ≈ the 20 ms target for both AQMs everywhere.
* Fig 17 — the DCTCP marking probability is ≈ 2√(p_Cubic) under PI2
  (the k = 2 coupling), and far higher than Cubic's under PIE too (which
  is *why* DCTCP starves Cubic there: same probability, more aggressive
  response).
* Fig 18 — utilization stays high (≳ 90 %) across the grid.

Scale-down: per-cell durations grow with RTT (convergence) and shrink
with link rate (cost).  Cells whose duration cannot cover DCTCP's
~BDP-round-trips convergence time (the high-BDP corner: 120/200 Mb/s at
50/100 ms) are printed but excluded from assertions — see
:func:`converged`; the paper's own footnote 5 reports a Linux BDP-
limiting bug corrupting exactly that corner of its grid.
"""

import math

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import coupled_factory, pie_factory
from repro.harness.sweep import format_table, run_coexistence_grid
from repro.metrics.stats import geometric_mean

#: Measurement duration per RTT (convergence) and cap per link rate (cost).
_CONV_DURATION = {5: 10.0, 10: 12.0, 20: 16.0, 50: 24.0, 100: 44.0}
_RATE_CAP = {4: 44.0, 12: 44.0, 40: 44.0, 120: 16.0, 200: 14.0}

WARMUP = 8.0


def duration_for(link, rtt):
    return min(_RATE_CAP[link], _CONV_DURATION[rtt])


def converged(link, rtt):
    """Whether the cell's run length covers DCTCP's convergence time.

    A DCTCP flow grabbing its bandwidth share by additive increase needs
    on the order of BDP (in segments) round trips; cells whose budgeted
    duration falls short are printed but excluded from assertions — the
    same high-BDP corner where the paper's own results were corrupted by
    the Linux BDP-limiting bug its footnote 5 describes.
    """
    rtt_s = rtt / 1000.0
    bdp_segments = link * 1e6 * rtt_s / (8 * 1448)
    needed = WARMUP + 0.75 * bdp_segments * rtt_s
    return duration_for(link, rtt) >= needed


def run_grids(grid_cache):
    if "dctcp" not in grid_cache:
        grid_cache["dctcp"] = {
            name: run_coexistence_grid(
                factory, cc_a="dctcp", cc_b="cubic",
                duration_for=duration_for, warmup=WARMUP,
            )
            for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory()))
        }
        grid_cache["ecn"] = {
            name: run_coexistence_grid(
                factory, cc_a="ecn-cubic", cc_b="cubic",
                links_mbps=(4, 40, 200), rtts_ms=(5, 20, 100),
                duration_for=duration_for, warmup=WARMUP,
            )
            for name, factory in (("pie", pie_factory()), ("pi2", coupled_factory()))
        }
    return grid_cache


def _included(cell):
    return converged(cell.link_mbps, cell.rtt_ms)


def test_fig15_rate_balance(benchmark, grid_cache):
    grids = run_once(benchmark, lambda: run_grids(grid_cache))

    rows = []
    ratios = {"pie": [], "pi2": []}
    for name in ("pie", "pi2"):
        for cell in grids["dctcp"][name]:
            ratio = cell.balance("cubic", "dctcp")
            mark = "" if _included(cell) else " *excluded*"
            rows.append((name, cell.link_mbps, cell.rtt_ms, ratio, mark))
            if _included(cell):
                ratios[name].append(ratio)
    emit(
        format_table(
            ["aqm", "link [Mb/s]", "RTT [ms]", "Cubic/DCTCP ratio", ""],
            rows,
            title="Figure 15: rate balance (paper: PIE ≈ 0.1 — starvation;"
            " PI2 ≈ 1)",
        )
    )
    ecn_rows = []
    for name in ("pie", "pi2"):
        for cell in grids["ecn"][name]:
            ecn_rows.append(
                (name, cell.link_mbps, cell.rtt_ms, cell.balance("cubic", "ecn-cubic"))
            )
    emit(
        format_table(
            ["aqm", "link [Mb/s]", "RTT [ms]", "Cubic/ECN-Cubic ratio"],
            ecn_rows,
            title="Figure 15 control pair (paper: ≈ 1 under both AQMs)",
        )
    )

    # PIE starves Cubic by roughly an order of magnitude on average.
    assert geometric_mean(ratios["pie"]) < 0.25
    # Coupled PI2 restores the balance to ≈ 1 on average ...
    assert 0.4 < geometric_mean(ratios["pi2"]) < 2.5
    # ... and in (almost) every included cell individually.
    ok = [r for r in ratios["pi2"] if 0.2 < r < 5.0]
    assert len(ok) >= len(ratios["pi2"]) - 2
    # Control pair ≈ 1 under both AQMs.
    for name in ("pie", "pi2"):
        ctl = [c.balance("cubic", "ecn-cubic") for c in grids["ecn"][name]
               if _included(c)]
        assert 0.3 < geometric_mean(ctl) < 3.0, name


def test_fig16_queue_delay_grid(benchmark, grid_cache):
    grids = run_once(benchmark, lambda: run_grids(grid_cache))

    rows = []
    means = {"pie": [], "pi2": []}
    for name in ("pie", "pi2"):
        for cell in grids["dctcp"][name]:
            s = cell.result.sojourn_summary(percentiles=(99,))
            rows.append(
                (name, cell.link_mbps, cell.rtt_ms, s["mean"] * 1e3, s["p99"] * 1e3)
            )
            if _included(cell):
                means[name].append(s["mean"])
    emit(
        format_table(
            ["aqm", "link [Mb/s]", "RTT [ms]", "q mean [ms]", "q p99 [ms]"],
            rows,
            title="Figure 16: queue delay across the grid (paper: ≈ 20 ms"
            " target for both)",
        )
    )
    # Grid-average queue delay near the 20 ms target for both AQMs.
    for name in ("pie", "pi2"):
        avg = float(np.mean(means[name]))
        assert 0.005 < avg < 0.045, (name, avg)


def test_fig17_mark_probability(benchmark, grid_cache):
    grids = run_once(benchmark, lambda: run_grids(grid_cache))

    rows = []
    couple_err = []
    for cell in grids["dctcp"]["pi2"]:
        aqm = cell.result.aqm
        # Time-series percentiles of ps, as the paper's figure reports.
        s = cell.result.probability_summary(percentiles=(25, 99))
        ps = aqm.probability          # final DCTCP marking probability
        pc = aqm.classic_probability  # final Cubic drop probability
        rows.append(
            ("pi2", cell.link_mbps, cell.rtt_ms,
             s["p25"] * 100, s["mean"] * 100, s["p99"] * 100, pc * 100)
        )
        if _included(cell) and pc > 1e-6:
            couple_err.append(ps / (2 * math.sqrt(pc)))
    for cell in grids["dctcp"]["pie"]:
        s = cell.result.probability_summary(percentiles=(25, 99))
        rows.append(
            ("pie", cell.link_mbps, cell.rtt_ms,
             s["p25"] * 100, s["mean"] * 100, s["p99"] * 100, s["mean"] * 100)
        )
    emit(
        format_table(
            ["aqm", "link [Mb/s]", "RTT [ms]", "p25 [%]", "p mean [%]",
             "p99 [%]", "p classic [%]"],
            rows,
            title="Figure 17: drop/mark probability P25/mean/P99 (paper:"
            " ps = 2*sqrt(pc) under PI2; single p under PIE)",
        )
    )
    # The k = 2 coupling holds exactly by construction; verify end-to-end.
    assert all(abs(e - 1.0) < 1e-6 for e in couple_err)
    # The scalable probability exceeds the classic one wherever p < 1.
    for cell in grids["dctcp"]["pi2"]:
        aqm = cell.result.aqm
        if 0 < aqm.probability < 1:
            assert aqm.classic_probability < aqm.probability


def test_fig18_utilization(benchmark, grid_cache):
    grids = run_once(benchmark, lambda: run_grids(grid_cache))

    rows = []
    utils = {"pie": [], "pi2": []}
    for name in ("pie", "pi2"):
        for cell in grids["dctcp"][name]:
            u = cell.result.utilization_summary()
            rows.append(
                (name, cell.link_mbps, cell.rtt_ms, u["mean"] * 100,
                 u["p1"] * 100, u["p99"] * 100)
            )
            if _included(cell):
                utils[name].append(u["mean"])
    emit(
        format_table(
            ["aqm", "link [Mb/s]", "RTT [ms]", "util mean [%]", "p1 [%]", "p99 [%]"],
            rows,
            title="Figure 18: link utilization (paper: high across the grid)",
        )
    )
    for name in ("pie", "pi2"):
        assert float(np.mean(utils[name])) > 0.88, name
        assert min(utils[name]) > 0.70, name
