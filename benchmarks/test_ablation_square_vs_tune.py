"""Ablation — the squared output stage vs PIE's auto-tune table vs neither.

DESIGN.md calls out the core design choice: replace the stepped gain
scaling with output squaring.  This bench runs the same light-load
scenario (where fixed-gain PI misbehaves) under:

* ``pi``        — fixed PIE-base gains, no tune, no square (Figure 6 'pi');
* ``pie-tune``  — fixed base gains *with* the auto-tune table (PIE's fix);
* ``pi2``       — 2.5× gains with the square (the paper's fix).

Expected: 'pi' shows the over-reaction signature (probability collapsing
to zero, utilization loss); both fixes behave, and PI2 does so with the
*higher* gains that give it Figure 12's responsiveness.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, bare_pie_factory, pi2_factory, pi_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.sweep import format_table


def run_all():
    configs = {
        "pi": pi_factory(),
        "pie-tune": bare_pie_factory(),  # PI + tune table, no other heuristics
        "pi2": pi2_factory(),
    }
    out = {}
    for name, factory in configs.items():
        out[name] = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS, duration=40.0, warmup=10.0,
                aqm_factory=factory,
                flows=[FlowGroup(cc="reno", count=5, rtt=0.100)],
                sample_period=0.1,
            )
        )
    return out


def test_ablation_square_vs_tune(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    stats = {}
    for name, r in results.items():
        p = r.probability.window(10, 40)
        qd = r.queue_delay.window(10, 40)
        u = r.utilization.window(10, 40)
        stats[name] = {
            "p_zero": float(np.mean(p == 0)),
            "q_mean": float(np.mean(qd)) * 1e3,
            "q_std": float(np.std(qd)) * 1e3,
            "util": float(np.mean(u)),
        }
        s = stats[name]
        rows.append((name, s["q_mean"], s["q_std"], s["p_zero"], s["util"] * 100))

    emit(
        format_table(
            ["config", "q mean [ms]", "q std [ms]", "p=0 frac", "util [%]"],
            rows,
            title="Ablation: square vs tune-table vs neither"
            " (5 Reno flows, 10 Mb/s, RTT 100 ms)",
        )
    )

    # The un-linearized controller loses utilization through over-reaction.
    assert stats["pi"]["util"] < stats["pi2"]["util"]
    # Both linearizations keep utilization high.
    assert stats["pie-tune"]["util"] > 0.90
    assert stats["pi2"]["util"] > 0.90
    # The un-linearized controller spends the most time with p collapsed.
    assert stats["pi"]["p_zero"] >= stats["pi2"]["p_zero"]
