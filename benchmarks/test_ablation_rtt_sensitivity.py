"""Ablation — the equal-RTT assumption behind the coupling law.

Appendix A is explicit: "Therefore, **if the RTTs are equal**, we can
arrange the rates to be equal using the simple relation between the
probabilities, defined in (14)."  Rate = W/R, so unequal base RTTs could
tilt the split.  Measured, the tilt is softer than the classic 1/RTT
intuition because the single queue's ~20 ms standing delay is part of
every flow's effective RTT: base-RTT differences *below* the queue delay
are largely flattened (5 ms vs 20 ms base → the same balance), while a
base RTT well above it (60 ms) tilts the balance moderately against the
long-RTT flow.  This bench pins both effects.
"""

import pytest

from benchmarks.conftest import emit, run_once
from repro.harness import MBPS, coupled_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.sweep import format_table

CUBIC_RTT = 0.020
DCTCP_RTTS = (0.005, 0.020, 0.060)


def run_all():
    out = {}
    for dctcp_rtt in DCTCP_RTTS:
        exp = Experiment(
            capacity_bps=40 * MBPS,
            duration=30.0,
            warmup=10.0,
            aqm_factory=coupled_factory(),
            flows=[
                FlowGroup(cc="dctcp", count=1, rtt=dctcp_rtt, label="dctcp"),
                FlowGroup(cc="cubic", count=1, rtt=CUBIC_RTT, label="cubic"),
            ],
        )
        r = run_experiment(exp)
        out[dctcp_rtt] = r.balance("dctcp", "cubic")
    return out


def test_ablation_rtt_sensitivity(benchmark):
    ratios = run_once(benchmark, run_all)

    emit(
        format_table(
            ["dctcp RTT [ms]", "cubic RTT [ms]", "DCTCP/Cubic ratio"],
            [(r * 1e3, CUBIC_RTT * 1e3, ratios[r]) for r in DCTCP_RTTS],
            title="Ablation: eq (14) assumes equal RTTs — balance tilts"
            " with the RTT ratio (coupled PI+PI2, 40 Mb/s)",
        )
    )

    # Equal RTTs: balanced (the paper's operating assumption).
    assert 0.4 < ratios[0.020] < 2.5
    # Below the queue delay, base-RTT differences are flattened out.
    assert ratios[0.005] == pytest.approx(ratios[0.020], rel=0.5)
    # Well above it, the long-RTT flow loses share — eq (14)'s caveat.
    assert ratios[0.060] < ratios[0.020]
    # But coexistence never collapses into starvation.
    assert all(0.3 < r < 3.5 for r in ratios.values())
