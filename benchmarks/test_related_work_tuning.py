"""Related-work bench — three linearization strategies head-to-head.

Section 3/4 frame PI2 against two alternatives for keeping a PI AQM
stable across the load range:

* **PIE's stepped table** (the deployed heuristic);
* **continuous self-tuning** — gains scaled by the analytic √(2p) curve
  (the Hong-et-al.-style self-tuner that needs no N/C/R estimation,
  implemented as :class:`repro.aqm.adaptive.AdaptivePiAqm`);
* **PI2's output squaring** (the paper's contribution).

All three hold the target in steady state (the §4 first-order
equivalence), but they differ in transient behaviour: the tune-scaled
controllers crawl back whenever p collapses to zero (their gains collapse
with it), where PI2's constant-gain linear stage recovers immediately —
the mechanistic core of the paper's 'simpler and no worse, sometimes
better' conclusion.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.aqm.adaptive import AdaptivePiAqm
from repro.harness import MBPS, pi2_factory, pie_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.sweep import format_table


def adaptive_factory():
    def make(rng):
        return AdaptivePiAqm(rng=rng)

    return make


def run_all():
    configs = {
        "pie-table": pie_factory(),
        "adaptive-sqrt": adaptive_factory(),
        "pi2-square": pi2_factory(),
    }
    out = {}
    for name, factory in configs.items():
        out[name] = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS,
                duration=40.0,
                warmup=10.0,
                aqm_factory=factory,
                flows=[FlowGroup(cc="reno", count=5, rtt=0.05)],
                sample_period=0.1,
            )
        )
    return out


def test_related_work_linearizations(benchmark):
    results = run_once(benchmark, run_all)

    rows = []
    stats = {}
    for name, r in results.items():
        soj = r.sojourn_samples()
        p = r.probability.window(10, 40)
        stats[name] = {
            "mean_ms": float(np.mean(soj)) * 1e3,
            "p99_ms": float(np.percentile(soj, 99)) * 1e3,
            "p_mean": float(np.mean(p)),
            "p_zero": float(np.mean(p == 0)),
            "util": r.mean_utilization(),
        }
        s = stats[name]
        rows.append((name, s["mean_ms"], s["p99_ms"], s["p_mean"] * 100,
                     s["p_zero"], s["util"] * 100))

    emit(
        format_table(
            ["strategy", "q mean [ms]", "q p99 [ms]", "p mean [%]",
             "p=0 frac", "util [%]"],
            rows,
            title="Related work: table vs sqrt-tuning vs squaring"
            " (5 Reno flows, 10 Mb/s, 50 ms RTT)",
        )
    )

    # All three converge to the same signal probability (§4 equivalence).
    ps = [s["p_mean"] for s in stats.values()]
    assert max(ps) / min(ps) < 2.0
    # All control the queue and keep utilization high.
    for name, s in stats.items():
        assert s["mean_ms"] < 45.0, name
        assert s["util"] > 0.90, name
    # PI2's delay is no worse than either tuning approach.
    assert stats["pi2-square"]["mean_ms"] <= stats["pie-table"]["mean_ms"] + 2.0
    assert stats["pi2-square"]["mean_ms"] <= stats["adaptive-sqrt"]["mean_ms"] + 2.0
