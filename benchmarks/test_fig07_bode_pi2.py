"""Figure 7 — Bode margins: PIE auto-tuned vs Reno-on-PI2 vs Scalable-on-PI.

Paper: R = 100 ms, α_PIE = 0.125·tune / β_PIE = 1.25·tune,
α_PI2 = 0.3125 / β_PI2 = 3.125, α_PI = 0.625 / β_PI = 6.25, T = 32 ms.

Paper shape: squaring flattens the gain margin across the whole load
range, so the 2.5× larger PI2 gains never dip below zero margin; only
above p' ≈ 60 % does the margin exceed ~10 dB.  The Scalable-on-PI curves
with a further 2× gain look like the PI2 ones — the stability basis for
the k = 2 coupling.
"""

from benchmarks.conftest import emit, run_once
from repro.analysis.bode import margins_reno_pi2, margins_reno_pie, margins_scal_pi
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS, PAPER_SCAL_GAINS
from repro.harness.sweep import format_table

R0 = 0.1
PRIMES = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.6, 0.8, 1.0]


def compute():
    rows = []
    for pp in PRIMES:
        pie = margins_reno_pie(pp, R0, PAPER_PIE_GAINS)       # x-axis: p
        pi2 = margins_reno_pi2(pp, R0, PAPER_PI2_GAINS)       # x-axis: p'
        scal = margins_scal_pi(pp, R0, PAPER_SCAL_GAINS)      # x-axis: p'
        rows.append((pp, pie, pi2, scal))
    return rows


def test_fig07_bode_margins(benchmark):
    rows = run_once(benchmark, compute)

    def gm(m):
        return float("nan") if m.gain_margin_db is None else m.gain_margin_db

    def pm(m):
        return float("nan") if m.phase_margin_deg is None else m.phase_margin_deg

    emit(
        format_table(
            ["p or p'", "GM pie [dB]", "GM pi2 [dB]", "GM scal [dB]",
             "PM pi2 [deg]"],
            [(pp, gm(a), gm(b), gm(c), pm(b)) for pp, a, b, c in rows],
            title="Figure 7: Bode margins (R=100 ms, T=32 ms)\n"
            "paper shape: pi2/scal margins flat and positive over the whole"
            " range; >10 dB only at p' > 0.6",
        )
    )

    by_p = {pp: (a, b, c) for pp, a, b, c in rows}
    pi2_gms = [gm(b) for _, b, _ in by_p.values()]
    scal_gms = [gm(c) for _, _, c in by_p.values()]
    # Flat and positive across three decades.
    assert all(g > 0 for g in pi2_gms)
    assert all(g > 0 for g in scal_gms)
    assert max(pi2_gms[:5]) - min(pi2_gms[:5]) < 6.0  # p' ≤ 0.1 region
    # High-load margin slightly above 10 dB (p' > 0.6).
    assert gm(by_p[0.8][1]) > 10.0
    # Scalable with 2× gains stays within a few dB of reno-pi2.
    for pp in (0.01, 0.1, 0.3):
        assert abs(gm(by_p[pp][1]) - gm(by_p[pp][2])) < 6.0
    # Phase margins positive everywhere (they dip low at low p' in the
    # paper's plot too) and comfortable at high load.
    assert all(pm(b) > 0.0 for _, b, _ in by_p.values())
    assert pm(by_p[0.6][1]) > 45.0
