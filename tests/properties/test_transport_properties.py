"""Property-based robustness tests for the transport substrate.

Hypothesis generates arbitrary loss/mark patterns and configuration
combinations; regardless of the pattern, a finite flow must complete with
every segment delivered exactly once to the application (the receiver's
cumulative counter equals the flow size) and bookkeeping invariants must
hold throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.tcp.cubic import CubicSender
from repro.tcp.dctcp import DctcpSender
from repro.tcp.reno import RenoSender
from tests.tcp.helpers import DROP, FORWARD, MARK, Loopback

SENDERS = [RenoSender, CubicSender]


def run_flow(sender_cls, flow_size, pattern, sack, ecn_mode="off", horizon=600.0):
    """Drive one flow with a deterministic per-uid drop/mark pattern.

    ``pattern`` maps transmission index (mod its length) to a verdict, so
    retransmissions of the same segment eventually get through (a pattern
    of all-DROP would never terminate and is excluded by construction).
    """
    sim = Simulator()
    counter = {"n": 0}

    def interceptor(pkt):
        verdict = pattern[counter["n"] % len(pattern)]
        counter["n"] += 1
        if verdict == MARK and not pkt.ecn_capable:
            return FORWARD
        return verdict

    lb = Loopback(
        sim,
        sender_cls=sender_cls,
        rtt=0.05,
        flow_size=flow_size,
        ecn_mode=ecn_mode,
        sack=sack,
        interceptor=interceptor,
    )
    lb.sender.start(0.0)
    sim.run(horizon)
    return lb


verdicts = st.sampled_from([FORWARD, FORWARD, FORWARD, DROP])


class TestFlowAlwaysCompletes:
    @given(
        flow_size=st.integers(min_value=1, max_value=120),
        pattern=st.lists(verdicts, min_size=4, max_size=12).filter(
            lambda p: p.count(FORWARD) >= max(1, len(p) // 2)
        ),
        sack=st.booleans(),
        sender_idx=st.integers(min_value=0, max_value=len(SENDERS) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_and_exact_delivery(self, flow_size, pattern, sack, sender_idx):
        lb = run_flow(SENDERS[sender_idx], flow_size, pattern, sack)
        assert lb.sender.completed, (flow_size, pattern, sack)
        assert lb.receiver.rcv_next == flow_size
        assert lb.receiver.segments_received == flow_size

    @given(
        flow_size=st.integers(min_value=1, max_value=120),
        pattern=st.lists(
            st.sampled_from([FORWARD, FORWARD, MARK]), min_size=3, max_size=10
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_dctcp_completes_under_any_marking(self, flow_size, pattern):
        lb = run_flow(
            DctcpSender, flow_size, pattern, sack=False, ecn_mode="scalable"
        )
        assert lb.sender.completed
        assert lb.receiver.rcv_next == flow_size

    @given(
        flow_size=st.integers(min_value=1, max_value=100),
        pattern=st.lists(
            st.sampled_from([FORWARD, FORWARD, FORWARD, MARK, DROP]),
            min_size=5,
            max_size=10,
        ).filter(lambda p: p.count(FORWARD) >= 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_ecn_cubic_mixed_marks_and_losses(self, flow_size, pattern):
        lb = run_flow(
            CubicSender, flow_size, pattern, sack=False, ecn_mode="classic"
        )
        assert lb.sender.completed
        assert lb.receiver.rcv_next == flow_size


class TestSenderInvariants:
    @given(
        pattern=st.lists(verdicts, min_size=4, max_size=10).filter(
            lambda p: p.count(FORWARD) >= max(1, len(p) // 2)
        ),
        sack=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_window_and_sequence_invariants(self, pattern, sack):
        sim = Simulator()
        counter = {"n": 0}

        def interceptor(pkt):
            verdict = pattern[counter["n"] % len(pattern)]
            counter["n"] += 1
            return verdict

        lb = Loopback(
            sim, sender_cls=RenoSender, rtt=0.05, flow_size=150,
            sack=sack, interceptor=interceptor,
        )
        violations = []

        def check():
            s = lb.sender
            if s.una > s.next_seq:
                violations.append("una ahead of next_seq")
            if s.cwnd < 1.0:
                violations.append(f"cwnd below 1 ({s.cwnd})")
            if s.ssthresh < s.min_cwnd:
                violations.append("ssthresh below floor")

        sim.every(0.01, check)
        lb.sender.start(0.0)
        sim.run(300.0)
        assert violations == []
        assert lb.sender.completed
