"""Property-based tests for queue and link conservation invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.fixed import FixedProbabilityAqm
from repro.net.link import Link
from repro.net.node import CountingSink
from repro.net.packet import Packet
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator


packet_sizes = st.integers(min_value=64, max_value=9000)


class TestQueueConservation:
    @given(
        sizes=st.lists(packet_sizes, min_size=1, max_size=60),
        buffer_packets=st.integers(min_value=1, max_value=30),
        ops=st.lists(st.booleans(), min_size=1, max_size=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_byte_and_packet_accounting(self, sizes, buffer_packets, ops):
        """Under arbitrary interleavings of enqueue/dequeue, the byte and
        packet counters always equal the sum over resident packets, and
        arrivals = enqueued + dropped."""
        sim = Simulator()
        q = AQMQueue(sim, None, 10e6, buffer_packets=buffer_packets)
        resident = []
        size_iter = iter(sizes * ((len(ops) // len(sizes)) + 1))
        for do_enqueue in ops:
            if do_enqueue:
                pkt = Packet(flow_id=0, size=next(size_iter))
                if q.enqueue(pkt):
                    resident.append(pkt)
            else:
                out = q.dequeue()
                if resident:
                    assert out is resident.pop(0)
                else:
                    assert out is None
            assert q.packet_length() == len(resident)
            assert q.byte_length() == sum(p.size for p in resident)
        stats = q.stats
        assert stats.arrived == stats.enqueued + stats.tail_dropped
        assert stats.dequeued == stats.enqueued - len(resident)

    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_aqm_drop_accounting(self, p, n, seed):
        sim = Simulator()
        q = AQMQueue(
            sim, FixedProbabilityAqm(p, random.Random(seed), ecn=False), 10e6
        )
        accepted = sum(q.enqueue(Packet(flow_id=0, size=1000)) for _ in range(n))
        assert q.stats.enqueued == accepted
        assert q.stats.aqm_dropped == n - accepted


class TestLinkConservation:
    @given(
        sizes=st.lists(packet_sizes, min_size=1, max_size=40),
        capacity_mbps=st.sampled_from([1.0, 10.0, 100.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_enqueued_bytes_eventually_delivered(self, sizes, capacity_mbps):
        sim = Simulator()
        q = AQMQueue(sim, None, capacity_mbps * 1e6)
        sink = CountingSink()
        link = Link(sim, q, capacity_mbps * 1e6, sink=sink)
        for size in sizes:
            q.enqueue(Packet(flow_id=0, size=size))
        # Run long enough to drain everything.
        sim.run(sum(sizes) * 8 / (capacity_mbps * 1e6) + 1.0)
        assert sink.bytes == sum(sizes)
        assert sink.packets == len(sizes)
        assert link.bytes_sent == sum(sizes)
        assert q.byte_length() == 0

    @given(sizes=st.lists(packet_sizes, min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_busy_time_equals_serialization_total(self, sizes):
        sim = Simulator()
        capacity = 8e6
        q = AQMQueue(sim, None, capacity)
        link = Link(sim, q, capacity, sink=CountingSink())
        for size in sizes:
            q.enqueue(Packet(flow_id=0, size=size))
        sim.run(sum(sizes) * 8 / capacity + 1.0)
        expected = sum(size * 8 / capacity for size in sizes)
        assert abs(link.busy_time - expected) < 1e-9
