"""Property-based tests of the fluid model's equilibrium identities.

Across random operating conditions (capacity, flow count, RTT), the
integrated fluid model must land on the closed-form operating point of
equation (19):  W₀ = R₀C/N with R₀ = Tp + τ₀, queue delay = τ₀, and the
controller output satisfying the plant's window law.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.timedomain import FluidScenario, simulate_fluid


@st.composite
def operating_points(draw):
    # n ≥ 5 keeps the per-flow sawtooth small relative to the aggregate,
    # so cycle-averaged means approximate the fixed point (with 2 flows
    # the nonlinear limit cycle biases mean(W)·mean(p') — a Jensen effect,
    # not a model error).
    capacity_mbps = draw(st.sampled_from([5.0, 10.0, 20.0, 50.0]))
    n_flows = draw(st.integers(min_value=5, max_value=20))
    base_rtt_ms = draw(st.sampled_from([20.0, 50.0, 100.0]))
    cap_pps = capacity_mbps * 1e6 / (1448 * 8)
    # Keep the equilibrium window comfortably above the 1-packet floor
    # and the signal probability within (0, 1).
    r0 = base_rtt_ms / 1e3 + 0.020
    w0 = r0 * cap_pps / n_flows
    assume(4.0 < w0 < 2000.0)
    return cap_pps, n_flows, base_rtt_ms / 1e3


class TestEquilibriumProperties:
    @given(op=operating_points())
    @settings(max_examples=12, deadline=None)
    def test_pi2_operating_point(self, op):
        cap_pps, n_flows, base_rtt = op
        result = simulate_fluid(
            FluidScenario(
                capacity_pps=cap_pps, n_flows=n_flows, base_rtt=base_rtt,
                alpha=0.3125, beta=3.125, kind="reno_pi2",
                duration=max(60.0, 400 * base_rtt), dt=0.001,
            )
        )
        r0 = base_rtt + 0.020
        w0 = r0 * cap_pps / n_flows
        assert result.tail_mean("queue_delay") == pytest.approx(0.020, rel=0.1)
        assert result.tail_mean("window") == pytest.approx(w0, rel=0.1)
        # Reno-with-square operating identity (W₀·p₀′)² = 2 holds at the
        # fixed point; when the loop rides a benign limit cycle, clipping
        # at p' = 0 biases mean(p') low, so assert a sanity band.
        p0 = result.tail_mean("p_prime")
        assert 0.8 < (result.tail_mean("window") * p0) ** 2 < 3.0

    @given(op=operating_points())
    @settings(max_examples=8, deadline=None)
    def test_scalable_operating_point(self, op):
        cap_pps, n_flows, base_rtt = op
        result = simulate_fluid(
            FluidScenario(
                capacity_pps=cap_pps, n_flows=n_flows, base_rtt=base_rtt,
                alpha=0.625, beta=6.25, kind="scal_pi",
                duration=max(60.0, 400 * base_rtt), dt=0.001,
            )
        )
        w0 = (base_rtt + 0.020) * cap_pps / n_flows
        p0 = result.tail_mean("p_prime")
        assert 1.2 < result.tail_mean("window") * p0 < 2.8
        assert result.tail_mean("window") == pytest.approx(w0, rel=0.1)

    @given(st.sampled_from([0.0005, 0.001, 0.002]))
    @settings(max_examples=3, deadline=None)
    def test_integration_step_insensitivity(self, dt):
        """The equilibrium must not depend on the integration step."""
        result = simulate_fluid(
            FluidScenario(
                capacity_pps=10e6 / (1448 * 8), n_flows=5, base_rtt=0.1,
                alpha=0.3125, beta=3.125, kind="reno_pi2",
                duration=60.0, dt=dt,
            )
        )
        assert result.tail_mean("queue_delay") == pytest.approx(0.020, rel=0.05)
