"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqm.pi import PIController
from repro.aqm.tune_table import sqrt2p, tune
from repro.core.coupling import (
    classic_from_linear,
    classic_from_scalable,
    linear_from_classic,
    scalable_from_classic,
)
from repro.metrics.stats import ecdf, jain_fairness, percentile_summary
from repro.sim.engine import Simulator
from repro.traffic.web import bounded_pareto_segments

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_floats = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run(200.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
           st.integers(min_value=0, max_value=29))
    @settings(max_examples=30, deadline=None)
    def test_cancellation_removes_exactly_one(self, delays, idx):
        sim = Simulator()
        fired = []
        events = [sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
        victim = idx % len(events)
        events[victim].cancel()
        sim.run(100.0)
        assert victim not in fired
        assert len(fired) == len(delays) - 1


class TestPiControllerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_output_always_clamped(self, delays):
        ctl = PIController(alpha=0.3125, beta=3.125, target=0.020)
        for d in delays:
            p = ctl.update(d)
            assert 0.0 <= p <= 1.0

    @given(st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_steady_delay_above_target_increases_p(self, extra):
        ctl = PIController(alpha=0.3125, beta=3.125, target=0.020)
        delay = 0.020 + 1e-6 + extra
        p_prev = -1.0
        for _ in range(10):
            p = ctl.update(delay)
            if p < 1.0:
                assert p > p_prev
            p_prev = p

    @given(probabilities)
    @settings(max_examples=50, deadline=None)
    def test_p_max_respected(self, p_max):
        if p_max <= 0:
            return
        ctl = PIController(alpha=10.0, beta=10.0, target=0.001, p_max=p_max)
        for _ in range(50):
            ctl.update(10.0)
        assert ctl.p <= p_max


class TestCouplingProperties:
    @given(probabilities)
    @settings(max_examples=100, deadline=None)
    def test_square_round_trip(self, p):
        assert linear_from_classic(classic_from_linear(p)) == (
            math.sqrt(p * p) if True else p
        )
        assert abs(linear_from_classic(classic_from_linear(p)) - p) < 1e-9

    @given(probabilities, st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=100, deadline=None)
    def test_classic_never_exceeds_scalable(self, ps, k):
        assert classic_from_scalable(ps, k) <= ps + 1e-12

    @given(probabilities, st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=100, deadline=None)
    def test_coupling_round_trip_below_clamp(self, ps, k):
        pc = classic_from_scalable(ps, k)
        if pc < 1.0 and k * math.sqrt(pc) <= 1.0:
            assert abs(scalable_from_classic(pc, k) - ps) < 1e-9

    @given(st.lists(probabilities, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_squaring_is_monotone(self, ps):
        ordered = sorted(ps)
        squared = [classic_from_linear(p) for p in ordered]
        assert squared == sorted(squared)


class TestTuneTableProperties:
    @given(probabilities)
    @settings(max_examples=200, deadline=None)
    def test_tune_bounded(self, p):
        assert 1 / 2048 <= tune(p) <= 1.0

    @given(probabilities, probabilities)
    @settings(max_examples=200, deadline=None)
    def test_tune_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert tune(lo) <= tune(hi)

    @given(st.floats(min_value=1e-9, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_sqrt2p_monotone_and_positive(self, p):
        assert sqrt2p(p) > 0
        assert sqrt2p(p) <= sqrt2p(min(1.0, p * 2)) + 1e-12


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_ecdf_is_valid_distribution(self, xs):
        vals, probs = ecdf(xs)
        assert list(vals) == sorted(vals)
        assert probs[-1] == 1.0
        assert all(0 < p <= 1.0 for p in probs)
        assert list(probs) == sorted(probs)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_ordered(self, xs):
        out = percentile_summary(xs, percentiles=(1, 25, 50, 99))
        assert out["p1"] <= out["p25"] <= out["p50"] <= out["p99"]
        assert out["p1"] <= out["mean"] <= out["p99"] or math.isclose(
            out["p1"], out["p99"]
        )

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_jain_fairness_bounds(self, rates):
        f = jain_fairness(rates)
        assert 1 / len(rates) - 1e-9 <= f <= 1.0 + 1e-9


class TestWorkloadProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=50),
           st.integers(min_value=51, max_value=5000))
    @settings(max_examples=50, deadline=None)
    def test_pareto_always_in_bounds(self, seed, lo, hi):
        rng = random.Random(seed)
        for _ in range(20):
            s = bounded_pareto_segments(rng, minimum=lo, maximum=hi)
            assert lo <= s <= hi
