"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_scenarios_and_aqms(self):
        code, text = run_cli("list")
        assert code == 0
        assert "light" in text and "pi2" in text and "coupled" in text


class TestRun:
    def test_light_scenario_summary(self):
        code, text = run_cli("run", "--scenario", "light", "--aqm", "pi2",
                             "--duration", "10")
        assert code == 0
        assert "queue delay mean" in text
        assert "utilization" in text

    def test_taildrop_aqm(self):
        code, text = run_cli("run", "--scenario", "light", "--aqm", "taildrop",
                             "--duration", "8")
        assert code == 0
        assert "tail drops" in text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "--scenario", "bogus")

    def test_dynamic_scenario_uses_stage(self):
        code, text = run_cli("run", "--scenario", "capacity", "--aqm", "pi2",
                             "--duration", "5")
        assert code == 0
        assert "duration=15s" in text  # 3 stages of 5 s

    def test_json_export(self, tmp_path):
        import json

        path = tmp_path / "out.json"
        code, text = run_cli("run", "--scenario", "light", "--aqm", "pi2",
                             "--duration", "8", "--json", str(path))
        assert code == 0
        assert f"wrote {path}" in text
        assert json.loads(path.read_text())["config"]["capacity_bps"] == 10e6


class TestRunValidateAndFaults:
    def test_validate_flag_reports_checks(self):
        code, text = run_cli("run", "--scenario", "light", "--aqm", "pi2",
                             "--duration", "8", "--validate")
        assert code == 0
        assert "invariant checks" in text

    def test_fault_flag_injects_and_reports(self):
        code, text = run_cli("run", "--scenario", "light", "--aqm", "pi2",
                             "--duration", "10",
                             "--fault", "burstloss:3:4:0.05:8")
        assert code == 0
        assert "fault drops" in text

    def test_repeatable_fault_flag(self):
        code, text = run_cli("run", "--scenario", "light", "--aqm", "pi2",
                             "--duration", "10",
                             "--fault", "flap:3:1",
                             "--fault", "stall:5:2")
        assert code == 0
        assert "queue delay mean" in text

    def test_bad_fault_spec_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cli("run", "--scenario", "light", "--fault", "meteor:1:2")

    def test_fault_beyond_duration_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cli("run", "--scenario", "light", "--duration", "5",
                    "--fault", "flap:30:2")


class TestCoexist:
    def test_reports_ratio(self):
        code, text = run_cli("coexist", "--aqm", "coupled", "--link", "10",
                             "--rtt", "10", "--duration", "10")
        assert code == 0
        assert "cubic/dctcp ratio" in text
        assert "dctcp [Mb/s]" in text


class TestBode:
    def test_reports_margins(self):
        code, text = run_cli("bode", "--kind", "reno_pi2", "--p", "0.01")
        assert code == 0
        assert "gain margin" in text
        assert "True" in text  # stable at this operating point

    def test_fixed_gain_low_p_unstable(self):
        code, text = run_cli("bode", "--kind", "reno_pi", "--p", "0.0001")
        assert code == 0
        assert "False" in text

    def test_custom_gains(self):
        code, text = run_cli("bode", "--kind", "reno_pi2", "--p", "0.01",
                             "--alpha", "0.125", "--beta", "1.25")
        assert code == 0
        assert "alpha=0.125" in text


class TestFigure:
    def test_analytic_figure_renders(self):
        code, text = run_cli("figure", "fig05")
        assert code == 0
        assert "sqrt(2p)" in text

    def test_csv_export(self, tmp_path):
        path = tmp_path / "fig04.csv"
        code, text = run_cli("figure", "fig04", "--csv", str(path))
        assert code == 0
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert header.startswith("p,")

    def test_unknown_figure_errors(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            run_cli("figure", "fig99")

    def test_listed_in_list(self):
        code, text = run_cli("list")
        assert "fig12" in text


class TestFluid:
    def test_reports_steady_state(self):
        code, text = run_cli("fluid", "--flows", "5", "--duration", "30")
        assert code == 0
        assert "steady queue delay" in text

    def test_scalable_kind(self):
        code, text = run_cli("fluid", "--kind", "scal_pi", "--duration", "30")
        assert code == 0
        assert "kind=scal_pi" in text
