"""Edge-case tests for the TCP sender machinery."""

import pytest

from repro.tcp.cubic import CubicSender
from tests.tcp.helpers import Loopback, drop_seqs, mark_seqs


class TestTinyFlows:
    def test_single_segment_flow(self, sim):
        done = []
        lb = Loopback(sim, rtt=0.1, flow_size=1, on_complete=done.append)
        lb.sender.start(0.0)
        sim.run(2.0)
        assert lb.sender.completed
        assert done == [pytest.approx(0.1, abs=0.02)]

    def test_single_segment_lost_then_recovered(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=1, interceptor=drop_seqs(0))
        lb.sender.start(0.0)
        sim.run(10.0)
        # Too few dupacks possible: recovery must come from the RTO.
        assert lb.sender.completed
        assert lb.sender.timeouts >= 1

    def test_two_segment_flow_with_second_lost(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=2, interceptor=drop_seqs(1))
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.receiver.rcv_next == 2


class TestRttEstimation:
    def test_srtt_converges_after_first_sample(self, sim):
        lb = Loopback(sim, rtt=0.08, flow_size=100)
        lb.sender.start(0.0)
        sim.run(5.0)
        assert lb.sender.srtt == pytest.approx(0.08, rel=0.05)
        assert lb.sender.rto >= lb.sender.srtt

    def test_rttvar_shrinks_on_steady_path(self, sim):
        lb = Loopback(sim, rtt=0.08, flow_size=300)
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.rttvar < 0.02


class TestEcnEdgeCases:
    def test_ece_during_recovery_no_double_reduction(self, sim):
        """A mark and a loss inside the same window must not stack two
        reductions beyond the CC's intent (loss enters recovery; ECE on
        later dupacks is the same congestion event window)."""
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=300,
            interceptor=lambda pkt: (
                "drop" if (not pkt.is_retransmit and pkt.seq == 50)
                else ("mark" if (not pkt.is_retransmit and pkt.seq == 52) else "forward")
            ),
        )
        lb.sender.start(0.0)
        sim.run(15.0)
        assert lb.sender.completed
        total_reductions = lb.sender.loss_reductions + lb.sender.ecn_reductions
        assert total_reductions <= 2

    def test_cwr_flag_sent_after_ecn_reduction(self, sim):
        seen_cwr = []
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=200,
            interceptor=mark_seqs(40),
        )
        original = lb.fwd.deliver
        lb.fwd.deliver = lambda pkt: (seen_cwr.append(pkt.cwr), original(pkt))
        lb.sender.start(0.0)
        sim.run(10.0)
        assert any(seen_cwr)
        # Exactly one CWR per reduction.
        assert sum(seen_cwr) == lb.sender.ecn_reductions


class TestCubicRegions:
    def test_concave_plateau_growth_is_slow(self, sim):
        s = CubicSender(sim, 0, transmit=lambda p: None)
        s.srtt = 0.1
        s.ssthresh = 10.0
        s._w_max = 1000.0
        s.cwnd = 500.0
        s._epoch_start = -1.0
        before = s.cwnd
        s.ca_increase(1)
        # Far below w_max the cubic target is above cwnd: growth happens,
        # but bounded by the 1.5/ACK cap.
        assert before < s.cwnd <= before + 1.5

    def test_near_wmax_growth_nearly_flat(self, sim):
        s = CubicSender(sim, 0, transmit=lambda p: None)
        s.srtt = 0.01
        s.ssthresh = 10.0
        s._w_max = 100.0
        s.cwnd = 100.0
        s._epoch_start = sim.now  # K computed so plateau is at w_max
        s._origin = 100.0
        s._k = 0.0
        before = s.cwnd
        s.ca_increase(1)
        assert s.cwnd - before < 0.5


class TestStopSemantics:
    def test_stop_marks_completed_and_freezes_counters(self, sim):
        lb = Loopback(sim, rtt=0.1)
        lb.sender.start(0.0)
        sim.run(1.0)
        lb.sender.stop()
        sent = lb.sender.segments_sent
        sim.run(5.0)
        assert lb.sender.completed
        assert lb.sender.segments_sent == sent

    def test_stop_before_start_is_safe(self, sim):
        lb = Loopback(sim, rtt=0.1)
        lb.sender.stop()
        assert lb.sender.completed
