"""Unit tests for Cubic / CReno / ECN-Cubic."""

import pytest

from repro.tcp.cubic import CUBIC_BETA, CubicSender, EcnCubicSender
from tests.tcp.helpers import Loopback, drop_seqs, mark_seqs


class TestReductionFactor:
    def test_beta_is_point_seven(self, sim):
        lb = Loopback(sim, sender_cls=CubicSender, rtt=0.1)
        assert lb.sender.reduction_factor("loss") == pytest.approx(CUBIC_BETA)
        assert lb.sender.reduction_factor("ecn") == pytest.approx(CUBIC_BETA)

    def test_loss_cuts_by_point_seven(self, sim):
        lb = Loopback(
            sim, sender_cls=CubicSender, rtt=0.1, flow_size=500,
            interceptor=drop_seqs(60),
        )
        cwnds = []
        sim.every(0.01, lambda: cwnds.append(lb.sender.cwnd))
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.loss_reductions == 1
        assert lb.sender.completed


class TestCubicGrowth:
    def test_epoch_resets_on_congestion(self, sim):
        lb = Loopback(
            sim, sender_cls=CubicSender, rtt=0.1, interceptor=drop_seqs(60)
        )
        lb.sender.start(0.0)
        sim.run(3.0)
        assert lb.sender._w_max > 0

    def test_fast_convergence_lowers_wmax(self, sim):
        lb = Loopback(sim, sender_cls=CubicSender, rtt=0.1)
        s = lb.sender
        s._w_max = 100.0
        s.cwnd = 50.0
        s.on_congestion_event("loss")
        assert s._w_max == pytest.approx(50.0 * (2 - CUBIC_BETA) / 2)

    def test_no_fast_convergence_keeps_cwnd_as_wmax(self, sim):
        lb = Loopback(
            sim, sender_cls=CubicSender, rtt=0.1, fast_convergence=False
        )
        s = lb.sender
        s._w_max = 100.0
        s.cwnd = 50.0
        s.on_congestion_event("loss")
        assert s._w_max == 50.0

    def test_window_grows_in_congestion_avoidance(self, sim):
        lb = Loopback(sim, sender_cls=CubicSender, rtt=0.05)
        s = lb.sender
        s.ssthresh = 10  # force CA quickly
        lb.sender.start(0.0)
        sim.run(2.0)
        assert s.cwnd > 10

    def test_invalid_friendly_ai_rejected(self, sim):
        with pytest.raises(ValueError):
            CubicSender(sim, 0, transmit=lambda p: None, friendly_ai=0)


class TestSwitchover:
    """Equation (8): CReno iff W·R^{3/2} < 3.5."""

    def test_small_window_short_rtt_is_creno(self):
        assert CubicSender.switchover_is_creno(window=20, rtt=0.01)

    def test_large_window_long_rtt_is_cubic(self):
        assert not CubicSender.switchover_is_creno(window=500, rtt=0.1)

    def test_threshold_boundary(self):
        # W·R^1.5 = 3.5 exactly → not CReno (strict inequality).
        rtt = 0.1
        w = 3.5 / rtt ** 1.5
        assert not CubicSender.switchover_is_creno(w, rtt)
        assert CubicSender.switchover_is_creno(w * 0.99, rtt)


class TestEcnCubic:
    def test_defaults_to_classic_ecn(self, sim):
        lb = Loopback(sim, sender_cls=EcnCubicSender, rtt=0.1, ecn_mode="classic")
        assert lb.sender.ecn_mode == "classic"

    def test_rejects_non_classic_mode(self, sim):
        with pytest.raises(ValueError):
            EcnCubicSender(sim, 0, transmit=lambda p: None, ecn_mode="off")

    def test_mark_reduces_without_retransmit(self, sim):
        lb = Loopback(
            sim, sender_cls=EcnCubicSender, rtt=0.1, ecn_mode="classic",
            flow_size=300, interceptor=mark_seqs(60),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.sender.ecn_reductions == 1
        assert lb.sender.retransmits == 0
