"""Tests for the Relentless and Scalable-TCP senders (paper §5's list)."""

import pytest

from repro.aqm.fixed import FixedProbabilityAqm
from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.tcp.scalable import STCP_A, STCP_B, RelentlessSender, ScalableTcpSender

MSS = 1448
RTT = 0.04


def measure_window(cc, p, duration=50.0, seed=5):
    exp = Experiment(
        capacity_bps=200e6, duration=duration, warmup=15.0,
        aqm_factory=lambda rng: FixedProbabilityAqm(p, rng),
        flows=[FlowGroup(cc=cc, count=1, rtt=RTT, label="x")],
        seed=seed, record_sojourns=False,
    )
    return sum(run_experiment(exp).goodputs("x")) * RTT / (MSS * 8)


class TestConfiguration:
    def test_relentless_requires_scalable_mode(self, sim):
        with pytest.raises(ValueError):
            RelentlessSender(sim, 0, transmit=lambda p: None, ecn_mode="off")

    def test_stcp_requires_scalable_mode(self, sim):
        with pytest.raises(ValueError):
            ScalableTcpSender(sim, 0, transmit=lambda p: None, ecn_mode="classic")

    def test_stcp_parameter_validation(self, sim):
        with pytest.raises(ValueError):
            ScalableTcpSender(sim, 0, transmit=lambda p: None, a=0)
        with pytest.raises(ValueError):
            ScalableTcpSender(sim, 0, transmit=lambda p: None, b=1.5)


class TestUnitResponses:
    def test_relentless_subtracts_one_per_mark(self, sim):
        s = RelentlessSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 50.0
        s.on_round_end(acked=20, marked=3)
        assert s.cwnd == pytest.approx(47.0)
        assert s.ssthresh == pytest.approx(47.0)

    def test_relentless_floor(self, sim):
        s = RelentlessSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 3.0
        s.on_round_end(acked=3, marked=10)
        assert s.cwnd == s.min_cwnd

    def test_stcp_mimd_growth(self, sim):
        s = ScalableTcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.ssthresh = 100.0
        s.ca_increase(100)  # one full window of ACKs
        assert s.cwnd == pytest.approx(100.0 * (1 + STCP_A))

    def test_stcp_cut_per_mark(self, sim):
        s = ScalableTcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.on_round_end(acked=50, marked=2)
        assert s.cwnd == pytest.approx(100.0 * (1 - STCP_B) ** 2)

    def test_unmarked_round_no_cut(self, sim):
        s = ScalableTcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.on_round_end(acked=50, marked=0)
        assert s.cwnd == 100.0


class TestWindowLaws:
    """Both are Scalable: W ∝ 1/p (B = 1)."""

    def test_relentless_w_equals_one_over_p(self):
        # Balance: +1 per RTT vs p·W marks each costing 1 → W = 1/p.
        for p in (0.02, 0.05):
            w = measure_window("relentless", p)
            assert w == pytest.approx(1.0 / p, rel=0.25), p

    def test_stcp_w_equals_a_over_bp(self):
        # Balance: a·W growth vs b·W per mark × p·W marks → W = (a/b)/p.
        for p in (0.002, 0.004):
            w = measure_window("scalable-tcp", p)
            assert w == pytest.approx((STCP_A / STCP_B) / p, rel=0.3), p

    def test_linear_exponents(self):
        w1 = measure_window("relentless", 0.02)
        w2 = measure_window("relentless", 0.04)
        assert w1 / w2 == pytest.approx(2.0, rel=0.25)


class TestCoexistence:
    def test_relentless_coexists_with_cubic_under_coupled(self):
        """Relentless (W = 1/p) is half as aggressive as DCTCP (2/p), so
        under k = 2 coupling it gets roughly half of Cubic's share —
        still bounded coexistence, no starvation either way."""
        from repro.harness import MBPS, coupled_factory

        exp = Experiment(
            capacity_bps=40 * MBPS, duration=25.0, warmup=10.0,
            aqm_factory=coupled_factory(),
            flows=[
                FlowGroup(cc="relentless", count=1, rtt=0.010, label="rel"),
                FlowGroup(cc="cubic", count=1, rtt=0.010, label="cubic"),
            ],
        )
        r = run_experiment(exp)
        ratio = r.balance("cubic", "rel")
        assert 0.5 < ratio < 8.0
        assert r.mean_utilization() > 0.90
