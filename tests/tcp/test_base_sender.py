"""Unit tests for the shared TCP sender machinery."""


import pytest

from repro.tcp.base import MIN_RTO, TcpSender
from tests.tcp.helpers import DROP, FORWARD, Loopback, drop_seqs, mark_seqs


class TestValidation:
    def test_bad_ecn_mode_rejected(self, sim):
        with pytest.raises(ValueError):
            TcpSender(sim, 0, transmit=lambda p: None, ecn_mode="bogus")

    def test_bad_flow_size_rejected(self, sim):
        with pytest.raises(ValueError):
            TcpSender(sim, 0, transmit=lambda p: None, flow_size=0)


class TestStartup:
    def test_initial_window_burst(self, sim):
        lb = Loopback(sim, rtt=0.1)
        lb.sender.start(0.0)
        sim.run(0.01)  # before any ACK returns
        assert lb.forwarded == 10  # IW10

    def test_start_time_respected(self, sim):
        lb = Loopback(sim)
        lb.sender.start(2.0)
        sim.run(1.9)
        assert lb.forwarded == 0
        sim.run(2.05)  # less than one RTT after start: just the IW burst
        assert lb.forwarded == 10

    def test_slow_start_doubles_per_rtt(self, sim):
        lb = Loopback(sim, rtt=0.1)
        lb.sender.start(0.0)
        sim.run(0.35)  # ~3 RTTs in
        # cwnd should have grown well beyond IW10 (exponential growth).
        assert lb.sender.cwnd >= 40


class TestAckClocking:
    def test_progress_tracks_acks(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=100)
        lb.sender.start(0.0)
        sim.run(5.0)
        assert lb.sender.una == 100
        assert lb.receiver.rcv_next == 100

    def test_flow_completion(self, sim):
        done = []
        lb = Loopback(sim, rtt=0.1, flow_size=30, on_complete=done.append)
        lb.sender.start(0.0)
        sim.run(5.0)
        assert lb.sender.completed
        assert len(done) == 1
        assert done[0] > 0

    def test_rtt_estimate_close_to_path_rtt(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=50)
        lb.sender.start(0.0)
        sim.run(5.0)
        assert lb.sender.srtt == pytest.approx(0.1, rel=0.05)

    def test_no_data_after_stop(self, sim):
        lb = Loopback(sim, rtt=0.1)
        lb.sender.start(0.0)
        sim.schedule(1.0, lb.sender.stop)
        sim.run(1.2)
        sent_at_stop = lb.sender.segments_sent
        sim.run(3.0)
        assert lb.sender.segments_sent == sent_at_stop


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=200, interceptor=drop_seqs(50))
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.sender.timeouts == 0
        assert lb.sender.loss_reductions == 1
        assert lb.sender.retransmits >= 1

    def test_loss_halves_window(self, sim):
        lb = Loopback(sim, rtt=0.1, interceptor=drop_seqs(40))
        lb.sender.start(0.0)
        # Sample cwnd shortly after the loss is repaired.
        cwnds = []
        sim.every(0.05, lambda: cwnds.append((sim.now, lb.sender.cwnd)))
        sim.run(2.0)
        peak_before = max(c for t, c in cwnds if t < 0.6)
        after = [c for t, c in cwnds if 0.8 < t < 1.0]
        assert min(after) < peak_before

    def test_multiple_losses_one_window_single_reduction(self, sim):
        # NewReno treats losses within one window as one congestion event.
        lb = Loopback(sim, rtt=0.1, flow_size=300, interceptor=drop_seqs(50, 52, 54))
        lb.sender.start(0.0)
        sim.run(15.0)
        assert lb.sender.completed
        assert lb.sender.loss_reductions == 1

    def test_receiver_sees_every_segment_despite_loss(self, sim):
        lb = Loopback(
            sim, rtt=0.1, flow_size=150, interceptor=drop_seqs(10, 60, 110)
        )
        lb.sender.start(0.0)
        sim.run(15.0)
        assert lb.receiver.rcv_next == 150


class TestTimeout:
    def test_lost_retransmit_triggers_rto(self, sim):
        # Drop seq 30 twice (first transmission and the fast retransmit).
        drops = {"count": 0}

        def interceptor(pkt):
            if pkt.seq == 30 and drops["count"] < 2:
                drops["count"] += 1
                return DROP
            return FORWARD

        lb = Loopback(sim, rtt=0.1, flow_size=120, interceptor=interceptor)
        lb.sender.start(0.0)
        sim.run(20.0)
        assert lb.sender.completed
        assert lb.sender.timeouts >= 1

    def test_rto_collapses_window_to_one(self, sim):
        drops = {"count": 0}

        def interceptor(pkt):
            if pkt.seq == 30 and drops["count"] < 2:
                drops["count"] += 1
                return DROP
            return FORWARD

        lb = Loopback(sim, rtt=0.1, interceptor=interceptor)
        lb.sender.start(0.0)
        cwnd_after_rto = []

        def watch():
            if lb.sender.timeouts >= 1 and not cwnd_after_rto:
                cwnd_after_rto.append(lb.sender.cwnd)

        sim.every(0.01, watch)
        sim.run(5.0)
        assert cwnd_after_rto and cwnd_after_rto[0] <= 2.0

    def test_min_rto_respected(self, sim):
        lb = Loopback(sim, rtt=0.001, flow_size=20)
        lb.sender.start(0.0)
        sim.run(1.0)
        assert lb.sender.rto >= MIN_RTO

    def test_total_blackout_retries_with_backoff(self, sim):
        lb = Loopback(sim, rtt=0.1, interceptor=lambda pkt: DROP)
        lb.sender.start(0.0)
        sim.run(10.0)
        # Everything is dropped: only timeouts can fire, with backoff.
        assert lb.sender.timeouts >= 2
        assert lb.sender.una == 0


class TestClassicEcn:
    def test_mark_triggers_single_reduction(self, sim):
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=200,
            interceptor=mark_seqs(50),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.sender.ecn_reductions == 1
        assert lb.sender.loss_reductions == 0
        assert lb.sender.retransmits == 0

    def test_marks_in_same_window_count_once(self, sim):
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=300,
            interceptor=mark_seqs(50, 51, 52, 53),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.ecn_reductions == 1

    def test_cwr_stops_persistent_echo(self, sim):
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=400,
            interceptor=mark_seqs(50),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        # After CWR the receiver must stop echoing; exactly one reduction.
        assert lb.sender.ecn_reductions == 1
        assert lb.sender.completed

    def test_marks_in_distinct_windows_count_separately(self, sim):
        lb = Loopback(
            sim, rtt=0.1, ecn_mode="classic", flow_size=600,
            interceptor=mark_seqs(50, 400),
        )
        lb.sender.start(0.0)
        sim.run(20.0)
        assert lb.sender.ecn_reductions == 2

    def test_off_mode_ignores_would_be_marks(self, sim):
        # Not-ECT packets cannot be marked; mark_ce would raise, so the
        # interceptor should never be asked to mark a Not-ECT packet in a
        # correctly configured test.  Here we just assert data is Not-ECT.
        seen_ecn = []
        lb = Loopback(sim, rtt=0.1, flow_size=20)
        original = lb.fwd.deliver
        lb.fwd.deliver = lambda pkt: (seen_ecn.append(pkt.ecn), original(pkt))
        lb.sender.start(0.0)
        sim.run(5.0)
        assert all(not e.ecn_capable for e in seen_ecn)


class TestWindowAccounting:
    def test_flight_never_exceeds_window_plus_allowance(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=500)
        violations = []

        def check():
            s = lb.sender
            if s.flight_size > s.cwnd + max(s._inflation, 2) + 1:
                violations.append((sim.now, s.flight_size, s.cwnd))

        sim.every(0.001, check)
        lb.sender.start(0.0)
        sim.run(10.0)
        assert violations == []

    def test_cwnd_never_below_floor_outside_rto(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=300, interceptor=drop_seqs(30, 90))
        lb.sender.start(0.0)
        sim.run(15.0)
        assert lb.sender.cwnd >= 1.0
