"""Unit tests for the TCP receiver: ACK generation and ECN echo."""

import pytest

from repro.net.packet import ECN, Packet
from repro.tcp.receiver import DELACK_TIMEOUT, TcpReceiver


def data(seq, ecn=ECN.NOT_ECT, cwr=False, ce=False):
    pkt = Packet(flow_id=0, seq=seq, ecn=ecn, cwr=cwr)
    if ce:
        pkt.mark_ce()
    return pkt


@pytest.fixture
def acks():
    return []


def make_receiver(sim, acks, ecn_mode="off", delayed_acks=False):
    return TcpReceiver(
        sim, flow_id=0, ack_out=acks.append, ecn_mode=ecn_mode,
        delayed_acks=delayed_acks,
    )


class TestCumulativeAcks:
    def test_in_order_advances(self, sim, acks):
        rcv = make_receiver(sim, acks)
        for i in range(3):
            rcv.deliver(data(i))
        assert [a.ack for a in acks] == [1, 2, 3]

    def test_out_of_order_generates_dupacks(self, sim, acks):
        rcv = make_receiver(sim, acks)
        rcv.deliver(data(0))
        rcv.deliver(data(2))  # hole at 1
        rcv.deliver(data(3))
        assert [a.ack for a in acks] == [1, 1, 1]

    def test_hole_fill_jumps_cumulatively(self, sim, acks):
        rcv = make_receiver(sim, acks)
        rcv.deliver(data(0))
        rcv.deliver(data(2))
        rcv.deliver(data(1))
        assert acks[-1].ack == 3

    def test_duplicate_segment_reacked(self, sim, acks):
        rcv = make_receiver(sim, acks)
        rcv.deliver(data(0))
        rcv.deliver(data(0))
        assert [a.ack for a in acks] == [1, 1]
        assert rcv.duplicates == 1

    def test_acks_are_ack_packets(self, sim, acks):
        rcv = make_receiver(sim, acks)
        rcv.deliver(data(0))
        assert acks[0].is_ack

    def test_ignores_delivered_acks(self, sim, acks):
        rcv = make_receiver(sim, acks)
        rcv.deliver(Packet(flow_id=0, ack=5, is_ack=True))
        assert acks == []

    def test_timestamp_echo(self, sim, acks):
        rcv = make_receiver(sim, acks)
        pkt = data(0)
        pkt.send_time = 1.25
        rcv.deliver(pkt)
        assert acks[0].send_time == 1.25


class TestDelayedAcks:
    def test_every_second_segment_acked(self, sim, acks):
        rcv = make_receiver(sim, acks, delayed_acks=True)
        rcv.deliver(data(0))
        assert acks == []  # held back
        rcv.deliver(data(1))
        assert [a.ack for a in acks] == [2]

    def test_delack_timer_flushes_single_segment(self, sim, acks):
        rcv = make_receiver(sim, acks, delayed_acks=True)
        rcv.deliver(data(0))
        sim.run(DELACK_TIMEOUT + 0.001)
        assert [a.ack for a in acks] == [1]

    def test_out_of_order_acks_immediately(self, sim, acks):
        rcv = make_receiver(sim, acks, delayed_acks=True)
        rcv.deliver(data(0))
        rcv.deliver(data(2))
        # The OOO arrival must flush immediately (duplicate ACK).
        assert [a.ack for a in acks][-1] == 1


class TestClassicEcho:
    def test_ce_latches_ece(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="classic")
        rcv.deliver(data(0, ecn=ECN.ECT0, ce=True))
        rcv.deliver(data(1, ecn=ECN.ECT0))
        assert acks[0].ece and acks[1].ece

    def test_cwr_clears_latch(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="classic")
        rcv.deliver(data(0, ecn=ECN.ECT0, ce=True))
        rcv.deliver(data(1, ecn=ECN.ECT0, cwr=True))
        rcv.deliver(data(2, ecn=ECN.ECT0))
        assert acks[0].ece
        assert not acks[1].ece
        assert not acks[2].ece


class TestDctcpEcho:
    def test_accurate_per_packet_echo(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="scalable")
        rcv.deliver(data(0, ecn=ECN.ECT1, ce=True))
        rcv.deliver(data(1, ecn=ECN.ECT1))
        rcv.deliver(data(2, ecn=ECN.ECT1, ce=True))
        assert [a.ece for a in acks] == [True, False, True]

    def test_ce_state_change_flushes_pending_delack(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="scalable", delayed_acks=True)
        rcv.deliver(data(0, ecn=ECN.ECT1))          # pending, unmarked run
        rcv.deliver(data(1, ecn=ECN.ECT1, ce=True)) # state change
        # First ACK covers the unmarked run with ece=False.
        assert acks[0].ece is False
        assert acks[0].ack == 1

    def test_off_mode_never_sets_ece(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="off")
        rcv.deliver(data(0))
        assert acks[0].ece is False

    def test_ce_counter(self, sim, acks):
        rcv = make_receiver(sim, acks, ecn_mode="scalable")
        rcv.deliver(data(0, ecn=ECN.ECT1, ce=True))
        rcv.deliver(data(1, ecn=ECN.ECT1, ce=True))
        assert rcv.ce_received == 2
