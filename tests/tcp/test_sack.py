"""Unit tests for SACK recovery (opt-in extension to the NewReno base)."""


from repro.tcp.reno import RenoSender
from tests.tcp.helpers import DROP, FORWARD, Loopback, drop_seqs


class TestSackAdvertisement:
    @staticmethod
    def _record_acks(lb, acks):
        """Intercept ACKs at the sender (the pipe resolves its sink's
        ``deliver`` at call time, so an instance attribute shadows it)."""
        original = lb.sender.deliver
        lb.sender.deliver = lambda pkt: (acks.append(pkt), original(pkt))

    def test_acks_carry_sack_blocks(self, sim):
        acks = []
        lb = Loopback(sim, rtt=0.1, flow_size=60, sack=True,
                      interceptor=drop_seqs(20))
        self._record_acks(lb, acks)
        lb.sender.start(0.0)
        sim.run(5.0)
        with_sack = [a for a in acks if a.sack]
        assert with_sack
        for a in with_sack:
            for start, end in a.sack:
                assert a.ack < start <= end

    def test_no_sack_by_default(self, sim):
        acks = []
        lb = Loopback(sim, rtt=0.1, flow_size=60, interceptor=drop_seqs(20))
        self._record_acks(lb, acks)
        lb.sender.start(0.0)
        sim.run(5.0)
        assert acks
        assert all(a.sack == () for a in acks)


class TestSackRecovery:
    def test_single_loss_recovers(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=300, sack=True,
                      interceptor=drop_seqs(50))
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.sender.timeouts == 0
        assert lb.sender.loss_reductions == 1

    def test_multiple_scattered_losses_one_rtt_repair(self, sim):
        """SACK retransmits one hole per dupack: several same-window
        losses repair within roughly one RTT, without timeouts."""
        lb = Loopback(sim, rtt=0.1, flow_size=400, sack=True,
                      interceptor=drop_seqs(50, 55, 60, 65))
        lb.sender.start(0.0)
        sim.run(15.0)
        assert lb.sender.completed
        assert lb.sender.timeouts == 0
        assert lb.sender.loss_reductions == 1
        # Exactly the four lost segments were retransmitted.
        assert lb.sender.retransmits == 4

    def test_newreno_needs_more_round_trips(self, sim):
        """The same loss pattern under NewReno retransmits via sequential
        partial ACKs — SACK completes no later."""
        times = {}
        for sack in (True, False):
            lb = Loopback(sim=__import__("repro.sim", fromlist=["Simulator"]).Simulator(),
                          rtt=0.1, flow_size=400, sack=sack,
                          interceptor=drop_seqs(50, 55, 60, 65))
            lb.sender.start(0.0)
            lb.sim.run(30.0)
            assert lb.sender.completed
            times[sack] = lb.sender.completion_time
        assert times[True] <= times[False]

    def test_no_spurious_retransmits(self, sim):
        lb = Loopback(sim, rtt=0.1, flow_size=500, sack=True)
        lb.sender.start(0.0)
        sim.run(20.0)
        assert lb.sender.completed
        assert lb.sender.retransmits == 0

    def test_lost_retransmit_recovered_by_rto(self, sim):
        drops = {"n": 0}

        def interceptor(pkt):
            if pkt.seq == 30 and drops["n"] < 2:
                drops["n"] += 1
                return DROP
            return FORWARD

        lb = Loopback(sim, rtt=0.1, flow_size=150, sack=True,
                      interceptor=interceptor)
        lb.sender.start(0.0)
        sim.run(20.0)
        assert lb.sender.completed
        assert lb.sender.timeouts >= 1

    def test_flight_accounting_excludes_sacked(self, sim):
        """SACKed segments don't count against cwnd: with 20 outstanding,
        15 SACKed, and cwnd 10, the pipe holds 5 — so 5 new segments fit."""
        sent = []
        sender = RenoSender(sim, 0, transmit=sent.append, sack=True)
        sender.started = True
        sender.una = 0
        sender.next_seq = 20
        sender.cwnd = 10.0
        sender.in_recovery = True
        sender.recover_point = 20
        sender._sacked = set(range(5, 20))
        sender._maybe_send()
        assert [p.seq for p in sent] == [20, 21, 22, 23, 24]

    def test_newreno_flight_accounting_ignores_scoreboard(self, sim):
        """Without SACK the same state permits no new transmission."""
        sent = []
        sender = RenoSender(sim, 0, transmit=sent.append, sack=False)
        sender.started = True
        sender.una = 0
        sender.next_seq = 20
        sender.cwnd = 10.0
        sender.in_recovery = True
        sender.recover_point = 20
        sender._maybe_send()
        assert sent == []


class TestSackThroughput:
    def test_sack_beats_newreno_under_random_loss(self, sim):
        """Under 2 % i.i.d. loss, SACK recovers goodput that NewReno
        loses — the mechanism behind the EXPERIMENTS.md fidelity note."""

        from repro.aqm.fixed import FixedProbabilityAqm
        from repro.harness.experiment import Experiment, FlowGroup, run_experiment

        rates = {}
        for sack in (False, True):
            exp = Experiment(
                capacity_bps=200e6, duration=40.0, warmup=10.0,
                aqm_factory=lambda rng: FixedProbabilityAqm(0.02, rng),
                flows=[FlowGroup(cc="reno", count=1, rtt=0.04, label="x",
                                 sack=sack)],
                record_sojourns=False,
            )
            rates[sack] = sum(run_experiment(exp).goodputs("x"))
        assert rates[True] > rates[False]
