"""Unit tests for Reno specifics (most behaviour is covered in
test_base_sender; these pin the AIMD constants)."""

import pytest

from repro.tcp.reno import RenoSender
from tests.tcp.helpers import Loopback


class TestRenoConstants:
    def test_loss_beta_half(self, sim):
        s = RenoSender(sim, 0, transmit=lambda p: None)
        assert s.reduction_factor("loss") == 0.5

    def test_ecn_beta_half(self, sim):
        s = RenoSender(sim, 0, transmit=lambda p: None)
        assert s.reduction_factor("ecn") == 0.5

    def test_ca_adds_one_per_rtt(self, sim):
        s = RenoSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 10.0
        s.ssthresh = 10.0
        for _ in range(10):  # ten ACKs of one segment = one window's worth
            s.ca_increase(1)
        assert s.cwnd == pytest.approx(11.0, rel=0.01)

    def test_long_run_reaches_bdp(self, sim):
        lb = Loopback(sim, sender_cls=RenoSender, rtt=0.05, flow_size=2000)
        lb.sender.start(0.0)
        sim.run(30.0)
        assert lb.sender.completed
        assert lb.sender.timeouts == 0
