"""Unit tests for the DCTCP sender."""

import pytest

from repro.net.packet import ECN
from repro.tcp.dctcp import DCTCP_GAIN, DctcpSender
from tests.tcp.helpers import Loopback, drop_seqs, mark_seqs


class TestConfiguration:
    def test_defaults_to_scalable_mode(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        assert s.ecn_mode == "scalable"

    def test_rejects_other_modes(self, sim):
        with pytest.raises(ValueError):
            DctcpSender(sim, 0, transmit=lambda p: None, ecn_mode="classic")

    def test_invalid_gain_rejected(self, sim):
        with pytest.raises(ValueError):
            DctcpSender(sim, 0, transmit=lambda p: None, gain=0.0)

    def test_alpha_starts_at_one(self, sim):
        assert DctcpSender(sim, 0, transmit=lambda p: None).alpha == 1.0

    def test_data_packets_carry_ect1(self, sim):
        seen = []
        lb = Loopback(
            sim, sender_cls=DctcpSender, rtt=0.1, ecn_mode="scalable", flow_size=20
        )
        original = lb.fwd.deliver
        lb.fwd.deliver = lambda pkt: (seen.append(pkt.ecn), original(pkt))
        lb.sender.start(0.0)
        sim.run(5.0)
        assert seen and all(e is ECN.ECT1 for e in seen)


class TestAlphaDynamics:
    def test_alpha_decays_without_marks(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        for _ in range(20):
            s.on_round_end(acked=10, marked=0)
        # No marks at all: α ← (1−g)·α each round, decaying from 1.
        assert s.alpha == pytest.approx((1 - DCTCP_GAIN) ** 20)
        assert s.ecn_reductions == 0

    def test_alpha_tracks_marked_fraction(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        s.alpha = 0.0
        for _ in range(400):
            s.on_round_end(acked=10, marked=1)  # F = 0.1
        assert s.alpha == pytest.approx(0.1, rel=0.05)

    def test_alpha_update_uses_gain(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        s.alpha = 0.0
        s.on_round_end(acked=10, marked=10)
        assert s.alpha == pytest.approx(DCTCP_GAIN)

    def test_empty_round_is_ignored(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        before = s.alpha
        s.on_round_end(acked=0, marked=0)
        assert s.alpha == before


class TestWindowReduction:
    def test_marked_round_reduces_by_alpha_half(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.ssthresh = 100.0
        s.alpha = 0.5
        s.on_round_end(acked=10, marked=5)
        # alpha updated first, then cwnd *= (1 - alpha/2)
        assert s.cwnd == pytest.approx(100.0 * (1 - s.alpha / 2))

    def test_reduction_exits_slow_start(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.on_round_end(acked=10, marked=5)
        assert s.ssthresh == s.cwnd

    def test_unmarked_round_no_reduction(self, sim):
        s = DctcpSender(sim, 0, transmit=lambda p: None)
        s.cwnd = 100.0
        s.ssthresh = 50.0
        s.on_round_end(acked=10, marked=0)
        assert s.cwnd == 100.0

    def test_loss_still_halves(self, sim):
        lb = Loopback(
            sim, sender_cls=DctcpSender, rtt=0.1, ecn_mode="scalable",
            flow_size=300, interceptor=drop_seqs(60),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.completed
        assert lb.sender.loss_reductions == 1

    def test_observed_mark_probability(self, sim):
        lb = Loopback(
            sim, sender_cls=DctcpSender, rtt=0.1, ecn_mode="scalable",
            flow_size=100, interceptor=mark_seqs(*range(0, 100, 10)),
        )
        lb.sender.start(0.0)
        sim.run(10.0)
        assert lb.sender.observed_mark_probability == pytest.approx(0.1, abs=0.03)
