"""Loopback wiring for TCP unit tests.

Connects a sender and receiver through simple pipes with an optional
per-packet interceptor, so tests can drop or CE-mark specific segments
deterministically and watch the sender's reaction.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.pipe import Pipe
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver

#: Interceptor verdicts.
FORWARD, DROP, MARK = "forward", "drop", "mark"


class Loopback:
    """Sender → (interceptor) → fwd pipe → receiver → rev pipe → sender."""

    def __init__(
        self,
        sim: Simulator,
        sender_cls=None,
        rtt: float = 0.1,
        ecn_mode: str = "off",
        flow_size: Optional[int] = None,
        delayed_acks: bool = False,
        interceptor: Optional[Callable[[Packet], str]] = None,
        sack: bool = False,
        **sender_kwargs,
    ):
        from repro.tcp.reno import RenoSender

        self.sim = sim
        self.interceptor = interceptor
        self.forwarded = 0
        self.dropped = 0

        self.rev = Pipe(sim, rtt / 2)
        self.sender = (sender_cls or RenoSender)(
            sim,
            flow_id=0,
            transmit=self._intercept,
            ecn_mode=ecn_mode,
            flow_size=flow_size,
            sack=sack,
            **sender_kwargs,
        )
        self.rev.sink = self.sender
        self.receiver = TcpReceiver(
            sim,
            flow_id=0,
            ack_out=self.rev.deliver,
            ecn_mode=ecn_mode,
            delayed_acks=delayed_acks,
            sack=sack,
        )
        self.fwd = Pipe(sim, rtt / 2, sink=self.receiver)

    def _intercept(self, pkt: Packet) -> None:
        verdict = FORWARD if self.interceptor is None else self.interceptor(pkt)
        if verdict == DROP:
            self.dropped += 1
            return
        if verdict == MARK:
            pkt.mark_ce()
        self.forwarded += 1
        self.fwd.deliver(pkt)


def drop_seqs(*seqs: int) -> Callable[[Packet], str]:
    """Interceptor dropping the *first* transmission of the given seqs."""
    pending = set(seqs)

    def fn(pkt: Packet) -> str:
        if not pkt.is_retransmit and pkt.seq in pending:
            pending.remove(pkt.seq)
            return DROP
        return FORWARD

    return fn


def mark_seqs(*seqs: int) -> Callable[[Packet], str]:
    """Interceptor CE-marking the given data seqs (first transmission)."""
    pending = set(seqs)

    def fn(pkt: Packet) -> str:
        if not pkt.is_retransmit and pkt.seq in pending:
            pending.remove(pkt.seq)
            return MARK
        return FORWARD

    return fn
