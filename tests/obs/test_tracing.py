"""The observability layer: tracing is bit-exact-neutral and schema-locked.

Four claims are pinned here:

* **Determinism** — a traced run produces the identical result digest as
  an untraced one, on both scheduler backends, through the parallel
  executor and the supervised backend, and against the repository's
  golden seeded digests.
* **Schema lock** — the JSONL trace format (header, reserved keys,
  per-event fields) is v1 and changes only with a deliberate bump,
  mirroring the static-analysis JSON schema lock.
* **Metrics** — the registry flattens provider snapshots correctly and
  the ``telemetry`` block survives freezing and pickling.
* **CLI** — ``repro run --trace`` writes a readable trace and
  ``repro trace summarize`` reconstructs the control-law time series.
"""

import io
import json
import pickle
from dataclasses import replace

import pytest

from repro.harness import light_tcp, run_experiment
from repro.harness.factories import coupled_factory, pi2_factory
from repro.harness.frozen import freeze_result
from repro.harness.parallel import SweepTask, execute_tasks
from repro.harness.supervisor import run_supervised_tasks
from repro.obs import (
    CATEGORIES,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    MetricsRegistry,
    RecordingTracer,
    install_aqm_tracer,
    read_trace,
    summarize_trace,
)
from tests.harness.test_digest_regression import (
    GOLDEN_ADAPTIVE,
    _adaptive_experiment,
    _digest_hash,
)


def _experiment(seed=3, duration=4.0, factory=None):
    return light_tcp(factory or pi2_factory(), duration=duration, seed=seed)


@pytest.fixture(scope="module")
def traced_jsonl(tmp_path_factory):
    """One traced run shared by the schema-lock and summary tests."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    with JsonlTracer(path) as tracer:
        result = run_experiment(_experiment(), tracer=tracer)
    return path, result


# ----------------------------------------------------------------------
# Determinism: tracing observes, never perturbs
# ----------------------------------------------------------------------
class TestDigestParity:
    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_traced_matches_untraced(self, scheduler):
        exp = replace(_experiment(), scheduler=scheduler)
        untraced = run_experiment(exp)
        traced = run_experiment(exp, tracer=RecordingTracer())
        assert traced.digest() == untraced.digest()

    def test_traced_run_reproduces_golden_digest(self):
        result = run_experiment(
            _adaptive_experiment(), tracer=RecordingTracer()
        )
        assert _digest_hash(result) == GOLDEN_ADAPTIVE

    def test_parallel_executor_traced_parity(self):
        exp = _experiment()
        reference = run_experiment(exp).digest()
        tracer = RecordingTracer()
        pairs = execute_tasks(
            [SweepTask("cell", exp)], jobs=1, tracer=tracer
        )
        assert pairs[0][1] is None
        assert pairs[0][0].digest() == reference
        assert tracer.by_event("task_start") and tracer.by_event("task_done")

    def test_supervised_backend_traced_parity(self):
        exp = _experiment(duration=3.0)
        reference = run_experiment(exp).digest()
        tracer = RecordingTracer()
        pairs, report = run_supervised_tasks(
            [SweepTask("cell", exp)], jobs=1, tracer=tracer
        )
        assert pairs[0][0].digest() == reference
        starts = tracer.by_event("task_start")
        assert starts and starts[0][3]["backend"] == "supervised"
        assert tracer.by_event("task_done")

    def test_untraced_aqm_carries_no_wrapper(self):
        # install_aqm_tracer must be a no-op without a tracer: the
        # instance keeps using the class methods (zero overhead off).
        from repro.core.pi2 import Pi2Aqm

        aqm = Pi2Aqm()
        assert install_aqm_tracer(aqm, None) is aqm
        assert "update" not in vars(aqm) and "decide" not in vars(aqm)


# ----------------------------------------------------------------------
# JSONL schema lock (v1)
# ----------------------------------------------------------------------
class TestTraceSchema:
    def test_schema_version_locked(self):
        assert TRACE_SCHEMA_VERSION == 1
        assert CATEGORIES == ("aqm", "engine", "harness")

    def test_header_line_locked(self, traced_jsonl):
        path, _ = traced_jsonl
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "schema": 1,
            "kind": "repro-trace",
            "categories": ["aqm", "engine", "harness"],
        }

    def test_every_event_carries_reserved_keys(self, traced_jsonl):
        path, _ = traced_jsonl
        lines = path.read_text().splitlines()[1:]
        assert lines
        for line in lines:
            record = json.loads(line)
            assert {"cat", "event", "t"} <= set(record)
            assert record["cat"] in CATEGORIES
            assert isinstance(record["t"], (int, float))

    def test_aqm_and_engine_events_present_with_locked_fields(
        self, traced_jsonl
    ):
        path, _ = traced_jsonl
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()[1:]
        ]
        updates = [e for e in events if e["event"] == "aqm_update"]
        decisions = [e for e in events if e["event"] == "aqm_decision"]
        epochs = [e for e in events if e["event"] == "engine_epoch"]
        assert updates and decisions and epochs
        assert {"aqm", "p_prime", "p", "delay", "target", "error"} <= set(
            updates[0]
        )
        assert {"aqm", "verdict", "p", "ecn", "flow"} <= set(decisions[0])
        assert decisions[0]["verdict"] in ("pass", "mark", "drop")
        assert {
            "epoch", "scheduler", "wheel", "overflow", "stream", "heap",
            "events_processed", "events_batched", "batch_breaks",
            "pool_hits", "pool_misses",
        } <= set(epochs[0])

    def test_coupled_updates_carry_ps_and_pc(self, tmp_path):
        tracer = RecordingTracer(categories=["aqm"])
        run_experiment(
            _experiment(duration=3.0, factory=coupled_factory()),
            tracer=tracer,
        )
        updates = tracer.by_event("aqm_update")
        assert updates
        assert {"ps", "pc"} <= set(updates[0][3])

    def test_category_filter_drops_unselected(self, tmp_path):
        path = tmp_path / "aqm-only.jsonl"
        with JsonlTracer(path, categories=["aqm"]) as tracer:
            run_experiment(_experiment(duration=3.0), tracer=tracer)
            assert tracer.counts["aqm"] > 0
            assert tracer.counts["engine"] == 0
        cats = {
            json.loads(line)["cat"]
            for line in path.read_text().splitlines()[1:]
        }
        assert cats == {"aqm"}

    def test_unknown_category_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace categories"):
            JsonlTracer(tmp_path / "x.jsonl", categories=["bogus"])

    def test_read_trace_rejects_alien_files(self, tmp_path):
        alien = tmp_path / "alien.jsonl"
        alien.write_text('{"not": "a trace"}\n')
        with pytest.raises(ValueError):
            read_trace(alien)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_trace(empty)


# ----------------------------------------------------------------------
# Metrics registry and the telemetry block
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_set_increment_snapshot(self):
        registry = MetricsRegistry()
        registry.set("scheduler", "wheel")
        registry.increment("runs")
        registry.increment("runs", 2)
        snapshot = registry.snapshot()
        assert snapshot["scheduler"] == "wheel"
        assert snapshot["runs"] == 3
        assert list(snapshot) == sorted(snapshot)

    def test_increment_rejects_non_numeric(self):
        registry = MetricsRegistry()
        registry.set("name", "x")
        with pytest.raises(TypeError):
            registry.increment("name")

    def test_provider_flattening_and_duplicate_prefix(self):
        registry = MetricsRegistry()
        registry.register_provider("engine", lambda: {"events": 7})
        with pytest.raises(ValueError):
            registry.register_provider("engine", lambda: {})
        assert registry.snapshot()["engine.events"] == 7

    def test_run_telemetry_covers_all_providers(self):
        result = run_experiment(_experiment(duration=3.0))
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry["scheduler"] == "wheel"
        for prefix in ("engine.", "aqm.", "link."):
            assert any(key.startswith(prefix) for key in telemetry), prefix
        assert telemetry["aqm.decisions"] > 0
        assert telemetry["engine.events_processed"] > 0

    def test_telemetry_survives_freeze_and_pickle(self):
        result = run_experiment(_experiment(duration=3.0))
        frozen = freeze_result(result)
        assert frozen.telemetry == result.telemetry
        thawed = pickle.loads(pickle.dumps(frozen))
        assert thawed.telemetry == result.telemetry
        assert thawed.digest() == result.digest()


# ----------------------------------------------------------------------
# Summary + CLI surface
# ----------------------------------------------------------------------
class TestSummarizeTrace:
    def test_reconstructs_control_law_series(self, traced_jsonl):
        path, result = traced_jsonl
        summary = summarize_trace(path)
        assert summary["schema"] == 1
        aqm = summary["aqm"]
        assert aqm["updates"] > 0
        series = aqm["series"]
        assert len(series["t"]) == len(series["p_prime"]) == len(
            series["delay"]
        ) > 0
        assert summary["engine"]["epochs"] > 0
        total_decisions = sum(aqm["decisions"].values())
        assert total_decisions == result.telemetry["aqm.decisions"]

    def test_cli_trace_summarize(self, traced_jsonl):
        from repro.cli import main

        path, _ = traced_jsonl
        out = io.StringIO()
        assert main(["trace", "summarize", str(path)], out=out) == 0
        text = out.getvalue()
        assert "aqm" in text and "engine" in text
        out = io.StringIO()
        assert main(["trace", "summarize", str(path), "--json"], out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["events"] > 0

    def test_cli_trace_summarize_bad_path(self, tmp_path):
        from repro.cli import main

        out = io.StringIO()
        assert main(
            ["trace", "summarize", str(tmp_path / "missing.jsonl")], out=out
        ) == 1

    def test_cli_run_with_trace_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        out = io.StringIO()
        code = main(
            ["run", "--scenario", "light", "--aqm", "pi2",
             "--duration", "4", "--trace", str(path),
             "--trace-filter", "aqm,engine"],
            out=out,
        )
        assert code == 0
        assert f"-> {path}" in out.getvalue()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["categories"] == ["aqm", "engine"]
