"""Unit tests for the probability coupling laws (equations 13–14)."""


import pytest

from repro.core.coupling import (
    K_ANALYTIC,
    K_DEPLOYED,
    classic_from_linear,
    classic_from_scalable,
    linear_from_classic,
    scalable_from_classic,
)


class TestConstants:
    def test_analytic_k_is_2_over_1_68(self):
        assert K_ANALYTIC == pytest.approx(2.0 / 1.68)
        assert K_ANALYTIC == pytest.approx(1.19, abs=0.01)

    def test_deployed_k_is_two(self):
        assert K_DEPLOYED == 2.0


class TestEquation14:
    def test_classic_from_scalable(self):
        assert classic_from_scalable(0.5, k=2.0) == pytest.approx(0.0625)

    def test_identity_at_k_one(self):
        assert classic_from_scalable(0.3, k=1.0) == pytest.approx(0.09)

    def test_round_trip(self):
        ps = 0.42
        pc = classic_from_scalable(ps, k=2.0)
        assert scalable_from_classic(pc, k=2.0) == pytest.approx(ps)

    def test_scalable_clamped_at_one(self):
        assert scalable_from_classic(1.0, k=2.0) == 1.0

    def test_monotone(self):
        values = [classic_from_scalable(p / 10, k=2.0) for p in range(11)]
        assert values == sorted(values)

    def test_classic_always_leq_scalable(self):
        # With k ≥ 1 and ps ≤ 1, the classic probability never exceeds ps.
        for i in range(1, 101):
            ps = i / 100
            assert classic_from_scalable(ps, k=2.0) <= ps

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            classic_from_scalable(bad)
        with pytest.raises(ValueError):
            scalable_from_classic(bad)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            classic_from_scalable(0.5, k=0)


class TestLinearStage:
    def test_square(self):
        assert classic_from_linear(0.5) == 0.25

    def test_sqrt(self):
        assert linear_from_classic(0.25) == 0.5

    def test_round_trip(self):
        for i in range(11):
            p = i / 10
            assert linear_from_classic(classic_from_linear(p)) == pytest.approx(p)

    def test_squaring_shrinks_probability(self):
        # For p' < 1 the applied classic probability is smaller — the
        # "think twice to drop" property.
        for i in range(1, 10):
            p = i / 10
            assert classic_from_linear(p) < p

    def test_range_checks(self):
        with pytest.raises(ValueError):
            classic_from_linear(1.2)
        with pytest.raises(ValueError):
            linear_from_classic(-0.1)
