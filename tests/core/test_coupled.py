"""Unit tests for the coupled PI+PI2 single-queue AQM (Figure 9)."""

import random

import pytest

from repro.aqm.base import Decision
from repro.core.coupled import (
    DEFAULT_ALPHA_COUPLED,
    DEFAULT_BETA_COUPLED,
    CoupledPi2Aqm,
)
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


def coupled(**kwargs):
    kwargs.setdefault("rng", random.Random(1))
    return CoupledPi2Aqm(**kwargs)


class TestDefaults:
    def test_table1_scalable_gains(self):
        aqm = coupled()
        assert aqm.controller.alpha == pytest.approx(10 / 16)
        assert aqm.controller.beta == pytest.approx(100 / 16)
        assert DEFAULT_ALPHA_COUPLED == pytest.approx(0.625)
        assert DEFAULT_BETA_COUPLED == pytest.approx(6.25)

    def test_gains_are_2x_classic_pi2(self):
        from repro.core.pi2 import DEFAULT_ALPHA_PI2, DEFAULT_BETA_PI2

        assert DEFAULT_ALPHA_COUPLED == pytest.approx(2 * DEFAULT_ALPHA_PI2)
        assert DEFAULT_BETA_COUPLED == pytest.approx(2 * DEFAULT_BETA_PI2)

    def test_k_defaults_to_two(self):
        assert coupled().k == 2.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            CoupledPi2Aqm(k=0)


class TestPerClassDecisions:
    def test_scalable_marked_at_ps(self):
        aqm = coupled()
        aqm.controller.p = 0.4
        n = 30_000
        marks = sum(
            aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.MARK
            for _ in range(n)
        )
        assert marks / n == pytest.approx(0.4, rel=0.05)

    def test_classic_signalled_at_ps_over_k_squared(self):
        aqm = coupled(k=2.0)
        aqm.controller.p = 0.4
        n = 60_000
        drops = sum(
            aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT)) is Decision.DROP
            for _ in range(n)
        )
        assert drops / n == pytest.approx(0.04, rel=0.10)

    def test_equation14_relation_between_classes(self):
        aqm = coupled(k=2.0)
        aqm.controller.p = 0.6
        assert aqm.classic_probability == pytest.approx((0.6 / 2) ** 2)
        assert aqm.probability == pytest.approx(0.6)

    def test_classic_ect0_marked_not_dropped(self):
        aqm = coupled()
        aqm.controller.p = 1.0
        got = {aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(300)}
        assert Decision.MARK in got
        assert Decision.DROP not in got

    def test_ce_packet_takes_scalable_branch(self):
        aqm = coupled()
        aqm.controller.p = 1.0
        pkt = make_packet(ecn=ECN.ECT1)
        pkt.mark_ce()
        # Already-CE scalable packet: re-marking is a harmless MARK.
        assert aqm.on_enqueue(pkt) is Decision.MARK
        assert aqm.scalable_seen == 1

    def test_per_class_counters(self):
        aqm = coupled()
        aqm.controller.p = 1.0
        aqm.on_enqueue(make_packet(ecn=ECN.ECT1))
        aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT))
        assert aqm.scalable_seen == 1
        assert aqm.classic_seen == 1


class TestOverloadLimits:
    def test_classic_capped_at_25_percent(self, sim):
        """ps saturates at 1 → pc = (1/2)² = 25 %, Section 5's cap."""
        aqm = coupled()
        aqm.attach(sim, StubQueue(delay=1.0))
        sim.run(5.0)
        assert aqm.probability == pytest.approx(1.0)
        assert aqm.classic_probability == pytest.approx(0.25)

    def test_think_once_vs_think_twice(self):
        """At any ps the scalable signal rate exceeds the classic one."""
        for ps in (0.1, 0.5, 1.0):
            aqm = coupled()
            aqm.controller.p = ps
            assert aqm.classic_probability < aqm.probability


class TestControlLoop:
    def test_controls_toward_target(self, sim):
        aqm = coupled()
        queue = StubQueue(delay=0.040)
        aqm.attach(sim, queue)
        sim.run(1.0)
        assert aqm.probability > 0.0

    def test_relaxes_when_under_target(self, sim):
        aqm = coupled()
        queue = StubQueue(delay=0.040)
        aqm.attach(sim, queue)
        sim.run(1.0)
        p_high = aqm.probability
        queue.delay = 0.001
        sim.run(3.0)
        assert aqm.probability < p_high
