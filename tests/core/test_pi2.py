"""Unit tests for the PI2 AQM (Sections 4–5, Figure 8)."""

import random

import pytest

from repro.aqm.base import Decision
from repro.core.pi2 import DEFAULT_ALPHA_PI2, DEFAULT_BETA_PI2, Pi2Aqm
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


def pi2(**kwargs):
    kwargs.setdefault("rng", random.Random(1))
    return Pi2Aqm(**kwargs)


class TestDefaults:
    def test_gains_are_2_5x_pie(self):
        aqm = pi2()
        assert aqm.controller.alpha == pytest.approx(2.5 * 0.125)
        assert aqm.controller.beta == pytest.approx(2.5 * 1.25)
        assert DEFAULT_ALPHA_PI2 == 0.3125
        assert DEFAULT_BETA_PI2 == 3.125

    def test_target_and_interval(self):
        aqm = pi2()
        assert aqm.controller.target == 0.020
        assert aqm.update_interval == 0.032

    def test_classic_cap_clamps_p_prime(self):
        aqm = pi2(classic_p_max=0.25)
        assert aqm.controller.p_max == pytest.approx(0.5)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            Pi2Aqm(decision_mode="nope")
        with pytest.raises(ValueError):
            Pi2Aqm(classic_p_max=0.0)


class TestSquaredOutput:
    def test_probability_is_square_of_raw(self):
        aqm = pi2()
        aqm.controller.p = 0.3
        assert aqm.raw_probability == pytest.approx(0.3)
        assert aqm.probability == pytest.approx(0.09)

    def test_multiply_mode_signal_rate(self):
        aqm = pi2(decision_mode="multiply")
        aqm.controller.p = 0.4
        n = 40_000
        hits = sum(aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n))
        assert hits / n == pytest.approx(0.16, rel=0.05)

    def test_two_randoms_mode_signal_rate(self):
        aqm = pi2(decision_mode="two-randoms")
        aqm.controller.p = 0.4
        n = 40_000
        hits = sum(aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n))
        assert hits / n == pytest.approx(0.16, rel=0.05)

    def test_decision_modes_distributionally_equivalent(self):
        # Section 5: max(Y1,Y2) < p' signals with probability p'², the
        # same Bernoulli law as rand() < p'².
        n = 60_000
        rates = {}
        for mode in ("multiply", "two-randoms"):
            aqm = pi2(decision_mode=mode, rng=random.Random(7))
            aqm.controller.p = 0.25
            hits = sum(
                aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n)
            )
            rates[mode] = hits / n
        assert rates["multiply"] == pytest.approx(rates["two-randoms"], rel=0.08)
        assert rates["multiply"] == pytest.approx(0.0625, rel=0.08)

    def test_zero_p_prime_passes_everything(self):
        aqm = pi2()
        assert all(
            aqm.on_enqueue(make_packet()) is Decision.PASS for _ in range(200)
        )


class TestEcnHandling:
    def test_not_ect_dropped_ect_marked(self):
        aqm = pi2(rng=random.Random(2))
        aqm.controller.p = 0.5  # p = 0.25
        got = {Decision.PASS}
        for _ in range(500):
            got.add(aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT)))
        assert Decision.DROP in got
        got_ect = {aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(500)}
        assert Decision.MARK in got_ect
        assert Decision.DROP not in got_ect

    def test_ecn_disabled_drops_ect(self):
        aqm = pi2(ecn=False, rng=random.Random(2))
        aqm.controller.p = 0.5
        got = {aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(500)}
        assert Decision.DROP in got
        assert Decision.MARK not in got


class TestControl:
    def test_no_heuristics_no_scaling(self, sim):
        """PI2's update is the bare PI step — no tune, no burst, no caps."""
        aqm = pi2()
        aqm.attach(sim, StubQueue(delay=0.030))
        aqm.update()
        expected = DEFAULT_ALPHA_PI2 * 0.010 + DEFAULT_BETA_PI2 * 0.030
        assert aqm.raw_probability == pytest.approx(expected)

    def test_drives_p_up_with_standing_queue(self, sim):
        aqm = pi2()
        aqm.attach(sim, StubQueue(delay=0.100))
        sim.run(2.0)
        assert aqm.raw_probability > 0.1

    def test_p_prime_saturates_at_sqrt_cap(self, sim):
        aqm = pi2(classic_p_max=0.25)
        aqm.attach(sim, StubQueue(delay=1.0))
        sim.run(5.0)
        assert aqm.raw_probability == pytest.approx(0.5)
        assert aqm.probability == pytest.approx(0.25)

    def test_returns_to_zero_when_queue_clears(self, sim):
        aqm = pi2()
        queue = StubQueue(delay=0.100)
        aqm.attach(sim, queue)
        sim.run(2.0)
        queue.delay = 0.0
        sim.run(6.0)
        assert aqm.raw_probability == 0.0
