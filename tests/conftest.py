"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.net.packet import ECN, Packet
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=42)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(42)


def make_packet(
    flow_id: int = 0,
    seq: int = 0,
    size: int = 1500,
    ecn: ECN = ECN.NOT_ECT,
    **kwargs,
) -> Packet:
    """Convenience packet builder for unit tests."""
    return Packet(flow_id=flow_id, seq=seq, size=size, ecn=ecn, **kwargs)


class StubQueue:
    """Minimal QueueView for AQM unit tests: fixed delay and backlog."""

    def __init__(self, delay: float = 0.0, bytes_: int = 0, packets: int = 0):
        self.delay = delay
        self.bytes_ = bytes_
        self.packets = packets

    def byte_length(self) -> int:
        return self.bytes_

    def packet_length(self) -> int:
        return self.packets

    def queue_delay(self) -> float:
        return self.delay


@pytest.fixture
def stub_queue() -> StubQueue:
    return StubQueue()
