"""Unit tests for time series recording and sampling."""

import math

import pytest

from repro.metrics.series import Sampler, TimeSeries


class TestTimeSeries:
    def test_append_and_length(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert len(ts) == 2

    def test_numpy_export(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        assert ts.times.tolist() == [1.0]
        assert ts.values.tolist() == [10.0]

    def test_window_half_open(self):
        ts = TimeSeries()
        for t in range(5):
            ts.append(float(t), float(t))
        assert ts.window(1.0, 3.0).tolist() == [1.0, 2.0]

    def test_mean_over_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.append(float(t), float(t))
        assert ts.mean(5.0) == pytest.approx(7.0)

    def test_max_and_percentile(self):
        ts = TimeSeries()
        for t in range(100):
            ts.append(float(t), float(t))
        assert ts.max() == 99.0
        assert ts.percentile(50) == pytest.approx(49.5)

    def test_std(self):
        ts = TimeSeries()
        for v in (2.0, 2.0, 2.0):
            ts.append(0.0, v)
        assert ts.std() == 0.0

    def test_empty_stats_are_nan(self):
        ts = TimeSeries()
        assert math.isnan(ts.mean())
        assert math.isnan(ts.max())
        assert math.isnan(ts.percentile(99))


class TestArrayCaching:
    """times/values build a numpy array once and reuse it until the next
    append — the arrays feed every percentile/mean call in the figure
    pipeline, so rebuilding per call was pure overhead."""

    def test_repeated_access_returns_cached_array(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        assert ts.times is ts.times
        assert ts.values is ts.values

    def test_append_invalidates_both_caches(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        before_t, before_v = ts.times, ts.values
        ts.append(2.0, 20.0)
        assert ts.times is not before_t
        assert ts.values is not before_v
        assert ts.times.tolist() == [1.0, 2.0]
        assert ts.values.tolist() == [10.0, 20.0]
        # The stale arrays are unchanged (no in-place mutation).
        assert before_t.tolist() == [1.0]

    def test_pickle_round_trip_drops_caches_keeps_data(self):
        import pickle

        ts = TimeSeries(name="delay")
        for t in range(5):
            ts.append(float(t), float(t) * 2)
        _ = ts.times  # populate the cache before pickling
        clone = pickle.loads(pickle.dumps(ts))
        assert clone.name == "delay"
        assert clone.times.tolist() == ts.times.tolist()
        assert clone.values.tolist() == ts.values.tolist()
        clone.append(5.0, 10.0)  # still appendable after restore
        assert len(clone) == 6
        assert len(ts) == 5

    def test_stats_agree_with_fresh_series(self):
        ts = TimeSeries()
        for t in range(50):
            ts.append(float(t), float(t))
        _ = ts.values  # warm the cache
        ts.append(50.0, 50.0)
        assert ts.max() == 50.0
        assert ts.percentile(100) == 50.0


class TestSampler:
    def test_samples_on_period(self, sim):
        values = iter(range(100))
        sampler = Sampler(sim, lambda: float(next(values)), period=1.0)
        sim.run(3.5)
        assert sampler.series.times.tolist() == [1.0, 2.0, 3.0]

    def test_start_delay(self, sim):
        sampler = Sampler(sim, lambda: 1.0, period=1.0, start_delay=2.0)
        sim.run(3.5)
        assert sampler.series.times.tolist() == [2.0, 3.0]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            Sampler(sim, lambda: 0.0, period=0.0)
