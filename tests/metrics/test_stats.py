"""Unit tests for the statistics helpers behind Figures 14–20."""

import math

import numpy as np
import pytest

from repro.metrics.stats import (
    ecdf,
    geometric_mean,
    jain_fairness,
    normalized_rates,
    percentile_summary,
    rate_balance_ratio,
)


class TestEcdf:
    def test_sorted_output(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ps.tolist() == [1 / 3, 2 / 3, 1.0]

    def test_last_probability_is_one(self):
        _, ps = ecdf(list(range(100)))
        assert ps[-1] == 1.0

    def test_empty_input(self):
        xs, ps = ecdf([])
        assert xs.size == 0 and ps.size == 0

    def test_median_lookup(self):
        xs, ps = ecdf(np.arange(1000.0))
        idx = np.searchsorted(ps, 0.5)
        assert xs[idx] == pytest.approx(499, abs=2)


class TestPercentileSummary:
    def test_keys(self):
        out = percentile_summary([1.0, 2.0, 3.0], percentiles=(25, 99))
        assert set(out) == {"mean", "p25", "p99"}

    def test_values(self):
        data = list(range(101))
        out = percentile_summary(data, percentiles=(1, 50, 99))
        assert out["mean"] == pytest.approx(50.0)
        assert out["p50"] == pytest.approx(50.0)
        assert out["p99"] == pytest.approx(99.0)

    def test_empty_gives_nans(self):
        out = percentile_summary([], percentiles=(50,))
        assert math.isnan(out["mean"]) and math.isnan(out["p50"])


class TestJainFairness:
    def test_equal_rates_give_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_gives_1_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_is_nan(self):
        assert math.isnan(jain_fairness([]))


class TestRateBalance:
    def test_equal_classes_ratio_one(self):
        assert rate_balance_ratio([10.0, 10.0], [10.0]) == pytest.approx(1.0)

    def test_starved_class(self):
        # The PIE pathology: class A (Cubic) starved ~10×.
        assert rate_balance_ratio([1.0], [10.0]) == pytest.approx(0.1)

    def test_zero_denominator_is_inf(self):
        assert rate_balance_ratio([1.0], [0.0]) == math.inf

    def test_empty_is_nan(self):
        assert math.isnan(rate_balance_ratio([], [1.0]))


class TestNormalizedRates:
    def test_fair_share_normalization(self):
        # 4 flows on 40 Mb/s → fair = 10 Mb/s each.
        out = normalized_rates([10e6, 20e6], capacity_bps=40e6, total_flows=4)
        assert out == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            normalized_rates([1.0], capacity_bps=0, total_flows=1)
        with pytest.raises(ValueError):
            normalized_rates([1.0], capacity_bps=1e6, total_flows=0)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_ignores_non_positive(self):
        assert geometric_mean([0.0, -5.0, 4.0]) == pytest.approx(4.0)

    def test_all_non_positive_is_nan(self):
        assert math.isnan(geometric_mean([0.0, -1.0]))
