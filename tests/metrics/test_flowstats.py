"""Unit tests for per-flow accounting."""

import pytest

from repro.metrics.flowstats import FlowRecord, FlowTable


class TestFlowRecord:
    def test_goodput_over_window(self):
        rec = FlowRecord(0, "cubic", mss_bytes=1000)
        rec.open_window(10.0)
        for _ in range(100):
            rec.on_segment(11.0)
        # 100 segments × 1000 B × 8 over 10 s = 80 kb/s.
        assert rec.goodput_bps(20.0) == pytest.approx(80_000.0)

    def test_segments_before_window_excluded(self):
        rec = FlowRecord(0, "cubic", mss_bytes=1000)
        rec.on_segment(1.0)
        rec.open_window(10.0)
        assert rec.goodput_bps(20.0) == 0.0

    def test_goodput_zero_without_window(self):
        rec = FlowRecord(0, "cubic", mss_bytes=1000)
        rec.on_segment(1.0)
        assert rec.goodput_bps(10.0) == 0.0


class TestFlowTable:
    def test_add_and_lookup(self):
        table = FlowTable()
        rec = table.add(1, "dctcp", 1448)
        assert table[1] is rec
        assert len(table) == 1

    def test_duplicate_id_rejected(self):
        table = FlowTable()
        table.add(1, "dctcp", 1448)
        with pytest.raises(ValueError):
            table.add(1, "cubic", 1448)

    def test_labels_and_by_label(self):
        table = FlowTable()
        table.add(1, "dctcp", 1448)
        table.add(2, "cubic", 1448)
        table.add(3, "cubic", 1448)
        assert table.labels() == ["cubic", "dctcp"]
        assert len(table.by_label("cubic")) == 2

    def test_balance(self):
        table = FlowTable()
        a = table.add(1, "a", 1000)
        b = table.add(2, "b", 1000)
        table.open_windows(0.0)
        for _ in range(10):
            a.on_segment(1.0)
        for _ in range(20):
            b.on_segment(1.0)
        assert table.balance("a", "b", 10.0) == pytest.approx(0.5)

    def test_goodputs_per_label(self):
        table = FlowTable()
        a1 = table.add(1, "a", 1000)
        a2 = table.add(2, "a", 1000)
        table.open_windows(0.0)
        a1.on_segment(1.0)
        assert len(table.goodputs("a", 10.0)) == 2
