"""Tests for JSON/CSV result export."""

import csv
import json
import math

import pytest

from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.factories import pi2_factory
from repro.metrics.export import result_summary, write_result_json, write_series_csv
from repro.metrics.series import TimeSeries


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        Experiment(
            capacity_bps=10e6,
            duration=8.0,
            warmup=2.0,
            aqm_factory=pi2_factory(),
            flows=[FlowGroup(cc="reno", count=2, rtt=0.02, label="reno")],
        )
    )


class TestSummary:
    def test_config_round_trips(self, result):
        summary = result_summary(result)
        assert summary["config"]["capacity_bps"] == 10e6
        assert summary["config"]["flows"][0]["cc"] == "reno"
        assert summary["config"]["flows"][0]["count"] == 2

    def test_metrics_present(self, result):
        summary = result_summary(result)
        assert summary["queue_delay"]["mean"] > 0
        assert 0 < summary["utilization"]["mean"] <= 1.01
        assert len(summary["goodput_bps"]["reno"]) == 2
        assert summary["aqm"]["type"] == "Pi2Aqm"

    def test_json_serializable(self, result):
        text = json.dumps(result_summary(result))
        assert "NaN" not in text

    def test_counters(self, result):
        summary = result_summary(result)
        counters = summary["queue_counters"]
        assert counters["arrived"] >= counters["dequeued"]


class TestFiles:
    def test_write_json(self, result, tmp_path):
        path = write_result_json(result, tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded["config"]["seed"] == 1

    def test_write_series_csv(self, tmp_path):
        series = TimeSeries("qdelay")
        series.append(0.0, 1.5)
        series.append(1.0, 2.5)
        path = write_series_csv(series, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time_s", "qdelay"]
        assert float(rows[1][1]) == 1.5
        assert float(rows[2][0]) == 1.0

    def test_csv_round_trip_precision(self, tmp_path):
        series = TimeSeries()
        series.append(1 / 3, math.pi)
        path = write_series_csv(series, tmp_path / "p.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert float(rows[1][0]) == 1 / 3
        assert float(rows[1][1]) == math.pi
