"""Unit tests for Curvy RED, tail-drop and the fixed-probability oracles."""

import random

import pytest

from repro.aqm.base import AQMStats, Decision
from repro.aqm.curvy_red import CurvyRedAqm
from repro.aqm.fixed import DeterministicMarker, FixedProbabilityAqm
from repro.aqm.taildrop import TailDropAqm
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


class TestCurvyRed:
    def make(self, delay, **kwargs):
        kwargs.setdefault("rng", random.Random(1))
        aqm = CurvyRedAqm(**kwargs)
        aqm.queue = StubQueue(delay=delay)
        return aqm

    def test_empty_queue_no_signal(self):
        aqm = self.make(0.0)
        assert all(
            aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.PASS
            for _ in range(100)
        )

    def test_scalable_ramp_linear(self):
        aqm = self.make(0.020, range_delay=0.040)
        assert aqm.probability == pytest.approx(0.5)

    def test_classic_probability_is_squared_half(self):
        aqm = self.make(0.020, range_delay=0.040)
        assert aqm.classic_probability == pytest.approx(0.0625)

    def test_scalable_marked_classic_mostly_passed(self):
        aqm = self.make(0.020, range_delay=0.040)
        n = 4000
        scal = sum(
            aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.MARK
            for _ in range(n)
        )
        classic = sum(
            aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n)
        )
        assert scal / n == pytest.approx(0.5, rel=0.1)
        assert classic / n == pytest.approx(0.0625, rel=0.25)

    def test_classic_ect0_marked_not_dropped(self):
        aqm = self.make(0.045, range_delay=0.040)
        decisions = {
            aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(300)
        }
        assert Decision.MARK in decisions
        assert Decision.DROP not in decisions

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CurvyRedAqm(range_delay=0)
        with pytest.raises(ValueError):
            CurvyRedAqm(k_curvy=0)


class TestTailDrop:
    def test_passes_under_limit(self):
        aqm = TailDropAqm(limit_packets=5)
        aqm.queue = StubQueue(packets=4)
        assert aqm.on_enqueue(make_packet()) is Decision.PASS

    def test_drops_at_limit(self):
        aqm = TailDropAqm(limit_packets=5)
        aqm.queue = StubQueue(packets=5)
        assert aqm.on_enqueue(make_packet()) is Decision.DROP

    def test_unlimited_never_drops(self):
        aqm = TailDropAqm()
        aqm.queue = StubQueue(packets=10**6)
        assert aqm.on_enqueue(make_packet()) is Decision.PASS

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            TailDropAqm(limit_packets=0)


class TestFixedProbability:
    def test_rate_matches_p(self):
        aqm = FixedProbabilityAqm(0.2, rng=random.Random(1))
        n = 20_000
        hits = sum(aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n))
        assert hits / n == pytest.approx(0.2, rel=0.05)

    def test_marks_ecn(self):
        aqm = FixedProbabilityAqm(1.0, rng=random.Random(1))
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) is Decision.MARK

    def test_zero_p_passes(self):
        aqm = FixedProbabilityAqm(0.0, rng=random.Random(1))
        assert all(
            aqm.on_enqueue(make_packet()) is Decision.PASS for _ in range(100)
        )

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            FixedProbabilityAqm(1.5)


class TestDeterministicMarker:
    def test_marks_every_nth(self):
        aqm = DeterministicMarker(0.1)
        decisions = [aqm.on_enqueue(make_packet(flow_id=1)) for _ in range(30)]
        marks = [i for i, d in enumerate(decisions) if d is not Decision.PASS]
        assert marks == [9, 19, 29]

    def test_per_flow_counters(self):
        aqm = DeterministicMarker(0.5)
        a = [aqm.on_enqueue(make_packet(flow_id=1)) for _ in range(4)]
        b = [aqm.on_enqueue(make_packet(flow_id=2)) for _ in range(4)]
        assert a == b

    def test_probability_property(self):
        assert DeterministicMarker(0.125).probability == pytest.approx(0.125)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            DeterministicMarker(0.0)


class TestAqmStats:
    def test_counters(self):
        stats = AQMStats()
        stats.record(Decision.PASS)
        stats.record(Decision.MARK)
        stats.record(Decision.DROP)
        assert (stats.passed, stats.marked, stats.dropped) == (1, 1, 1)
        assert stats.signal_fraction == pytest.approx(2 / 3)

    def test_empty_signal_fraction(self):
        assert AQMStats().signal_fraction == 0.0
