"""Probability-domain property sweep: under extreme gains, adversarial
delay inputs and sub-unit coupling factors, every probability an AQM
writes or exposes stays a finite value in [0, 1].

This is the runtime counterpart of the PROB static rule: the rule proves
every write site is clamp-dominated; these sweeps exercise the clamps
with inputs chosen to overflow the raw arithmetic (the coupled law
``pc = (ps/k)²`` exceeds 1 whenever ``ps > k``, e.g. k < 1 at
saturation).
"""

import itertools

import pytest

from repro.aqm.base import clamp_unit, guard_finite, is_unit_probability
from repro.aqm.pi import PIController
from repro.aqm.red import RedAqm
from repro.core.coupled import CoupledPi2Aqm
from repro.errors import ControllerDivergence

ALPHAS = [0.01, 0.125, 0.3125, 5.0, 100.0]
BETAS = [0.1, 1.25, 3.125, 50.0, 1000.0]
#: Adversarial delay traces: step, impulse, ramp, oscillation.
DELAY_TRACES = [
    [0.5] * 40,
    [0.0] * 5 + [10.0] + [0.0] * 34,
    [i * 0.05 for i in range(40)],
    [0.0 if i % 2 else 5.0 for i in range(40)],
]


class TestControllerSweep:
    @pytest.mark.parametrize("alpha,beta", itertools.product(ALPHAS, BETAS))
    def test_pi_output_in_unit_interval_for_all_gains(self, alpha, beta):
        for trace in DELAY_TRACES:
            controller = PIController(alpha, beta, target=0.020)
            for delay in trace:
                p = controller.update(delay)
                assert is_unit_probability(p), (alpha, beta, delay, p)

    @pytest.mark.parametrize("p_max", [0.1, 0.5, 1.0])
    def test_p_max_cap_respected(self, p_max):
        controller = PIController(alpha=100.0, beta=1000.0, target=0.02, p_max=p_max)
        for _ in range(50):
            assert controller.update(5.0) <= p_max

    def test_gain_scale_cannot_escape_domain(self):
        controller = PIController(alpha=5.0, beta=50.0, target=0.02)
        for scale in (1e-6, 1.0, 1e6):
            p = controller.update(3.0, gain_scale=scale)
            assert is_unit_probability(p)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_delay_raises_not_clamps(self, bad):
        controller = PIController(alpha=0.3125, beta=3.125, target=0.02)
        with pytest.raises(ControllerDivergence):
            controller.update(bad)
        # The divergence must not have poisoned the retained state.
        assert is_unit_probability(controller.p)


class TestCoupledSweep:
    @pytest.mark.parametrize("k", [0.25, 0.5, 1.0, 1.19, 2.0, 4.0])
    def test_classic_probability_clamped_for_all_k(self, k):
        """The satellite case: k < 1 makes raw (ps/k)² exceed 1 at high ps."""
        aqm = CoupledPi2Aqm(alpha=100.0, beta=1000.0, k=k)
        # Drive the controller to saturation with a huge sustained delay.
        for _ in range(100):
            aqm.controller.update(5.0)
        assert aqm.controller.p == pytest.approx(1.0)
        assert is_unit_probability(aqm.probability)
        assert is_unit_probability(aqm.classic_probability), k
        if k >= 1.0:
            assert aqm.classic_probability == pytest.approx((1.0 / k) ** 2)
        else:
            assert aqm.classic_probability == 1.0  # clamp engaged

    def test_red_instant_probability_in_unit_interval(self):
        aqm = RedAqm()
        for avg in [0.0, 0.005, 0.015, 0.030, 0.045, 0.059, 0.1, 10.0]:
            aqm.avg = avg
            assert is_unit_probability(aqm.probability), avg


class TestSharedHelpers:
    @pytest.mark.parametrize(
        "value,expected",
        [(-1.0, 0.0), (0.0, 0.0), (0.25, 0.25), (1.0, 1.0), (7.0, 1.0)],
    )
    def test_clamp_unit(self, value, expected):
        assert clamp_unit(value) == expected

    def test_clamp_unit_upper_bound(self):
        assert clamp_unit(0.9, upper=0.5) == 0.5
        assert clamp_unit(-0.1, upper=0.5) == 0.0

    def test_guard_finite_passes_value_through(self):
        assert guard_finite(0.3, "unused", component="test") == 0.3

    def test_guard_finite_raises_with_context(self):
        with pytest.raises(ControllerDivergence) as excinfo:
            guard_finite(float("nan"), "boom", component="test", p=0.5)
        assert excinfo.value.context == {"p": 0.5}

    @pytest.mark.parametrize(
        "value,ok",
        [
            (0.0, True),
            (1.0, True),
            (0.5, True),
            (-0.01, False),
            (1.01, False),
            (float("nan"), False),
            (float("inf"), False),
        ],
    )
    def test_is_unit_probability(self, value, ok):
        assert is_unit_probability(value) is ok
