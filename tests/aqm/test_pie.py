"""Unit tests for PIE and its Section 5 heuristics."""

import random

import pytest

from repro.aqm.base import Decision
from repro.aqm.pie import BarePieAqm, PieAqm
from repro.aqm.tune_table import tune
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


def attached_pie(sim, queue, **kwargs):
    kwargs.setdefault("rng", random.Random(1))
    aqm = PieAqm(**kwargs)
    aqm.attach(sim, queue)
    return aqm


class TestAutoTune:
    def test_delta_scaled_by_tune_table(self, sim):
        queue = StubQueue(delay=0.030)
        tuned = attached_pie(sim, queue, max_burst=0.0)
        fixed = attached_pie(sim, queue, max_burst=0.0, auto_tune=False)
        tuned.update()
        fixed.update()
        # At p = 0 the table divisor is 2048.
        assert tuned.probability == pytest.approx(
            fixed.probability * tune(0.0), rel=1e-9
        )

    def test_auto_tune_off_matches_plain_pi_step(self, sim):
        queue = StubQueue(delay=0.030)
        pie = attached_pie(sim, queue, max_burst=0.0, auto_tune=False,
                           delay_kick_enabled=False, dp_cap_enabled=False)
        pie.update()
        expected = 0.125 * 0.010 + 1.25 * 0.030
        assert pie.probability == pytest.approx(expected)


class TestBurstAllowance:
    def test_no_drops_during_burst_allowance(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.5, packets=100))
        pie.controller.p = 1.0
        assert pie.on_enqueue(make_packet()) is Decision.PASS

    def test_burst_allowance_decrements_each_update(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.5, packets=100))
        pie.controller.p = 0.5  # keeps the reset branch inactive
        start = pie.burst_allowance
        pie.update()
        assert pie.burst_allowance == pytest.approx(start - pie.update_interval)

    def test_burst_allowance_resets_when_idle(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.0))
        pie.burst_allowance = 0.0
        pie.update()  # p == 0, delay < target/2 → reset
        assert pie.burst_allowance == pie.max_burst

    def test_drops_resume_after_burst_spent(self, sim):
        queue = StubQueue(delay=0.5, packets=100)
        pie = attached_pie(sim, queue)
        pie.controller.p = 1.0
        for _ in range(5):  # 5 × 32 ms > 100 ms
            pie.update()
        pie.controller.p = 1.0
        assert pie.on_enqueue(make_packet()) is Decision.DROP


class TestHeuristics:
    def test_drop_early_suppressed_below_20pct_and_half_target(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.005, packets=100), max_burst=0.0)
        pie.controller.p = 0.19
        pie._qdelay_old = 0.005  # below target/2 = 10 ms
        assert pie.on_enqueue(make_packet()) is Decision.PASS

    def test_drop_early_suppression_can_be_disabled(self, sim):
        pie = attached_pie(
            sim, StubQueue(delay=0.005, packets=100), max_burst=0.0,
            drop_early_suppress=False, rng=random.Random(3),
        )
        pie.controller.p = 1.0
        pie._qdelay_old = 0.005
        assert pie.on_enqueue(make_packet()) is Decision.DROP

    def test_min_backlog_guard(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.5, packets=1), max_burst=0.0,
                           drop_early_suppress=False)
        pie.controller.p = 1.0
        assert pie.on_enqueue(make_packet()) is Decision.PASS

    def test_ecn_dropped_above_threshold(self, sim):
        pie = attached_pie(
            sim, StubQueue(delay=0.5, packets=100), max_burst=0.0,
            drop_early_suppress=False, ecn_drop_threshold=0.1,
        )
        pie.controller.p = 0.5
        pie._qdelay_old = 0.5
        assert pie.on_enqueue(make_packet(ecn=ECN.ECT0)) is Decision.DROP

    def test_ecn_marked_below_threshold(self, sim):
        pie = attached_pie(
            sim, StubQueue(delay=0.5, packets=100), max_burst=0.0,
            drop_early_suppress=False, ecn_drop_threshold=0.1,
            rng=random.Random(5),
        )
        pie.controller.p = 0.09
        pie._qdelay_old = 0.5
        decisions = {pie.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(200)}
        assert Decision.MARK in decisions
        assert Decision.DROP not in decisions

    def test_reworked_ecn_rule_never_drops_ect(self, sim):
        # ecn_drop_threshold=None is the paper's PIE configuration.
        pie = attached_pie(
            sim, StubQueue(delay=0.5, packets=100), max_burst=0.0,
            drop_early_suppress=False,
        )
        pie.controller.p = 0.9
        pie._qdelay_old = 0.5
        decisions = {pie.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(200)}
        assert Decision.DROP not in decisions

    def test_dp_cap_limits_growth_above_10pct(self, sim):
        queue = StubQueue(delay=1.0)  # huge error
        pie = attached_pie(sim, queue, max_burst=0.0, delay_kick_enabled=False)
        pie.controller.p = 0.2
        pie._qdelay_old = 1.0
        pie.controller.prev_delay = 1.0
        pie.update()
        assert pie.probability == pytest.approx(0.22)

    def test_delay_kick_above_250ms(self, sim):
        queue = StubQueue(delay=0.3)
        with_kick = attached_pie(sim, queue, max_burst=0.0)
        without = attached_pie(sim, queue, max_burst=0.0, delay_kick_enabled=False)
        with_kick.update()
        without.update()
        assert with_kick.probability == pytest.approx(without.probability + 0.02)

    def test_decay_when_queue_empty(self, sim):
        pie = attached_pie(sim, StubQueue(delay=0.0), max_burst=0.0)
        pie.controller.p = 0.5
        pie._qdelay_old = 0.0
        pie.update()
        # α error is negative too, so p ≤ 0.98 × 0.5 minus the PI pull-down.
        assert pie.probability <= 0.5 * 0.98

    def test_probability_bounded(self, sim):
        pie = attached_pie(sim, StubQueue(delay=10.0), max_burst=0.0)
        for _ in range(500):
            pie.update()
        assert 0.0 <= pie.probability <= 1.0


class TestBarePie:
    def test_all_heuristics_disabled(self, sim):
        bare = BarePieAqm(rng=random.Random(1))
        assert bare.max_burst == 0.0
        assert bare.ecn_drop_threshold is None
        assert not bare.dp_cap_enabled
        assert not bare.delay_kick_enabled
        assert not bare.drop_early_suppress
        assert not bare.decay_enabled

    def test_auto_tune_still_on(self, sim):
        assert BarePieAqm(rng=random.Random(1)).auto_tune

    def test_bare_pie_still_controls(self, sim):
        bare = BarePieAqm(rng=random.Random(1))
        bare.attach(sim, StubQueue(delay=0.05))
        sim.run(2.0)
        assert bare.probability > 0.0
