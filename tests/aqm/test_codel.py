"""Unit tests for the CoDel baseline."""

import pytest

from repro.aqm.base import Decision
from repro.aqm.codel import CodelAqm
from tests.conftest import make_packet


def dequeue_with_sojourn(aqm, now, sojourn):
    pkt = make_packet()
    pkt.enqueue_time = now - sojourn
    aqm.on_dequeue(pkt, now)


class TestStateMachine:
    def test_no_signal_below_target(self):
        aqm = CodelAqm()
        for i in range(100):
            dequeue_with_sojourn(aqm, i * 0.01, 0.001)
        assert not aqm.dropping
        assert aqm.on_enqueue(make_packet()) is Decision.PASS

    def test_enters_dropping_after_interval_above_target(self):
        aqm = CodelAqm(target=0.005, interval=0.100)
        t = 0.0
        while t < 0.25:
            dequeue_with_sojourn(aqm, t, 0.010)
            t += 0.005
        assert aqm.dropping

    def test_brief_excursion_does_not_trigger(self):
        aqm = CodelAqm(target=0.005, interval=0.100)
        dequeue_with_sojourn(aqm, 0.00, 0.010)
        dequeue_with_sojourn(aqm, 0.05, 0.010)
        dequeue_with_sojourn(aqm, 0.08, 0.001)  # dips below target
        dequeue_with_sojourn(aqm, 0.15, 0.010)
        assert not aqm.dropping

    def test_signal_applied_to_next_arrival(self):
        aqm = CodelAqm(target=0.005, interval=0.050)
        t = 0.0
        signalled = 0
        while t < 1.0:
            dequeue_with_sojourn(aqm, t, 0.020)
            if aqm.on_enqueue(make_packet()) is Decision.DROP:
                signalled += 1
            t += 0.005
        assert signalled >= 2

    def test_drop_spacing_shrinks_with_count(self):
        aqm = CodelAqm(target=0.005, interval=0.100)
        aqm.count = 4
        base = aqm._control_law(0.0)
        aqm.count = 16
        assert aqm._control_law(0.0) < base

    def test_exits_dropping_when_below_target(self):
        aqm = CodelAqm(target=0.005, interval=0.050)
        t = 0.0
        while t < 0.5:
            dequeue_with_sojourn(aqm, t, 0.020)
            t += 0.005
        assert aqm.dropping
        dequeue_with_sojourn(aqm, t, 0.001)
        assert not aqm.dropping

    def test_marks_ecn_capable(self):
        from repro.net.packet import ECN

        aqm = CodelAqm(target=0.005, interval=0.050)
        t = 0.0
        decisions = set()
        while t < 1.0:
            dequeue_with_sojourn(aqm, t, 0.020)
            decisions.add(aqm.on_enqueue(make_packet(ecn=ECN.ECT0)))
            t += 0.005
        assert Decision.MARK in decisions
        assert Decision.DROP not in decisions

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CodelAqm(target=0)
        with pytest.raises(ValueError):
            CodelAqm(interval=-1)
