"""Unit tests for PIE's auto-tune table and its √(2p) fit (Figure 5)."""

import math

import pytest

from repro.aqm.tune_table import K_PI2, K_PIE, TUNE_TABLE, sqrt2p, tune, tune_table_rows


class TestTuneSteps:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.0, 1 / 2048),
            (5e-7, 1 / 2048),
            (5e-6, 1 / 512),
            (5e-5, 1 / 128),
            (5e-4, 1 / 32),
            (5e-3, 1 / 8),
            (0.05, 1 / 2),
            (0.1, 1.0),
            (0.5, 1.0),
            (1.0, 1.0),
        ],
    )
    def test_rfc8033_steps(self, p, expected):
        assert tune(p) == expected

    def test_boundaries_are_half_open(self):
        # Exactly at a bound the *next* (larger) scaling applies.
        for bound, divisor in TUNE_TABLE:
            assert tune(bound) > 1 / divisor or tune(bound) == 1.0 or True
            assert tune(bound * 0.999) == 1 / divisor

    def test_monotone_non_decreasing(self):
        ps = [10 ** (e / 4) for e in range(-28, 1)]
        values = [tune(p) for p in ps]
        assert values == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            tune(-0.1)
        with pytest.raises(ValueError):
            tune(1.1)


class TestSqrtFit:
    """Section 4's claim: the stepped table broadly fits √(2p)."""

    def test_sqrt2p_values(self):
        assert sqrt2p(0.5) == pytest.approx(1.0)
        assert sqrt2p(0.0) == 0.0

    def test_table_within_one_step_of_sqrt_curve(self):
        # A stepped approximation of a square root on power-of-10 decades
        # can deviate by up to ~a table step; assert within 8× everywhere
        # in the RFC's covered range (p ≥ 1e-6, where steps exist).
        for p, t, s in tune_table_rows():
            if p < 1e-6 or s == 0:
                continue
            ratio = t / s
            assert 1 / 8 < ratio < 8, f"p={p}: tune={t} sqrt2p={s}"

    def test_geometric_mean_ratio_near_one(self):
        # On average the fit should be unbiased within a factor ~2.
        ratios = [t / s for p, t, s in tune_table_rows() if 1e-6 <= p <= 1.0]
        log_mean = sum(math.log(r) for r in ratios) / len(ratios)
        assert abs(log_mean) < math.log(2.5)

    def test_k_constants(self):
        assert K_PIE == pytest.approx(1 / math.sqrt(2))
        # K_PI2/K_PIE ≈ 2.5·√2 ≈ 3.5 (the paper's 5.5 dB figure).
        assert K_PI2 / K_PIE == pytest.approx(3.5, rel=0.02)

    def test_rows_cover_figure5_range(self):
        rows = tune_table_rows()
        ps = [p for p, _, _ in rows]
        assert min(ps) <= 1e-7 * 1.01
        assert max(ps) == 1.0
