"""Unit tests for the PI controller core and the plain PI AQM."""

import random

import pytest

from repro.aqm.base import Decision
from repro.aqm.pi import PIController, PiAqm
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


class TestPIController:
    def test_equation_four_single_step(self):
        # p += α(τ−τ0) + β(τ−τ_prev)
        ctl = PIController(alpha=0.125, beta=1.25, target=0.020)
        p = ctl.update(0.030)  # error +10 ms, change +30 ms from 0
        assert p == pytest.approx(0.125 * 0.010 + 1.25 * 0.030)

    def test_integrates_across_updates(self):
        ctl = PIController(alpha=0.1, beta=1.0, target=0.020)
        ctl.update(0.030)
        p1 = ctl.p
        p2 = ctl.update(0.030)  # same delay: only the α term adds
        assert p2 == pytest.approx(p1 + 0.1 * 0.010)

    def test_negative_error_decreases(self):
        ctl = PIController(alpha=0.1, beta=1.0, target=0.020)
        ctl.p = 0.5
        ctl.prev_delay = 0.010
        ctl.update(0.010)  # below target, no change term
        assert ctl.p < 0.5

    def test_clamped_at_zero(self):
        ctl = PIController(alpha=0.1, beta=1.0, target=0.020)
        ctl.update(0.0)
        assert ctl.p == 0.0

    def test_clamped_at_p_max(self):
        ctl = PIController(alpha=10.0, beta=100.0, target=0.001, p_max=0.5)
        for _ in range(100):
            ctl.update(1.0)
        assert ctl.p == 0.5

    def test_gain_scale_multiplies_delta(self):
        a = PIController(alpha=0.1, beta=1.0, target=0.020)
        b = PIController(alpha=0.1, beta=1.0, target=0.020)
        a.update(0.030, gain_scale=1.0)
        b.update(0.030, gain_scale=0.5)
        assert b.p == pytest.approx(a.p / 2)

    def test_reset(self):
        ctl = PIController(alpha=0.1, beta=1.0, target=0.020)
        ctl.update(0.5)
        ctl.reset()
        assert ctl.p == 0.0
        assert ctl.prev_delay == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0, "beta": 1, "target": 0.02},
            {"alpha": 0.1, "beta": -1, "target": 0.02},
            {"alpha": 0.1, "beta": 1, "target": 0},
            {"alpha": 0.1, "beta": 1, "target": 0.02, "p_max": 0},
            {"alpha": 0.1, "beta": 1, "target": 0.02, "p_max": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PIController(**kwargs)


class TestPiAqm:
    def test_update_timer_runs(self, sim):
        aqm = PiAqm(rng=random.Random(1))
        queue = StubQueue(delay=0.050)
        aqm.attach(sim, queue)
        sim.run(1.0)
        assert aqm.probability > 0.0

    def test_zero_probability_passes_everything(self, sim, rng):
        aqm = PiAqm(rng=rng)
        aqm.attach(sim, StubQueue(delay=0.0))
        assert all(
            aqm.on_enqueue(make_packet()) is Decision.PASS for _ in range(100)
        )

    def test_drops_not_ect_marks_ect(self, rng):
        aqm = PiAqm(rng=rng)
        aqm.controller.p = 1.0
        assert aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT)) is Decision.DROP
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) is Decision.MARK

    def test_ecn_disabled_drops_ect(self, rng):
        aqm = PiAqm(ecn=False, rng=rng)
        aqm.controller.p = 1.0
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) is Decision.DROP

    def test_signal_rate_matches_probability(self, rng):
        aqm = PiAqm(rng=rng)
        aqm.controller.p = 0.3
        n = 20_000
        signals = sum(
            aqm.on_enqueue(make_packet()) is Decision.DROP for _ in range(n)
        )
        assert signals / n == pytest.approx(0.3, rel=0.05)

    def test_detach_stops_timer(self, sim):
        aqm = PiAqm(rng=random.Random(1))
        aqm.attach(sim, StubQueue(delay=0.050))
        sim.run(0.1)
        aqm.detach()
        p = aqm.probability
        sim.run(1.0)
        assert aqm.probability == p
