"""Tests for the AQM base-class contract."""

import pytest

from repro.aqm.base import AQM, Decision
from repro.core.pi2 import Pi2Aqm
from tests.conftest import make_packet


class Recording(AQM):
    def __init__(self, decision):
        super().__init__()
        self._decision = decision
        self.updates = 0

    update_interval = 0.1

    def on_enqueue(self, packet):
        return self._decision

    def update(self):
        self.updates += 1


class TestLifecycle:
    def test_attach_starts_timer(self, sim, stub_queue):
        aqm = Recording(Decision.PASS)
        aqm.attach(sim, stub_queue)
        sim.run(1.05)
        assert aqm.updates == 10

    def test_no_timer_when_interval_none(self, sim, stub_queue):
        aqm = AQM()
        aqm.attach(sim, stub_queue)
        sim.run(1.0)  # must not raise; nothing scheduled
        assert sim.events_processed == 0

    def test_detach_idempotent(self, sim, stub_queue):
        aqm = Recording(Decision.PASS)
        aqm.attach(sim, stub_queue)
        aqm.detach()
        aqm.detach()
        sim.run(1.0)
        assert aqm.updates == 0


class TestDecisionRecording:
    @pytest.mark.parametrize(
        "decision,attr",
        [
            (Decision.PASS, "passed"),
            (Decision.MARK, "marked"),
            (Decision.DROP, "dropped"),
        ],
    )
    def test_decide_updates_stats(self, decision, attr):
        aqm = Recording(decision)
        for _ in range(4):
            aqm.decide(make_packet())
        assert getattr(aqm.stats, attr) == 4
        assert aqm.stats.decisions == 4

    def test_base_defaults(self):
        aqm = AQM()
        assert aqm.on_enqueue(make_packet()) is Decision.PASS
        assert aqm.probability == 0.0
        assert aqm.raw_probability == 0.0

    def test_raw_probability_defaults_to_probability(self):
        class Fixed(AQM):
            @property
            def probability(self):
                return 0.42

        assert Fixed().raw_probability == 0.42

    def test_pi2_overrides_raw(self):
        aqm = Pi2Aqm()
        aqm.controller.p = 0.3
        assert aqm.raw_probability == pytest.approx(0.3)
        assert aqm.probability == pytest.approx(0.09)
