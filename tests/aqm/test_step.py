"""Unit tests for the step-threshold (DCTCP-style) marker."""

import pytest

from repro.aqm.base import Decision
from repro.aqm.step import StepThresholdAqm
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


class TestThresholds:
    def test_below_delay_threshold_passes(self):
        aqm = StepThresholdAqm(threshold_delay=0.001)
        aqm.queue = StubQueue(delay=0.0005)
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.PASS

    def test_above_delay_threshold_marks(self):
        aqm = StepThresholdAqm(threshold_delay=0.001)
        aqm.queue = StubQueue(delay=0.002)
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.MARK

    def test_byte_threshold_takes_precedence(self):
        aqm = StepThresholdAqm(threshold_delay=1.0, threshold_bytes=1000)
        aqm.queue = StubQueue(delay=0.0, bytes_=2000)
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) is Decision.MARK

    def test_exact_threshold_passes(self):
        aqm = StepThresholdAqm(threshold_bytes=1000)
        aqm.queue = StubQueue(bytes_=1000)
        assert aqm.on_enqueue(make_packet(ecn=ECN.ECT1)) is Decision.PASS

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            StepThresholdAqm(threshold_delay=0)
        with pytest.raises(ValueError):
            StepThresholdAqm(threshold_bytes=0)


class TestNotEct:
    def test_not_ect_passes_by_default(self):
        aqm = StepThresholdAqm(threshold_delay=0.001)
        aqm.queue = StubQueue(delay=0.010)
        assert aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT)) is Decision.PASS

    def test_not_ect_dropped_when_configured(self):
        aqm = StepThresholdAqm(threshold_delay=0.001, drop_not_ect=True)
        aqm.queue = StubQueue(delay=0.010)
        assert aqm.on_enqueue(make_packet(ecn=ECN.NOT_ECT)) is Decision.DROP


class TestAccounting:
    def test_marking_fraction(self):
        aqm = StepThresholdAqm(threshold_delay=0.001)
        queue = StubQueue(delay=0.002)
        aqm.queue = queue
        for i in range(10):
            queue.delay = 0.002 if i < 5 else 0.0
            aqm.on_enqueue(make_packet(ecn=ECN.ECT1))
        assert aqm.probability == pytest.approx(0.5)

    def test_zero_seen_probability(self):
        assert StepThresholdAqm().probability == 0.0


class TestOnOffDynamics:
    def test_step_produces_mark_trains(self, sim, streams):
        """With a single DCTCP flow, marking comes in on-off bursts (the
        RTT-length trains Appendix A's equation (12) derivation assumes),
        unlike the evenly spread probabilistic marker."""
        from repro.harness.topology import Dumbbell

        bed = Dumbbell(
            sim, streams, 10e6, StepThresholdAqm(threshold_bytes=8000)
        )
        bed.add_tcp_flow("dctcp", rtt=0.04)
        sim.run(20.0)
        aqm = bed.aqm
        assert aqm.marked > 0
        # Marked fraction is well inside (0, 1): on-off, not all-or-none.
        assert 0.005 < aqm.probability < 0.5
