"""Unit tests for the RED baseline."""

import random

import pytest

from repro.aqm.base import Decision
from repro.aqm.red import RedAqm
from repro.net.packet import ECN
from tests.conftest import StubQueue, make_packet


def red(queue, **kwargs):
    kwargs.setdefault("rng", random.Random(1))
    aqm = RedAqm(**kwargs)
    aqm.queue = queue
    return aqm


class TestRampShape:
    def test_below_min_th_never_signals(self):
        aqm = red(StubQueue(delay=0.001))
        assert all(
            aqm.on_enqueue(make_packet()) is Decision.PASS for _ in range(500)
        )

    def test_probability_ramps_between_thresholds(self):
        aqm = red(StubQueue(delay=0.020), weight=1.0)
        aqm.on_enqueue(make_packet())  # update avg once
        assert aqm.probability == pytest.approx(
            0.10 * (0.020 - 0.010) / (0.030 - 0.010)
        )

    def test_gentle_region_ramps_to_one(self):
        aqm = red(StubQueue(delay=0.045), weight=1.0)
        aqm.on_enqueue(make_packet())
        expected = 0.10 + 0.90 * (0.045 - 0.030) / 0.030
        assert aqm.probability == pytest.approx(expected)

    def test_above_twice_max_th_drops_all(self):
        aqm = red(StubQueue(delay=0.100), weight=1.0, count_spread=False)
        aqm.on_enqueue(make_packet())
        assert aqm.probability == 1.0

    def test_non_gentle_drops_hard_above_max_th(self):
        aqm = red(StubQueue(delay=0.035), weight=1.0, gentle=False)
        aqm.on_enqueue(make_packet())
        assert aqm.probability == 1.0


class TestAveraging:
    def test_ewma_lags_instantaneous(self):
        queue = StubQueue(delay=0.050)
        aqm = red(queue, weight=0.002)
        aqm.on_enqueue(make_packet())
        assert aqm.avg < 0.050

    def test_avg_converges(self):
        queue = StubQueue(delay=0.050)
        aqm = red(queue, weight=0.1, count_spread=False)
        for _ in range(200):
            aqm.on_enqueue(make_packet())
        assert aqm.avg == pytest.approx(0.050, rel=0.01)


class TestEcnAndValidation:
    def test_marks_ect_in_ramp(self):
        aqm = red(StubQueue(delay=0.025), weight=1.0, max_p=1.0,
                  count_spread=False)
        aqm.on_enqueue(make_packet())  # seed avg
        decisions = {
            aqm.on_enqueue(make_packet(ecn=ECN.ECT0)) for _ in range(300)
        }
        assert Decision.MARK in decisions
        assert Decision.DROP not in decisions

    def test_drops_not_ect(self):
        aqm = red(StubQueue(delay=0.025), weight=1.0, max_p=1.0,
                  count_spread=False)
        aqm.on_enqueue(make_packet())
        decisions = {aqm.on_enqueue(make_packet()) for _ in range(300)}
        assert Decision.DROP in decisions

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_th": 0.03, "max_th": 0.01},
            {"max_p": 0.0},
            {"weight": 0.0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RedAqm(**kwargs)
