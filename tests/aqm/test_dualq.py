"""Unit tests for the DualQ Coupled AQM extension."""

import random

import pytest

from repro.aqm.dualq import DualQueueCoupledAqm
from repro.net.link import Link
from repro.net.node import CountingSink
from repro.net.packet import ECN
from tests.conftest import make_packet


def make_dualq(sim, **kwargs):
    kwargs.setdefault("rng", random.Random(1))
    return DualQueueCoupledAqm(sim, capacity_bps=10e6, **kwargs)


class TestClassification:
    def test_scalable_goes_to_l_queue(self, sim):
        dq = make_dualq(sim)
        dq.enqueue(make_packet(ecn=ECN.ECT1))
        assert dq.l_stats.enqueued == 1
        assert dq.c_stats.enqueued == 0

    def test_classic_goes_to_c_queue(self, sim):
        dq = make_dualq(sim)
        dq.enqueue(make_packet(ecn=ECN.ECT0))
        dq.enqueue(make_packet(ecn=ECN.NOT_ECT))
        assert dq.c_stats.enqueued == 2
        assert dq.l_stats.enqueued == 0

    def test_shared_buffer_limit(self, sim):
        dq = make_dualq(sim, buffer_packets=2)
        assert dq.enqueue(make_packet(ecn=ECN.ECT1))
        assert dq.enqueue(make_packet())
        assert not dq.enqueue(make_packet())
        assert dq.stats.tail_dropped == 1


class TestCoupling:
    def test_classic_probability_is_p_prime_squared(self, sim):
        dq = make_dualq(sim)
        dq.controller.p = 0.3
        assert dq.classic_probability == pytest.approx(0.09)

    def test_l_probability_is_k_times_p_prime(self, sim):
        dq = make_dualq(sim, k=2.0)
        dq.controller.p = 0.3
        assert dq.probability == pytest.approx(0.6)

    def test_l_probability_clamped(self, sim):
        dq = make_dualq(sim, k=2.0)
        dq.controller.p = 0.8
        assert dq.probability == 1.0

    def test_native_threshold_marks_on_l_backlog(self, sim):
        dq = make_dualq(sim, l_threshold=0.0005)
        # Fill L with enough bytes to exceed the 0.5 ms native threshold.
        for _ in range(10):
            dq.enqueue(make_packet(ecn=ECN.ECT1, size=1500))
        # 10*1500B at 10 Mb/s = 12 ms >> threshold: next arrival marked.
        dq.enqueue(make_packet(ecn=ECN.ECT1, size=1500))
        assert dq.l_stats.ce_marked >= 1


class TestScheduler:
    def test_l_has_priority(self, sim):
        dq = make_dualq(sim)
        dq.enqueue(make_packet(ecn=ECN.NOT_ECT, seq=1))
        dq.enqueue(make_packet(ecn=ECN.ECT1, seq=2))
        head = dq.dequeue()
        assert head.seq == 2  # L-queue packet first despite later arrival

    def test_time_shift_prevents_c_starvation(self, sim):
        dq = make_dualq(sim, tshift=0.010)
        dq.enqueue(make_packet(ecn=ECN.NOT_ECT, seq=1))
        sim.run(0.020)  # C head waits 20 ms > tshift
        dq.enqueue(make_packet(ecn=ECN.ECT1, seq=2))
        assert dq.dequeue().seq == 1

    def test_empty_dequeue_returns_none(self, sim):
        assert make_dualq(sim).dequeue() is None

    def test_drains_through_link(self, sim):
        dq = make_dualq(sim)
        sink = CountingSink()
        Link(sim, dq, 10e6, sink=sink)
        dq.enqueue(make_packet(ecn=ECN.ECT1))
        dq.enqueue(make_packet(ecn=ECN.NOT_ECT))
        sim.run(1.0)
        assert sink.packets == 2
        assert len(dq) == 0


class TestOverload:
    def test_classic_dropped_at_high_p_prime(self, sim):
        dq = make_dualq(sim)
        dq.controller.p = 1.0
        outcomes = [dq.enqueue(make_packet()) for _ in range(100)]
        assert not all(outcomes)
        assert dq.c_stats.aqm_dropped > 0

    def test_scalable_never_dropped_by_aqm(self, sim):
        dq = make_dualq(sim)
        dq.controller.p = 1.0
        outcomes = [dq.enqueue(make_packet(ecn=ECN.ECT1)) for _ in range(100)]
        assert all(outcomes)
        assert dq.l_stats.ce_marked == 100
