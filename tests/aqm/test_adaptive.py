"""Unit and equivalence tests for the continuously self-tuned PI."""

import random

import pytest

from repro.aqm.adaptive import AdaptivePiAqm
from repro.analysis.bode import margins_reno_pi
from repro.analysis.fluid import PiGains
from repro.aqm.tune_table import sqrt2p
from tests.conftest import StubQueue


class TestGainScaling:
    def test_update_scales_by_sqrt2p(self, sim):
        aqm = AdaptivePiAqm(rng=random.Random(1))
        aqm.controller.p = 0.08
        aqm.controller.prev_delay = 0.03
        queue = StubQueue(delay=0.030)
        aqm.attach(sim, queue)
        before = aqm.controller.p
        aqm.update()
        expected_delta = (
            aqm.controller.alpha * (0.030 - 0.020)
        ) * sqrt2p(before)
        assert aqm.controller.p - before == pytest.approx(expected_delta)

    def test_tune_min_floor(self, sim):
        aqm = AdaptivePiAqm(rng=random.Random(1), tune_min=0.01)
        queue = StubQueue(delay=0.030)
        aqm.attach(sim, queue)
        aqm.update()  # p starts at 0: scale floored at 0.01, not 0
        assert aqm.controller.p > 0

    def test_invalid_tune_min_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePiAqm(tune_min=0)

    def test_custom_tuner(self, sim):
        aqm = AdaptivePiAqm(rng=random.Random(1), tuner=lambda p: 0.5)
        aqm.controller.p = 0.5
        aqm.controller.prev_delay = 0.03
        aqm.attach(sim, StubQueue(delay=0.030))
        before = aqm.controller.p
        aqm.update()
        assert aqm.controller.p - before == pytest.approx(
            aqm.controller.alpha * 0.010 * 0.5
        )


class TestAnalyticMargins:
    def test_continuous_tune_flattens_gain_margin(self):
        """Scaling gains by √(2p) keeps the Reno-on-p margins flat across
        the load range — the Figure 4 auto-tune effect without steps."""
        gms = []
        for p in (1e-4, 1e-3, 1e-2, 0.1):
            m = margins_reno_pi(
                p, 0.1, PiGains(0.3125, 3.125), tune_factor=sqrt2p(p)
            )
            gms.append(m.gain_margin_db)
        assert all(g > 0 for g in gms)
        # ~5 dB residual spread over 3 decades (the plant pole s_R also
        # moves with √p), versus ~30 dB for fixed gains.
        assert max(gms) - min(gms) < 6.0


class TestPi2Equivalence:
    """Section 4: gains ∝ √(2p) on p ≈ constant gains on p' then squaring.

    The equivalence is first-order in the *signal*: both controllers
    settle the same drop probability.  The transient behaviour differs in
    PI2's favour — when p collapses to zero the tune-scaled gains collapse
    with it and the queue overshoots while the controller crawls back,
    which is precisely the paper's 'no worse, sometimes better' claim.
    """

    @pytest.fixture(scope="class")
    def results(self):
        from repro.harness import MBPS, pi2_factory, run_experiment
        from repro.harness.experiment import Experiment, FlowGroup

        out = {}
        for name, factory in (
            ("adaptive", lambda rng: AdaptivePiAqm(rng=rng)),
            ("pi2", pi2_factory()),
        ):
            out[name] = run_experiment(
                Experiment(
                    capacity_bps=10 * MBPS,
                    duration=40.0,
                    warmup=15.0,
                    aqm_factory=factory,
                    flows=[FlowGroup(cc="reno", count=5, rtt=0.05)],
                )
            )
        return out

    def test_signal_probability_agrees(self, results):
        p_a = results["adaptive"].probability.mean(15.0)
        p_p = results["pi2"].probability.mean(15.0)
        assert p_a == pytest.approx(p_p, rel=0.35)

    def test_pi2_delay_no_worse(self, results):
        d_a = results["adaptive"].sojourn_summary()["mean"]
        d_p = results["pi2"].sojourn_summary()["mean"]
        assert d_p <= d_a + 0.002
        # Both in the target's neighbourhood.
        assert 0.010 < d_p < 0.035
        assert 0.010 < d_a < 0.045

    def test_both_fully_utilize(self, results):
        for r in results.values():
            assert r.mean_utilization() > 0.90
