"""Table 1 — default parameters for the different AQMs.

The paper's Table 1:

    All:               Buffer: 40000 pkt, ECN
    PI/PIE+Cubic/Reno: Target delay: 20 ms, Burst: 100 ms, α: 2/16, β: 20/16
    PI/PI2+DCTCP:      Target delay: 20 ms, α: 10/16, β: 100/16

plus the Figure 6/7 captions: αPI2 = 0.3125, βPI2 = 3.125 (2.5× PIE),
T = 32 ms.
"""

import random

import pytest

from repro.aqm.pi import PiAqm
from repro.aqm.pie import PieAqm
from repro.core.coupled import CoupledPi2Aqm
from repro.core.pi2 import Pi2Aqm
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory


class TestTable1:
    def test_buffer_default_40000_packets(self):
        exp = Experiment(
            capacity_bps=1e6, duration=1.0, warmup=0.0,
            aqm_factory=pi2_factory(), flows=[FlowGroup(cc="reno", count=1, rtt=0.01)],
        )
        assert exp.buffer_packets == 40_000

    def test_pie_gains_2_16_and_20_16(self):
        pie = PieAqm(rng=random.Random(1))
        assert pie.controller.alpha == pytest.approx(2 / 16)
        assert pie.controller.beta == pytest.approx(20 / 16)

    def test_pie_target_20ms_burst_100ms(self):
        pie = PieAqm(rng=random.Random(1))
        assert pie.controller.target == pytest.approx(0.020)
        assert pie.max_burst == pytest.approx(0.100)

    def test_pi_gains_match_pie_base(self):
        pi = PiAqm(rng=random.Random(1))
        assert pi.controller.alpha == pytest.approx(0.125)
        assert pi.controller.beta == pytest.approx(1.25)

    def test_pi2_gains_2_5x(self):
        pi2 = Pi2Aqm(rng=random.Random(1))
        assert pi2.controller.alpha == pytest.approx(0.3125)
        assert pi2.controller.beta == pytest.approx(3.125)

    def test_coupled_gains_10_16_and_100_16(self):
        c = CoupledPi2Aqm(rng=random.Random(1))
        assert c.controller.alpha == pytest.approx(10 / 16)
        assert c.controller.beta == pytest.approx(100 / 16)

    def test_update_interval_32ms_everywhere(self):
        for aqm in (
            PieAqm(rng=random.Random(1)),
            PiAqm(rng=random.Random(1)),
            Pi2Aqm(rng=random.Random(1)),
            CoupledPi2Aqm(rng=random.Random(1)),
        ):
            assert aqm.update_interval == pytest.approx(0.032)

    def test_targets_all_20ms(self):
        for aqm in (
            PieAqm(rng=random.Random(1)),
            PiAqm(rng=random.Random(1)),
            Pi2Aqm(rng=random.Random(1)),
            CoupledPi2Aqm(rng=random.Random(1)),
        ):
            assert aqm.controller.target == pytest.approx(0.020)

    def test_coupling_factor_k2(self):
        assert CoupledPi2Aqm(rng=random.Random(1)).k == 2.0
