"""Unit tests for the dumbbell topology."""

import pytest

from repro.core.pi2 import Pi2Aqm
from repro.harness.topology import Dumbbell


def make_bed(sim, streams, aqm=None, capacity=10e6, **kwargs):
    return Dumbbell(sim, streams, capacity, aqm, **kwargs)


class TestFlowWiring:
    def test_tcp_flow_moves_data(self, sim, streams):
        bed = make_bed(sim, streams)
        bed.add_tcp_flow("reno", rtt=0.05, label="x")
        sim.run(5.0)
        assert bed.receivers[0].segments_received > 100

    def test_unknown_cc_rejected(self, sim, streams):
        bed = make_bed(sim, streams)
        with pytest.raises(ValueError):
            bed.add_tcp_flow("vegas", rtt=0.05)

    def test_invalid_rtt_rejected(self, sim, streams):
        bed = make_bed(sim, streams)
        with pytest.raises(ValueError):
            bed.add_tcp_flow("reno", rtt=0)

    def test_flow_ids_unique(self, sim, streams):
        bed = make_bed(sim, streams)
        a = bed.add_tcp_flow("reno", rtt=0.05)
        b = bed.add_tcp_flow("cubic", rtt=0.05)
        assert a.flow_id != b.flow_id

    def test_stop_before_start_rejected(self, sim, streams):
        bed = make_bed(sim, streams)
        with pytest.raises(ValueError):
            bed.add_tcp_flow("reno", rtt=0.05, start=5.0, stop=4.0)

    def test_udp_flow_counted_at_sink(self, sim, streams):
        bed = make_bed(sim, streams)
        bed.add_udp_flow(rate_bps=2e6)
        sim.run(5.0)
        assert bed.udp_delivered_bps(5.0) == pytest.approx(2e6, rel=0.05)


class TestInstrumentation:
    def test_queue_delay_sampled(self, sim, streams):
        bed = make_bed(sim, streams, sample_period=0.5)
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(4.0)
        assert len(bed.queue_delay) == 8

    def test_sojourns_recorded(self, sim, streams):
        bed = make_bed(sim, streams)
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(2.0)
        assert len(bed.sojourns) > 0

    def test_sojourn_recording_can_be_disabled(self, sim, streams):
        bed = make_bed(sim, streams, record_sojourns=False)
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(2.0)
        assert len(bed.sojourns) == 0

    def test_probability_sampled_with_aqm(self, sim, streams):
        bed = make_bed(sim, streams, aqm=Pi2Aqm(rng=streams.stream("aqm")))
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(3.0)
        assert len(bed.probability) == 3

    def test_utilization_bounded(self, sim, streams):
        bed = make_bed(sim, streams)
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(5.0)
        assert all(0.0 <= u <= 1.01 for u in bed.utilization.values)

    def test_set_capacity_changes_link(self, sim, streams):
        bed = make_bed(sim, streams)
        bed.set_capacity(20e6)
        assert bed.link.capacity_bps == 20e6
        assert bed.queue.estimator.capacity_bps == 20e6
