"""Seeded digest lock for the DET/ORD fix targets (adaptive PI + faults).

The DET violations fixed by routing ``rng or random.Random(0)`` through
:func:`repro.sim.random.default_stream` were required to be bit-exact
no-ops.  These golden hashes pin the exact seeded behaviour of the
adaptive PI AQM — alone and under the fault-injection pipeline
(``net/faults``) — so any future change to the fallback-RNG plumbing,
the clamp helpers, or the fault machinery that perturbs a single random
draw fails loudly here.

The hashes are over ``ResultMetrics.digest()`` (the same fingerprint the
serial/parallel/cache parity gates compare), serialised with sorted keys.
``random.Random`` (MT19937) and IEEE-754 arithmetic are stable across
platforms and Python versions, so the values are portable.  If a change
*intentionally* alters seeded behaviour, rerun the experiment and update
the constants — in a commit that says so.
"""

import hashlib
import json
from dataclasses import replace

from repro.aqm.adaptive import AdaptivePiAqm
from repro.harness import light_tcp, run_experiment
from repro.harness.factories import NamedAqmFactory
from repro.net.faults import parse_fault_spec

GOLDEN_ADAPTIVE = "4cdd424b5d79dc400098546eb5ee3a441f72dcd73ede0fd86799bcb0e802a0b3"
GOLDEN_ADAPTIVE_FAULTS = (
    "446f119c1940576c0ff1160cbb50f6934e7d254c7b378f50cbe799337c8a4eef"
)


def _digest_hash(result) -> str:
    return hashlib.sha256(
        json.dumps(result.digest(), sort_keys=True).encode()
    ).hexdigest()


def _adaptive_experiment(faults=False):
    exp = light_tcp(NamedAqmFactory(AdaptivePiAqm), duration=4.0, seed=3)
    if faults:
        exp = replace(
            exp,
            faults=(
                parse_fault_spec("burstloss:1.0:0.5"),
                parse_fault_spec("jitter:2.0:1.0"),
            ),
        )
    return exp


def test_adaptive_digest_locked():
    assert _digest_hash(run_experiment(_adaptive_experiment())) == GOLDEN_ADAPTIVE


def test_adaptive_with_faults_digest_locked():
    result = run_experiment(_adaptive_experiment(faults=True))
    assert _digest_hash(result) == GOLDEN_ADAPTIVE_FAULTS


def test_faulted_run_is_run_to_run_deterministic():
    first = run_experiment(_adaptive_experiment(faults=True))
    second = run_experiment(_adaptive_experiment(faults=True))
    assert first.digest() == second.digest()


def test_fallback_stream_matches_historical_seed():
    """default_stream() must stay bit-identical to random.Random(0) —
    the exact fallback every AQM constructor used before the DET fix."""
    import random

    from repro.sim.random import default_stream

    ours = default_stream()
    historical = random.Random(0)
    assert [ours.random() for _ in range(100)] == [
        historical.random() for _ in range(100)
    ]


def test_scheduler_backends_share_the_golden_digest():
    """The timer-wheel core must hash onto the heap's golden values.

    Both golden constants above were minted under the reference heap;
    running the same experiments under scheduler="wheel" (and "heap"
    explicitly, guarding the default) must reproduce them bit-for-bit —
    the strongest end-to-end statement of the wheel's (time, seq)
    pop-order parity.
    """
    for scheduler in ("heap", "wheel"):
        exp = replace(_adaptive_experiment(), scheduler=scheduler)
        assert _digest_hash(run_experiment(exp)) == GOLDEN_ADAPTIVE


def test_scheduler_backends_agree_under_faults():
    heap = run_experiment(
        replace(_adaptive_experiment(faults=True), scheduler="heap")
    )
    wheel = run_experiment(
        replace(_adaptive_experiment(faults=True), scheduler="wheel")
    )
    assert _digest_hash(heap) == GOLDEN_ADAPTIVE_FAULTS
    assert heap.digest() == wheel.digest()
