"""Chaos tests: SIGKILLed workers, hangs, stalls, poison cells, torn
journals — each asserting the recovery is *bit-exact*.

Every scenario compares the surviving results' digests against a clean
serial run of the same experiments: surviving a crash is only half the
contract, the other half is that recovery changes nothing about the
numbers.

The chaos factories are module-level classes (picklable by reference
under the fork start method) that behave exactly like ``pi2_factory()``
— so digests are comparable with a plain PI2 run — but inject one fault
the first time their flag file can be claimed.  The flag lives on disk
because the fault must fire in a *worker process* and be visible to the
retry that runs in a different worker.
"""

import os
import signal
import time

import pytest

from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory
from repro.harness.journal import ResultJournal
from repro.harness.parallel import SweepTask, execute_tasks
from repro.harness.supervisor import (
    SupervisorConfig,
    SupervisorReport,
    execute_supervised,
)


class ChaosPi2Factory:
    """Base: delegate to PI2, but misbehave once (first flag-file claim)."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def _first_time(self) -> bool:
        try:
            open(self.flag_path, "x").close()
        except FileExistsError:
            return False
        return True

    def cache_key(self) -> str:
        # Stable across retries (the flag path is per-test scratch state,
        # not configuration), so journaling and resume work normally.
        return f"chaos:{type(self).__name__}"

    def chaos(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __call__(self, rng):
        if self._first_time():
            self.chaos()
        return pi2_factory()(rng)


class KillOnceFactory(ChaosPi2Factory):
    """SIGKILL the worker mid-task, once — the OOM-killer scenario."""

    def chaos(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


class HangOnceFactory(ChaosPi2Factory):
    """Hang the worker far past any timeout, once."""

    def chaos(self) -> None:
        time.sleep(1000.0)


class StallOnceFactory(ChaosPi2Factory):
    """Freeze the worker (SIGSTOP), once: alive but silent — the case
    only heartbeat monitoring can catch."""

    def chaos(self) -> None:
        os.kill(os.getpid(), signal.SIGSTOP)


class KillAlwaysFactory(KillOnceFactory):
    """SIGKILL on *every* construction: exercises terminal crash failure."""

    def _first_time(self) -> bool:
        return True


class HangAlwaysFactory(HangOnceFactory):
    """Hang on *every* construction: exercises terminal timeout failure."""

    def _first_time(self) -> bool:
        return True


def _cells(factory, n=3, **overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=2.0,
        warmup=0.5,
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )
    defaults.update(overrides)
    return [
        SweepTask(f"cell-{seed}", Experiment(
            aqm_factory=factory, seed=seed, **defaults
        ))
        for seed in range(1, n + 1)
    ]


def _reference_digests(n=3, **overrides):
    """Digests of the same cells run clean, serial, with plain PI2."""
    plain = execute_tasks(_cells(pi2_factory(), n=n, **overrides), jobs=1)
    return [result.digest() for result, _failure in plain]


class TestSigkillRecovery:
    def test_killed_worker_is_retried_in_place_bit_exact(self, tmp_path):
        tasks = _cells(KillOnceFactory(tmp_path / "kill.flag"))
        report = SupervisorReport()
        out = execute_supervised(
            tasks, jobs=2,
            config=SupervisorConfig(backoff_base=0.05),
            report=report,
        )
        assert [r.digest() for r, _ in out] == _reference_digests()
        kills = [a for a in report.actions if a.action == "retry after killed"]
        assert len(kills) == 1
        assert kills[0].worker is not None and kills[0].worker.startswith("pid:")
        assert any(a.action == "recovered" for a in report.actions)
        assert not report.degraded

    def test_kill_every_attempt_is_a_terminal_failure(self, tmp_path):
        tasks = _cells(KillAlwaysFactory(tmp_path / "k.flag"), n=1)
        out = execute_supervised(
            tasks, on_error="capture",
            config=SupervisorConfig(max_task_failures=1, backoff_base=0.05),
        )
        (result, failure) = out[0]
        assert result is None
        assert failure.error_type == "WorkerCrashed"
        assert len(failure.attempts) == 2  # original + 1 same-seed retry
        assert all(a.kind == "killed" for a in failure.attempts)
        assert failure.seeds_tried == (1, 1)  # same seed: external cause


class TestSigkillMidGridWithResume:
    def test_interrupted_journaled_sweep_resumes_bit_exact(self, tmp_path):
        """The tentpole scenario end-to-end: a worker is SIGKILLed during
        a journaled sweep, the sweep is interrupted after two cells, and
        the resumed run replays the journal and re-executes only the
        remainder — with digests identical to a clean uninterrupted run.
        """
        journal = tmp_path / "grid.journal"
        factory = KillOnceFactory(tmp_path / "kill.flag")
        tasks = _cells(factory, n=4)

        report = SupervisorReport()
        first = execute_supervised(
            tasks[:2], jobs=2, journal=journal,
            config=SupervisorConfig(backoff_base=0.05),
            report=report,
        )
        assert any(a.action == "retry after killed" for a in report.actions)
        assert report.journal_appends == 2

        resumed_report = SupervisorReport()
        resumed = execute_supervised(
            tasks, jobs=2, journal=journal, resume=True,
            config=SupervisorConfig(backoff_base=0.05),
            report=resumed_report,
        )
        assert resumed_report.replayed == 2   # journal did its job
        assert resumed_report.executed == 2   # only the remainder ran
        reference = _reference_digests(n=4)
        assert [r.digest() for r, _ in resumed] == reference
        assert [r.digest() for r, _ in first] == reference[:2]
        # The journal now holds all four cells, cleanly framed.
        replay = ResultJournal(journal).read()
        assert len(replay.records) == 4
        assert not replay.torn


class TestTimeoutExpiry:
    def test_hung_worker_is_killed_and_retried_bit_exact(self, tmp_path):
        tasks = _cells(HangOnceFactory(tmp_path / "hang.flag"), n=2)
        report = SupervisorReport()
        out = execute_supervised(
            tasks, jobs=2,
            config=SupervisorConfig(task_timeout=5.0, backoff_base=0.05),
            report=report,
        )
        assert [r.digest() for r, _ in out] == _reference_digests(n=2)
        timeouts = [a for a in report.actions if a.action == "retry after timeout"]
        assert len(timeouts) == 1

    def test_timeout_every_attempt_is_terminal_with_history(self, tmp_path):
        tasks = _cells(HangAlwaysFactory(tmp_path / "h.flag"), n=1)
        out = execute_supervised(
            tasks, on_error="capture",
            config=SupervisorConfig(
                task_timeout=1.0, max_task_failures=1, backoff_base=0.05
            ),
        )
        (result, failure) = out[0]
        assert result is None
        assert failure.error_type == "TaskTimeout"
        assert [a.kind for a in failure.attempts] == ["timeout", "timeout"]
        assert failure.attempts[0].backoff_s > 0


class TestHeartbeatStall:
    def test_stopped_worker_detected_by_heartbeat_and_retried(self, tmp_path):
        tasks = _cells(StallOnceFactory(tmp_path / "stall.flag"), n=2)
        report = SupervisorReport()
        out = execute_supervised(
            tasks, jobs=2,
            config=SupervisorConfig(
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                backoff_base=0.05,
            ),
            report=report,
        )
        assert [r.digest() for r, _ in out] == _reference_digests(n=2)
        stalls = [a for a in report.actions if a.action == "retry after stalled"]
        assert len(stalls) == 1
        assert report.heartbeats > 0


class TestPoisonTask:
    def test_poison_cell_fails_alone_others_bit_exact(self):
        """One cell that deterministically exhausts its event budget must
        not contaminate its siblings, and its failure must carry the
        whole seed-bump history."""
        good = _cells(pi2_factory(), n=2)
        poison = SweepTask("poison", Experiment(
            aqm_factory=pi2_factory(),
            capacity_bps=10e6, duration=2.0, warmup=0.5, seed=9,
            max_events=500,
            flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
        ))
        tasks = [good[0], poison, good[1]]
        out = execute_supervised(
            tasks, jobs=2, on_error="capture",
            config=SupervisorConfig(max_retries=1),
        )
        reference = _reference_digests(n=2)
        assert out[0][0].digest() == reference[0]
        assert out[2][0].digest() == reference[1]
        failure = out[1][1]
        assert failure.error_type == "WatchdogExceeded"
        assert len(failure.attempts) == 2
        assert {a.kind for a in failure.attempts} == {"exception"}


class TestTornJournalRecovery:
    def test_resume_from_torn_journal_is_bit_exact(self, tmp_path):
        """A crash mid-append leaves a torn record; the resume must use
        the intact prefix, re-run the rest, and heal the journal file."""
        journal = tmp_path / "grid.journal"
        tasks = _cells(pi2_factory(), n=3)
        execute_supervised(tasks[:2], journal=journal)
        with open(journal, "ab") as handle:
            handle.write(b"\x99" * 17)  # torn half-record from a "crash"
        report = SupervisorReport()
        resumed = execute_supervised(
            tasks, journal=journal, resume=True, report=report
        )
        assert report.torn_journal
        assert report.replayed == 2
        assert report.executed == 1
        assert [r.digest() for r, _ in resumed] == _reference_digests(n=3)
        healed = ResultJournal(journal).read()
        assert not healed.torn
        assert len(healed.records) == 3


def _figure_worker(journal_dir: str) -> None:
    """Child body for the mid-figure SIGKILL test (module-level so it
    pickles by reference under the fork start method)."""
    from repro.harness.figures import generate_figure

    generate_figure("fig12", scale=0.12, journal=journal_dir)


class TestSigkillMidFigureWithResume:
    def test_killed_figure_run_resumes_bit_exact(self, tmp_path):
        """The figure-pipeline tentpole end-to-end: a `repro figure` run
        is SIGKILLed after its first cell lands in the journal; the
        resumed run replays that cell and re-executes only the rest —
        with rows byte-identical to an uninterrupted run."""
        import multiprocessing

        from repro.harness.figures import generate_figure

        journal_dir = tmp_path / "journals"
        journal_path = journal_dir / "fig12.journal"
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_figure_worker, args=(str(journal_dir),))
        child.start()
        deadline = time.monotonic() + 60.0
        try:
            # Kill as soon as the first cell is durable, so the second
            # is (almost always) still simulating.
            while time.monotonic() < deadline:
                if (journal_path.exists()
                        and ResultJournal(journal_path).read().records):
                    break
                time.sleep(0.005)
            else:
                raise AssertionError("no journal record within 60s")
        finally:
            child.kill()
            child.join(timeout=30.0)
        assert child.exitcode is not None

        replay = ResultJournal(journal_path).read()
        survived = len(replay.records)
        assert survived >= 1

        clean = generate_figure("fig12", scale=0.12)
        resumed = generate_figure(
            "fig12", scale=0.12, journal=journal_dir, resume=True
        )
        assert resumed.rows == clean.rows
        assert resumed.report.replayed == survived
        assert resumed.report.replayed + resumed.report.executed == 2
        # The journal now holds both cells, cleanly framed (a torn tail
        # from the kill was truncated by the resume's first append).
        healed = ResultJournal(journal_path).read()
        assert len(healed.records) == 2
        assert not healed.torn


class TestCliFigureChaosFree:
    def test_cli_figure_journal_resume(self, tmp_path):
        """`repro figure --journal ... --resume` round-trips through the
        CLI surface: the second invocation replays both cells."""
        from io import StringIO

        from repro.cli import main

        argv = [
            "figure", "fig12", "--scale", "0.12", "--no-cache",
            "--journal", str(tmp_path / "journals"),
        ]
        out = StringIO()
        assert main(argv, out=out) == 0
        assert "journal_appends=2" in out.getvalue()
        out2 = StringIO()
        assert main(argv + ["--resume"], out=out2) == 0
        assert "replayed=2" in out2.getvalue()
        assert out2.getvalue().split("\n")[:-2] == out.getvalue().split("\n")[:-2]


class TestCliGridChaosFree:
    def test_cli_grid_supervised_journal_resume(self, tmp_path):
        """`repro grid --journal ... --resume` round-trips through the
        CLI surface: second invocation replays every cell."""
        from io import StringIO

        from repro.cli import main

        journal = tmp_path / "cli.journal"
        argv = [
            "grid", "--aqm", "pi2", "--links", "4", "--rtts", "5,10",
            "--duration", "2", "--no-cache",
            "--journal", str(journal), "--supervised",
        ]
        out = StringIO()
        assert main(argv, out=out) == 0
        assert "supervised:" in out.getvalue()
        out2 = StringIO()
        assert main(argv + ["--resume"], out=out2) == 0
        assert "replayed=2" in out2.getvalue()


@pytest.mark.parametrize("chaos_cls", [KillOnceFactory, HangOnceFactory])
def test_chaos_factories_are_picklable(tmp_path, chaos_cls):
    import pickle

    factory = chaos_cls(tmp_path / "f.flag")
    assert pickle.loads(pickle.dumps(factory)).flag_path == factory.flag_path
