"""Result journal: framing, torn-tail recovery, truncate-on-reopen.

The journal's contract is narrow but hard: every record that ``append``
returned from is durable and readable; a crash mid-append costs at most
the record being written (the intact prefix always survives); and a
journal written by different code or schema replays nothing rather than
something wrong.
"""

import pickle

import pytest

from repro.errors import JournalError
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory
from repro.harness.frozen import freeze_result
from repro.harness.journal import (
    JOURNAL_MAGIC,
    JournalReplay,
    ResultJournal,
)


@pytest.fixture(scope="module")
def frozen_result():
    """One tiny real FrozenResult shared by every test in the module."""
    from repro.harness.experiment import run_experiment

    exp = Experiment(
        aqm_factory=pi2_factory(),
        capacity_bps=10e6,
        duration=1.5,
        warmup=0.5,
        flows=[FlowGroup(cc="reno", count=1, rtt=0.02)],
    )
    return freeze_result(run_experiment(exp))


class TestRoundTrip:
    def test_append_then_read(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "cell a", frozen_result)
            journal.append("key-b", "cell b", frozen_result)
            assert journal.appended == 2
        replay = ResultJournal(path).read()
        assert not replay.torn
        assert [r.key for r in replay.records] == ["key-a", "key-b"]
        assert [r.label for r in replay.records] == ["cell a", "cell b"]
        for record in replay.records:
            assert record.digest == frozen_result.digest_hex()
            assert record.result.digest() == frozen_result.digest()

    def test_replay_map_later_records_win(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key", "first", frozen_result)
            journal.append("key", "second", frozen_result)
        replay = ResultJournal(path).read()
        assert len(replay.records) == 2
        assert set(replay.replay_map()) == {"key"}

    def test_missing_file_reads_empty(self, tmp_path):
        replay = ResultJournal(tmp_path / "absent.journal").read()
        assert replay == JournalReplay()

    def test_empty_key_rejected(self, tmp_path, frozen_result):
        with ResultJournal(tmp_path / "j.journal") as journal:
            with pytest.raises(JournalError):
                journal.append("", "label", frozen_result)

    def test_sync_false_still_readable(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path, sync=False) as journal:
            journal.append("key", "label", frozen_result)
        assert len(ResultJournal(path).read().records) == 1


class TestTornRecords:
    def test_torn_tail_preserves_prefix(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
            journal.append("key-b", "b", frozen_result)
        intact = path.stat().st_size
        with path.open("ab") as handle:
            handle.write(b"\x40\x00\x00\x00\x00\x00\x00\x00partial")
        replay = ResultJournal(path).read()
        assert replay.torn
        assert [r.key for r in replay.records] == ["key-a", "key-b"]
        assert replay.valid_bytes == intact
        assert replay.discarded_bytes == path.stat().st_size - intact

    def test_reopen_truncates_torn_tail_then_appends(
        self, tmp_path, frozen_result
    ):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
        with path.open("ab") as handle:
            handle.write(b"torn garbage that is not a full record")
        with ResultJournal(path) as journal:
            journal.append("key-b", "b", frozen_result)
        replay = ResultJournal(path).read()
        assert not replay.torn
        assert [r.key for r in replay.records] == ["key-a", "key-b"]

    def test_checksum_mismatch_stops_replay(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
            journal.append("key-b", "b", frozen_result)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of the first record (just past its header).
        data[len(JOURNAL_MAGIC) + 8 + 32 + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        replay = ResultJournal(path).read()
        assert replay.torn
        assert replay.records == []

    def test_wrong_schema_record_is_unusable(self, tmp_path, frozen_result):
        import hashlib
        import struct

        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
        payload = pickle.dumps(
            {"schema": 999, "key": "k", "label": "l",
             "digest": "d", "result": frozen_result}
        )
        with path.open("ab") as handle:
            handle.write(struct.pack("<Q", len(payload)))
            handle.write(hashlib.sha256(payload).digest())
            handle.write(payload)
        replay = ResultJournal(path).read()
        assert replay.torn
        assert [r.key for r in replay.records] == ["key-a"]


class TestBadFiles:
    def test_non_journal_file_raises(self, tmp_path):
        path = tmp_path / "not-a-journal"
        path.write_bytes(b"just some text, definitely not " + JOURNAL_MAGIC)
        with pytest.raises(JournalError):
            ResultJournal(path).read()

    def test_parent_directories_created(self, tmp_path, frozen_result):
        path = tmp_path / "deep" / "nested" / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key", "label", frozen_result)
        assert len(ResultJournal(path).read().records) == 1


class TestCompaction:
    def test_compact_keeps_latest_record_per_key(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a first", frozen_result)
            journal.append("key-b", "b only", frozen_result)
            journal.append("key-a", "a latest", frozen_result)
            before = path.stat().st_size
            before_map = journal.read().replay_map()
            assert journal.compact() == 1
            assert journal.compactions == 1
        replay = ResultJournal(path).read()
        assert not replay.torn
        # Replay semantics are unchanged: same keys, same results.
        assert replay.replay_map().keys() == before_map.keys()
        for key, result in replay.replay_map().items():
            assert result.digest() == before_map[key].digest()
        # The superseded record is physically gone; the latest survives.
        assert [r.label for r in replay.records] == ["b only", "a latest"]
        assert path.stat().st_size < before

    def test_compact_noop_when_unique(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
            journal.append("key-b", "b", frozen_result)
            assert journal.compact() == 0
            assert journal.compactions == 0

    def test_append_continues_after_compact(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
            journal.append("key-a", "a again", frozen_result)
            journal.compact()
            journal.append("key-b", "b", frozen_result)
        replay = ResultJournal(path).read()
        assert [r.key for r in replay.records] == ["key-a", "key-b"]

    def test_compact_every_auto_compacts(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path, compact_every=2) as journal:
            journal.append("key", "1", frozen_result)
            journal.append("key", "2", frozen_result)  # triggers compaction
            assert journal.compactions == 1
            journal.append("key", "3", frozen_result)
        replay = ResultJournal(path).read()
        assert [r.label for r in replay.records] == ["2", "3"]
        assert replay.replay_map()["key"].digest() == frozen_result.digest()

    def test_compact_heals_torn_tail(self, tmp_path, frozen_result):
        path = tmp_path / "j.journal"
        with ResultJournal(path) as journal:
            journal.append("key-a", "a", frozen_result)
        with path.open("ab") as handle:
            handle.write(b"\x07garbage-partial-record")
        journal = ResultJournal(path)
        assert journal.read().torn
        assert journal.compact() == 0  # nothing superseded, tail dropped
        replay = ResultJournal(path).read()
        assert not replay.torn
        assert [r.key for r in replay.records] == ["key-a"]

    def test_bad_compact_every_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            ResultJournal(tmp_path / "j.journal", compact_every=0)
