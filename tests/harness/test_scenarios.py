"""Unit tests for the canned paper scenarios (configuration shape only —
behavioural checks live in tests/integration)."""

import pytest

from repro.harness.factories import pi2_factory
from repro.harness.scenarios import (
    MBPS,
    coexistence_mix,
    coexistence_pair,
    heavy_tcp,
    light_tcp,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)


class TestFigure11Scenarios:
    def test_light_tcp_is_5_flows(self):
        exp = light_tcp(pi2_factory())
        assert exp.flows[0].count == 5
        assert exp.capacity_bps == 10 * MBPS
        assert exp.flows[0].rtt == pytest.approx(0.100)

    def test_heavy_tcp_is_50_flows(self):
        assert heavy_tcp(pi2_factory()).flows[0].count == 50

    def test_tcp_plus_udp_has_12mbps_of_udp(self):
        exp = tcp_plus_udp(pi2_factory())
        total_udp = sum(g.rate_bps * g.count for g in exp.udp)
        assert total_udp == pytest.approx(12 * MBPS)


class TestDynamicScenarios:
    def test_varying_intensity_stages(self):
        exp = varying_intensity(pi2_factory(), stage=50.0)
        assert exp.duration == 250.0
        counts = sorted(g.count for g in exp.flows)
        assert counts == [10, 20, 20]
        # Peak concurrency is 50 flows in the middle stage.
        stage3 = [g for g in exp.flows if g.start <= 100.0 < (g.stop or 1e9)]
        assert sum(g.count for g in stage3) == 50

    def test_varying_capacity_schedule(self):
        exp = varying_capacity(pi2_factory(), stage=50.0)
        assert exp.capacity_bps == 100 * MBPS
        assert list(exp.capacity_schedule) == [(50.0, 20 * MBPS), (100.0, 100 * MBPS)]


class TestCoexistenceScenarios:
    def test_pair_has_one_flow_per_class(self):
        exp = coexistence_pair(pi2_factory())
        assert [g.count for g in exp.flows] == [1, 1]
        assert {g.cc for g in exp.flows} == {"dctcp", "cubic"}

    def test_mix_counts(self):
        exp = coexistence_mix(pi2_factory(), 3, 7)
        assert [(g.cc, g.count) for g in exp.flows] == [("dctcp", 3), ("cubic", 7)]

    def test_mix_with_zero_class(self):
        exp = coexistence_mix(pi2_factory(), 0, 10)
        assert len(exp.flows) == 1

    def test_mix_requires_some_flows(self):
        with pytest.raises(ValueError):
            coexistence_mix(pi2_factory(), 0, 0)
