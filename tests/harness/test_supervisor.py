"""Supervised execution backend: parity, retry policy, degradation.

The supervisor must be *invisible* in the results — bit-exact digest
parity with the plain executor in every mode — while being very visible
in its reporting: every retry, kill and degradation lands in the
recovery log, and terminal failures carry the full attempt history.
"""

from dataclasses import replace

import pytest

from repro.errors import ConfigError, ParallelExecutionError
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory
from repro.harness.parallel import SweepTask, execute_tasks
from repro.harness.resilience import RETRY_SEED_STRIDE
from repro.harness.supervisor import (
    SupervisorConfig,
    SupervisorReport,
    execute_supervised,
    run_supervised_tasks,
)


def _quick_experiment(**overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=2.0,
        warmup=0.5,
        aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )
    defaults.update(overrides)
    return Experiment(**defaults)


def _tasks(n=3):
    return [SweepTask(f"t{s}", _quick_experiment(seed=s)) for s in range(1, n + 1)]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0.0},
            {"task_timeout": -1.0},
            {"heartbeat_interval": 0.0},
            {"heartbeat_timeout": -2.0},
            {"max_retries": -1},
            {"max_task_failures": -1},
            {"backoff_factor": 0.5},
            {"backoff_base": -1.0},
            {"max_pool_failures": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisorConfig(**kwargs)

    def test_defaults_valid(self):
        SupervisorConfig()

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ConfigError):
            execute_supervised(_tasks(1), resume=True)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            execute_supervised(_tasks(1), on_error="ignore")


class TestParity:
    def test_supervised_matches_plain_executor_bit_exact(self):
        tasks = _tasks(3)
        plain = execute_tasks(tasks, jobs=1)
        report = SupervisorReport()
        supervised = execute_supervised(tasks, jobs=2, report=report)
        assert [r.digest() for r, _ in supervised] == [
            r.digest() for r, _ in plain
        ]
        assert report.executed == 3
        assert report.heartbeats >= 3  # each worker beats at least once
        assert not report.degraded
        assert report.actions == []

    def test_capture_failure_parity_with_plain_executor(self):
        """A poisoned cell fails with the same seeds_tried under
        supervision as under the plain executor's seed-bump retries."""
        tasks = [
            SweepTask("ok", _quick_experiment()),
            SweepTask("doomed", _quick_experiment(max_events=500, seed=9)),
        ]
        plain = execute_tasks(tasks, jobs=1, on_error="capture", max_retries=1)
        supervised = execute_supervised(
            tasks, jobs=2, on_error="capture",
            config=SupervisorConfig(max_retries=1),
        )
        (_, plain_fail) = plain[1]
        (none_result, sup_fail) = supervised[1]
        assert none_result is None
        assert sup_fail.label == plain_fail.label == "doomed"
        assert sup_fail.error_type == plain_fail.error_type == "WatchdogExceeded"
        assert sup_fail.seeds_tried == plain_fail.seeds_tried == (
            9, 9 + RETRY_SEED_STRIDE,
        )
        assert len(sup_fail.attempts) == 2
        assert all(a.kind == "exception" for a in sup_fail.attempts)
        assert sup_fail.worker is not None and sup_fail.worker.startswith("pid:")
        assert supervised[0][0].digest() == plain[0][0].digest()

    def test_raise_mode_raises_first_failure_in_task_order(self):
        tasks = [
            SweepTask("ok", _quick_experiment()),
            SweepTask("first-bad", _quick_experiment(max_events=500, seed=2)),
            SweepTask("second-bad", _quick_experiment(max_events=400, seed=3)),
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_supervised(tasks, jobs=2, on_error="raise")
        assert excinfo.value.label == "first-bad"
        assert excinfo.value.error_type == "WatchdogExceeded"

    def test_raise_mode_does_not_seed_bump(self):
        """Serial raise-mode never retries; supervised must match."""
        tasks = [SweepTask("doomed", _quick_experiment(max_events=500, seed=5))]
        with pytest.raises(ParallelExecutionError):
            execute_supervised(
                tasks, on_error="raise", config=SupervisorConfig(max_retries=3)
            )


class TestJournalIntegration:
    def test_journal_path_accepted_and_populated(self, tmp_path):
        from repro.harness.journal import ResultJournal

        journal = tmp_path / "run.journal"
        tasks = _tasks(2)
        report = SupervisorReport()
        execute_supervised(tasks, journal=journal, report=report)
        assert report.journal_appends == 2
        assert len(ResultJournal(journal).read().records) == 2

    def test_resume_replays_instead_of_executing(self, tmp_path):
        journal = tmp_path / "run.journal"
        tasks = _tasks(3)
        first = execute_supervised(tasks, journal=journal)
        report = SupervisorReport()
        resumed = execute_supervised(
            tasks, journal=journal, resume=True, report=report
        )
        assert report.replayed == 3
        assert report.executed == 0
        assert [r.digest() for r, _ in resumed] == [
            r.digest() for r, _ in first
        ]

    def test_resume_executes_only_the_remainder(self, tmp_path):
        journal = tmp_path / "run.journal"
        tasks = _tasks(4)
        execute_supervised(tasks[:2], journal=journal)
        report = SupervisorReport()
        full = execute_supervised(
            tasks, journal=journal, resume=True, report=report
        )
        assert report.replayed == 2
        assert report.executed == 2
        reference = execute_tasks(tasks, jobs=1)
        assert [r.digest() for r, _ in full] == [
            r.digest() for r, _ in reference
        ]

    def test_cache_hits_are_journaled_for_later_resume(self, tmp_path):
        from repro.harness.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks(2)
        execute_tasks(tasks, jobs=1, cache=cache)  # warm the cache
        journal = tmp_path / "run.journal"
        report = SupervisorReport()
        execute_supervised(tasks, cache=cache, journal=journal, report=report)
        assert report.cache_hits == 2
        assert report.executed == 0
        assert report.journal_appends == 2
        resumed_report = SupervisorReport()
        execute_supervised(
            tasks, journal=journal, resume=True, report=resumed_report
        )
        assert resumed_report.replayed == 2


class TestDegradation:
    def test_spawn_failures_degrade_to_serial(self, monkeypatch):
        import repro.harness.supervisor as supervisor_module

        def broken_spawn(ctx, state, config):
            raise OSError("no more processes")

        monkeypatch.setattr(supervisor_module, "_start_worker", broken_spawn)
        tasks = _tasks(2)
        report = SupervisorReport()
        config = SupervisorConfig(max_pool_failures=2, backoff_base=0.01)
        out = execute_supervised(tasks, jobs=2, config=config, report=report)
        assert report.degraded
        assert any(a.action == "degrade to serial" for a in report.actions)
        reference = execute_tasks(tasks, jobs=1)
        assert [r.digest() for r, _ in out] == [
            r.digest() for r, _ in reference
        ]

    def test_degraded_mode_still_applies_capture_retry_policy(self, monkeypatch):
        import repro.harness.supervisor as supervisor_module

        def broken_spawn(ctx, state, config):
            raise OSError("no more processes")

        monkeypatch.setattr(supervisor_module, "_start_worker", broken_spawn)
        tasks = [SweepTask("doomed", _quick_experiment(max_events=500, seed=4))]
        config = SupervisorConfig(
            max_pool_failures=1, max_retries=1, backoff_base=0.01
        )
        out = execute_supervised(
            tasks, jobs=2, on_error="capture", config=config
        )
        (result, failure) = out[0]
        assert result is None
        assert failure.seeds_tried == (4, 4 + RETRY_SEED_STRIDE)


class TestRunSupervisedTasks:
    def test_returns_pairs_and_report(self):
        pairs, report = run_supervised_tasks(_tasks(2), jobs=2)
        assert len(pairs) == 2
        assert report.executed == 2

    def test_explicit_config_wins_over_max_retries(self):
        config = SupervisorConfig(max_retries=0)
        tasks = [SweepTask("doomed", _quick_experiment(max_events=500, seed=6))]
        pairs, _report = run_supervised_tasks(
            tasks, on_error="capture", max_retries=5, supervisor=config
        )
        (_, failure) = pairs[0]
        assert failure.seeds_tried == (6,)  # config's 0 retries, not 5


class TestSweepPlumbing:
    def test_grid_supervised_matches_serial(self):
        from repro.harness.factories import coupled_factory
        from repro.harness.sweep import run_coexistence_grid

        kwargs = dict(
            links_mbps=[10], rtts_ms=[10, 20], duration=2.0, warmup=0.5, seed=3
        )
        serial = run_coexistence_grid(coupled_factory(), **kwargs)
        supervised = run_coexistence_grid(
            coupled_factory(), jobs=2, supervised=True, **kwargs
        )
        assert [c.result.digest() for c in serial] == [
            c.result.digest() for c in supervised
        ]
        assert supervised.recovery is not None
        assert supervised.recovery.executed == len(serial)
        assert serial.recovery is None

    def test_mix_sweep_supervised_matches_serial(self):
        from repro.harness.factories import coupled_factory
        from repro.harness.sweep import run_mix_sweep

        kwargs = dict(
            mixes=[(1, 1), (2, 1)], capacity_mbps=10,
            duration=2.0, warmup=0.5, seed=3,
        )
        serial = run_mix_sweep(coupled_factory(), **kwargs)
        supervised = run_mix_sweep(coupled_factory(), supervised=True, **kwargs)
        assert set(serial) == set(supervised)
        for mix in serial:
            assert serial[mix].digest() == supervised[mix].digest()
        assert supervised.recovery.executed == len(serial)

    def test_repeat_supervised_matches_serial(self):
        from repro.harness.repeat import repeat_experiment

        exp = _quick_experiment()
        metrics = {"delay": lambda r: r.sojourn_summary()["mean"]}
        serial = repeat_experiment(exp, metrics, seeds=(1, 2))
        supervised = repeat_experiment(
            exp, metrics, seeds=(1, 2), supervised=True
        )
        assert serial["delay"].samples == supervised["delay"].samples
        assert supervised.recovery.executed == 2

    def test_repeat_journal_resume(self, tmp_path):
        from repro.harness.repeat import repeat_experiment

        exp = _quick_experiment()
        metrics = {"delay": lambda r: r.sojourn_summary()["mean"]}
        journal = tmp_path / "repeat.journal"
        first = repeat_experiment(
            exp, metrics, seeds=(1, 2), journal=journal
        )
        resumed = repeat_experiment(
            exp, metrics, seeds=(1, 2), journal=journal, resume=True
        )
        assert first["delay"].samples == resumed["delay"].samples
        assert resumed.recovery.replayed == 2
        assert resumed.recovery.executed == 0

    def test_lambda_factory_rejected_with_guidance(self):
        """Supervision is process-per-task, so experiments must pickle:
        lambda factories get the same actionable error as the pool path."""
        from repro.aqm.pi import PiAqm

        exp = _quick_experiment(aqm_factory=lambda rng: PiAqm(rng=rng))
        with pytest.raises(ConfigError) as excinfo:
            execute_supervised([SweepTask("lambda-cell", exp)])
        assert "pickled" in str(excinfo.value)


class TestSharedCacheScheduling:
    """``_next_spawn_index`` must pass over cells another process holds
    in flight in the shared cache — and never starve them."""

    def _supervisor(self, tmp_path, n=2):
        from repro.harness.cache import SharedResultCache
        from repro.harness.supervisor import _Supervisor

        cache = SharedResultCache(tmp_path)
        sup = _Supervisor(
            _tasks(n), jobs=1, on_error="capture",
            config=SupervisorConfig(), cache=cache, journal=None,
            report=SupervisorReport(),
        )
        sup.prefill(resume=False)
        assert len(sup.queue) == n
        return sup, cache

    def _hold(self, cache, key):
        import fcntl
        import os

        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def test_in_flight_cell_is_passed_over(self, tmp_path):
        import os
        import time

        sup, cache = self._supervisor(tmp_path)
        fd = self._hold(cache, sup.keys[0])
        try:
            assert sup._next_spawn_index(time.monotonic()) == 1
            assert sup.report.deferred == 1
        finally:
            os.close(fd)
        assert sup._next_spawn_index(time.monotonic()) == 0

    def test_all_in_flight_falls_back_to_earliest(self, tmp_path):
        import os
        import time

        sup, cache = self._supervisor(tmp_path)
        fds = [self._hold(cache, key) for key in sup.keys]
        try:
            assert sup._next_spawn_index(time.monotonic()) == 0
        finally:
            for fd in fds:
                os.close(fd)

    def test_backoff_still_gates_eligibility(self, tmp_path):
        import time

        sup, _cache = self._supervisor(tmp_path)
        now = time.monotonic()
        sup.queue[0].not_before = now + 60.0
        assert sup._next_spawn_index(now) == 1
        sup.queue[1].not_before = now + 60.0
        assert sup._next_spawn_index(now) is None

    def test_supervised_deferral_stays_bit_exact(self, tmp_path):
        """End-to-end: a cell 'in flight' elsewhere is deferred; once
        the remote winner publishes, the deferred cell resolves (via
        the pre-spawn recheck or the worker-side single-flight wait)
        with digests identical to a plain run."""
        import os
        import threading
        import time as _time

        from repro.harness.cache import SharedResultCache

        tasks = _tasks(2)
        plain = execute_tasks(tasks, jobs=1)
        cache = SharedResultCache(tmp_path / "shared")
        key0 = cache.key_for(tasks[0].experiment)
        lock_path = cache._lock_path(key0)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        import fcntl

        fcntl.flock(fd, fcntl.LOCK_EX)

        def publish_and_release():
            _time.sleep(0.3)
            cache.put(key0, plain[0][0])  # the remote winner publishes
            os.close(fd)

        winner = threading.Thread(target=publish_and_release)
        winner.start()
        report = SupervisorReport()
        try:
            supervised = execute_supervised(
                tasks, jobs=1, cache=cache, report=report,
            )
        finally:
            winner.join()
        assert [r.digest() for r, _ in supervised] == [
            r.digest() for r, _ in plain
        ]
        assert report.deferred >= 1
        assert report.executed + report.cache_hits == 2
