"""Tests for the programmatic figure-data generators."""

import pytest

from repro.harness.figures import FIGURES, generate_figure


class TestRegistry:
    def test_expected_figures_present(self):
        for name in ("fig04", "fig05", "fig06", "fig07", "fig11", "fig12",
                     "fig13", "fig19"):
            assert name in FIGURES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_figure("fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_figure("fig05", scale=0)


class TestAnalyticFigures:
    """The cheap, deterministic generators run in milliseconds."""

    def test_fig04_rows(self):
        data = generate_figure("fig04")
        assert data.headers[0] == "p"
        assert len(data.rows) == 8
        # The tune=1 column crosses zero somewhere (the diagonal).
        fixed = [row[2] for row in data.rows]
        assert min(fixed) < 0 < max(fixed)

    def test_fig05_rows(self):
        data = generate_figure("fig05")
        assert all(len(row) == 3 for row in data.rows)
        assert data.rows[-1][0] == 1.0

    def test_fig07_rows(self):
        data = generate_figure("fig07")
        pi2 = [row[2] for row in data.rows]
        assert all(g > 0 for g in pi2)


class TestRenderingAndExport:
    def test_table_includes_note(self):
        data = generate_figure("fig05")
        assert "sqrt(2p)" in data.table()
        assert data.note in data.table()

    def test_csv_round_trip(self, tmp_path):
        import csv

        data = generate_figure("fig04")
        path = tmp_path / "fig04.csv"
        data.to_csv(path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == data.headers
        assert len(rows) == len(data.rows) + 1


class TestSimulatedFigure:
    def test_fig12_small_scale(self):
        data = generate_figure("fig12", scale=0.3)
        assert [row[0] for row in data.rows] == ["pie", "pi2"]
        # Transient peaks are present and finite.
        assert all(row[1] > 0 for row in data.rows)
