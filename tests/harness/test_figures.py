"""Tests for the programmatic figure-data generators."""

import math

import pytest

from repro.errors import ConfigError, FigureGenerationError
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory
from repro.harness.figures import (
    FIGURES,
    FigureData,
    FigureRunner,
    generate_figure,
)


class TestRegistry:
    def test_expected_figures_present(self):
        for name in ("fig04", "fig05", "fig06", "fig07", "fig11", "fig12",
                     "fig13", "fig19"):
            assert name in FIGURES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            generate_figure("fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_figure("fig05", scale=0)


class TestAnalyticFigures:
    """The cheap, deterministic generators run in milliseconds."""

    def test_fig04_rows(self):
        data = generate_figure("fig04")
        assert data.headers[0] == "p"
        assert len(data.rows) == 8
        # The tune=1 column crosses zero somewhere (the diagonal).
        fixed = [row[2] for row in data.rows]
        assert min(fixed) < 0 < max(fixed)

    def test_fig05_rows(self):
        data = generate_figure("fig05")
        assert all(len(row) == 3 for row in data.rows)
        assert data.rows[-1][0] == 1.0

    def test_fig07_rows(self):
        data = generate_figure("fig07")
        pi2 = [row[2] for row in data.rows]
        assert all(g > 0 for g in pi2)


class TestRenderingAndExport:
    def test_table_includes_note(self):
        data = generate_figure("fig05")
        assert "sqrt(2p)" in data.table()
        assert data.note in data.table()

    def test_csv_round_trip(self, tmp_path):
        import csv

        data = generate_figure("fig04")
        path = tmp_path / "fig04.csv"
        data.to_csv(path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == data.headers
        assert len(rows) == len(data.rows) + 1

    def test_csv_is_utf8_regardless_of_locale(self, tmp_path):
        """Headers carry non-ASCII (µs, ≈); the writer must pin UTF-8
        instead of inheriting a locale encoding that can't express them."""
        data = FigureData(
            "Figure µ", ["delay [µs]", "ratio ≈"], [(1.0, "≤2")],
        )
        path = tmp_path / "fig.csv"
        data.to_csv(path)
        text = path.read_bytes().decode("utf-8")
        assert "delay [µs]" in text
        assert "≤2" in text


def _doomed_experiment():
    """Deterministically exhausts its event budget mid-simulation."""
    return Experiment(
        capacity_bps=10e6, duration=2.0, warmup=0.5, seed=9,
        max_events=500, aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )


class TestFailurePropagation:
    """A broken cell must raise with figure/cell/sim-time context — the
    old ``_run_one`` dropped the failure and returned ``None``."""

    def test_failing_cell_raises_contextual_error(self, tmp_path):
        from repro.harness.journal import ResultJournal

        journal = ResultJournal(tmp_path / "fig.journal")
        runner = FigureRunner("fig12", journal=journal)
        with pytest.raises(FigureGenerationError) as excinfo:
            runner.run_cell("pie", _doomed_experiment())
        err = excinfo.value
        assert err.figure == "fig12"
        assert err.label == "pie"
        assert err.error_type == "WatchdogExceeded"
        assert err.sim_time is not None and err.sim_time > 0
        message = str(err)
        assert "fig12" in message and "'pie'" in message
        assert "t=" in message  # virtual time of death
        # The failure was not journaled: a resume re-runs the cell.
        assert runner.report.journal_appends == 0

    def test_failure_is_not_silently_seed_bumped(self, tmp_path):
        """Figures present specific seeds; the runner must not retry a
        failing cell on a bumped seed the way sweeps may."""
        from repro.harness.cache import ResultCache

        runner = FigureRunner("fig12", cache=ResultCache(tmp_path))
        with pytest.raises(FigureGenerationError) as excinfo:
            runner.run_cell("pie", _doomed_experiment())
        assert "seed" not in str(excinfo.value).lower()
        assert runner.report.executed == 0


class TestStageWindows:
    """Satellite: short stages used to push the fixed 1 s warmup offset
    past the stage end, feeding np.mean an empty slice -> NaN rows."""

    def test_fig06_small_scale_rows_are_finite(self):
        data = generate_figure("fig06", scale=0.0625)  # stage = 0.5 s
        assert len(data.rows) == 10
        for row in data.rows:
            assert math.isfinite(row[2]), row
            assert math.isfinite(row[3]), row

    def test_fig06_below_minimum_stage_rejected(self):
        with pytest.raises(ConfigError, match="minimum"):
            generate_figure("fig06", scale=0.06)

    def test_fig13_below_minimum_stage_rejected(self):
        with pytest.raises(ConfigError, match="scale >="):
            generate_figure("fig13", scale=0.04)


class TestSimulatedFigure:
    def test_fig12_small_scale(self):
        data = generate_figure("fig12", scale=0.3)
        assert [row[0] for row in data.rows] == ["pie", "pi2"]
        # Transient peaks are present and finite.
        assert all(row[1] > 0 for row in data.rows)


class TestFigureJournalResume:
    """The tentpole contract at the figure surface: journal, resume,
    compaction — all bit-exact against a plain run."""

    def test_journaled_resume_is_bit_exact(self, tmp_path):
        plain = generate_figure("fig12", scale=0.12)
        first = generate_figure("fig12", scale=0.12, journal=tmp_path)
        assert first.rows == plain.rows
        assert first.report.journal_appends == 2
        assert first.report.executed == 2
        assert (tmp_path / "fig12.journal").exists()

        resumed = generate_figure(
            "fig12", scale=0.12, journal=tmp_path, resume=True
        )
        assert resumed.rows == plain.rows
        assert resumed.report.replayed == 2
        assert resumed.report.executed == 0
        assert resumed.report.journal_appends == 0

    def test_compacted_journal_resumes_identically(self, tmp_path):
        """Re-recording a figure piles superseded records into its
        journal; compaction must drop them without changing what a
        resume replays."""
        from repro.harness.journal import ResultJournal

        plain = generate_figure("fig12", scale=0.12)
        generate_figure("fig12", scale=0.12, journal=tmp_path)
        generate_figure("fig12", scale=0.12, journal=tmp_path)  # duplicates
        journal_path = tmp_path / "fig12.journal"
        assert len(ResultJournal(journal_path).read().records) == 4

        dropped = ResultJournal(journal_path).compact()
        assert dropped == 2
        resumed = generate_figure(
            "fig12", scale=0.12, journal=tmp_path, resume=True
        )
        assert resumed.rows == plain.rows
        assert resumed.report.replayed == 2

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ConfigError, match="journal"):
            generate_figure("fig12", scale=0.12, resume=True)

    def test_report_attached_even_for_analytic_figures(self):
        data = generate_figure("fig05")
        assert data.report is not None
        assert data.report.executed == 0
        assert "executed=0" in data.report.summary()
