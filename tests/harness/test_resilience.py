"""Tests for the resilient experiment runner: per-cell error capture,
seed-bumped retries, failure reports, and the new Experiment field
validation."""

import random

import pytest

from repro.aqm.pi import PiAqm
from repro.errors import ConfigError, ControllerDivergence
from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.factories import pi2_factory
from repro.harness.repeat import repeat_experiment
from repro.harness.resilience import (
    RETRY_SEED_STRIDE,
    RunFailure,
    format_failure_report,
    run_with_retries,
)
from repro.harness.sweep import run_coexistence_grid, run_mix_sweep
from repro.net.faults import LinkFlapFault


def _quick_experiment(aqm_factory=None, **overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=3.0,
        warmup=1.0,
        aqm_factory=aqm_factory or pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )
    defaults.update(overrides)
    return Experiment(**defaults)


def _divergent_factory(fail_calls):
    """An AQM factory that sabotages its first ``fail_calls`` instances
    with a NaN-emitting controller update."""
    calls = {"n": 0}

    def make(rng: random.Random):
        calls["n"] += 1
        aqm = PiAqm(rng=rng)
        if calls["n"] <= fail_calls:
            original = aqm.controller.update

            def poisoned(delay, gain_scale=1.0):
                return original(float("nan"))

            aqm.controller.update = poisoned
        return aqm

    return make


class TestRunWithRetries:
    def test_success_returns_result(self):
        result, failure = run_with_retries(_quick_experiment(), label="ok")
        assert failure is None
        assert result is not None
        assert result.queue_stats.arrived > 0

    def test_retry_on_bumped_seed_recovers(self):
        """First attempt diverges; the seed-bumped retry gets a clean AQM
        and must succeed."""
        exp = _quick_experiment(aqm_factory=_divergent_factory(1), seed=1)
        result, failure = run_with_retries(exp, label="flaky", max_retries=1)
        assert failure is None
        assert result is not None

    def test_exhausted_retries_return_structured_failure(self):
        exp = _quick_experiment(aqm_factory=_divergent_factory(10), seed=1)
        result, failure = run_with_retries(exp, label="doomed", max_retries=2)
        assert result is None
        assert isinstance(failure, RunFailure)
        assert failure.label == "doomed"
        assert failure.error_type == "ControllerDivergence"
        assert failure.sim_time is not None
        assert failure.seeds_tried == (
            1,
            1 + RETRY_SEED_STRIDE,
            1 + 2 * RETRY_SEED_STRIDE,
        )
        assert "ControllerDivergence" in str(failure)

    def test_zero_retries_fail_fast(self):
        exp = _quick_experiment(aqm_factory=_divergent_factory(10), seed=5)
        result, failure = run_with_retries(exp, label="x", max_retries=0)
        assert result is None
        assert failure.seeds_tried == (5,)

    def test_config_errors_are_not_retried(self):
        """A ConfigError would fail identically on every seed; it must
        propagate instead of burning retries."""
        with pytest.raises(ConfigError):
            run_with_retries(
                _quick_experiment(sample_period=-1.0), label="bad config"
            )


class TestGridCapture:
    def test_grid_with_forced_failure_completes_remaining_cells(self):
        """The acceptance-criteria scenario: one cell's AQM diverges on
        every attempt; the sweep must finish the other cells and report
        the failure with sim-time context."""
        # 2 attempts (1 retry) for the first cell, then clean AQMs.
        outcome = run_coexistence_grid(
            _divergent_factory(2),
            links_mbps=[10],
            rtts_ms=[10, 20, 40],
            duration=3.0,
            warmup=1.0,
            on_error="capture",
            max_retries=1,
        )
        assert len(outcome) == 2  # cells rtt=20, rtt=40 survived
        assert not outcome.complete
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.error_type == "ControllerDivergence"
        assert failure.sim_time is not None
        report = outcome.failure_report()
        assert "rtt=10ms" in report
        assert "ControllerDivergence" in report

    def test_grid_raise_mode_propagates(self):
        with pytest.raises(ControllerDivergence):
            run_coexistence_grid(
                _divergent_factory(99),
                links_mbps=[10],
                rtts_ms=[10],
                duration=3.0,
                warmup=1.0,
                on_error="raise",
            )

    def test_grid_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_coexistence_grid(pi2_factory(), on_error="ignore")

    def test_clean_grid_is_complete(self):
        outcome = run_coexistence_grid(
            pi2_factory(),
            links_mbps=[10],
            rtts_ms=[10],
            duration=3.0,
            warmup=1.0,
            on_error="capture",
        )
        assert outcome.complete
        assert outcome.failures == []
        assert outcome.failure_report() == "all runs completed"

    def test_mix_sweep_capture(self):
        results = run_mix_sweep(
            _divergent_factory(2),
            mixes=[(1, 1), (2, 1)],
            capacity_mbps=10,
            duration=3.0,
            warmup=1.0,
            on_error="capture",
            max_retries=1,
        )
        assert len(results) == 1
        assert len(results.failures) == 1


class TestRepeatCapture:
    def test_dead_seeds_skipped_estimates_from_survivors(self):
        exp = _quick_experiment(aqm_factory=_divergent_factory(2))
        outcome = repeat_experiment(
            exp,
            {"delay": lambda r: r.sojourn_summary()["mean"]},
            seeds=(1, 2, 3),
            on_error="capture",
            max_retries=0,
        )
        # Seeds 1 and 2 got poisoned AQMs; only seed 3 contributes.
        assert len(outcome.failures) == 2
        assert not outcome.complete
        assert len(outcome["delay"].samples) == 1

    def test_raise_mode_is_default(self):
        exp = _quick_experiment(aqm_factory=_divergent_factory(99))
        with pytest.raises(ControllerDivergence):
            repeat_experiment(
                exp, {"d": lambda r: 0.0}, seeds=(1, 2)
            )


class TestFailureReport:
    def test_empty_report(self):
        assert format_failure_report([]) == "all runs completed"

    def test_report_lists_each_failure(self):
        failures = [
            RunFailure(
                label="cell A",
                seeds_tried=(1, 100004),
                error_type="ControllerDivergence",
                error="p went NaN",
                sim_time=1.25,
                component="PIController",
            ),
            RunFailure(
                label="cell B",
                seeds_tried=(2,),
                error_type="WatchdogExceeded",
                error="budget exhausted",
            ),
        ]
        report = format_failure_report(failures)
        assert "2 run(s) failed" in report
        assert "cell A" in report and "cell B" in report
        assert "t=1.25" in report


class TestExperimentValidation:
    def test_sample_period_must_be_positive(self):
        with pytest.raises(ConfigError):
            _quick_experiment(sample_period=0.0)

    def test_buffer_packets_must_be_positive(self):
        with pytest.raises(ConfigError):
            _quick_experiment(buffer_packets=0)

    def test_capacity_schedule_must_be_sorted(self):
        with pytest.raises(ConfigError):
            _quick_experiment(capacity_schedule=[(2.0, 5e6), (1.0, 8e6)])

    def test_capacity_schedule_time_within_duration(self):
        with pytest.raises(ConfigError):
            _quick_experiment(capacity_schedule=[(10.0, 5e6)])  # duration=3

    def test_capacity_schedule_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            _quick_experiment(capacity_schedule=[(-1.0, 5e6)])

    def test_capacity_schedule_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            _quick_experiment(capacity_schedule=[(1.0, 0.0)])

    def test_capacity_schedule_pair_shape(self):
        with pytest.raises(ConfigError):
            _quick_experiment(capacity_schedule=[(1.0,)])

    def test_faults_must_be_fault_instances(self):
        with pytest.raises(ConfigError):
            _quick_experiment(faults=["flap:1:2"])

    def test_fault_must_start_within_duration(self):
        with pytest.raises(ConfigError):
            _quick_experiment(faults=[LinkFlapFault(5.0, 1.0)])  # duration=3

    def test_watchdog_budgets_must_be_positive(self):
        with pytest.raises(ConfigError):
            _quick_experiment(max_events=0)
        with pytest.raises(ConfigError):
            _quick_experiment(max_wall_seconds=-1.0)

    def test_config_error_is_value_error(self):
        """Backwards compatibility: older callers catch ValueError."""
        with pytest.raises(ValueError):
            _quick_experiment(sample_period=-1.0)

    def test_valid_experiment_accepted(self):
        exp = _quick_experiment(
            capacity_schedule=[(1.0, 5e6), (2.0, 8e6)],
            faults=[LinkFlapFault(1.5, 0.5)],
            validate=True,
            max_events=10_000_000,
        )
        assert exp.validate


class TestExperimentWatchdog:
    def test_max_events_aborts_runaway_run(self):
        from repro.errors import WatchdogExceeded

        exp = _quick_experiment(max_events=500)
        with pytest.raises(WatchdogExceeded):
            run_experiment(exp)

    def test_watchdog_failure_captured_by_retries(self):
        exp = _quick_experiment(max_events=500)
        result, failure = run_with_retries(exp, label="tiny budget", max_retries=0)
        assert result is None
        assert failure.error_type == "WatchdogExceeded"
