"""Unit tests for grid sweeps and table formatting."""


from repro.harness.factories import coupled_factory
from repro.harness.sweep import (
    PAPER_FLOW_MIXES,
    PAPER_LINK_MBPS,
    PAPER_RTTS_MS,
    format_table,
    run_coexistence_grid,
    run_mix_sweep,
)


class TestPaperGrids:
    def test_grid_dimensions(self):
        assert PAPER_LINK_MBPS == (4, 12, 40, 120, 200)
        assert PAPER_RTTS_MS == (5, 10, 20, 50, 100)

    def test_mixes_include_extremes(self):
        assert (0, 10) in PAPER_FLOW_MIXES
        assert (10, 0) in PAPER_FLOW_MIXES
        assert (5, 5) in PAPER_FLOW_MIXES


class TestRunGrid:
    def test_tiny_grid_runs(self):
        cells = run_coexistence_grid(
            coupled_factory(),
            links_mbps=[10],
            rtts_ms=[10, 20],
            duration=6.0,
            warmup=3.0,
        )
        assert len(cells) == 2
        for cell in cells:
            assert cell.result.total_goodput_bps() > 1e6

    def test_duration_override(self):
        seen = []

        def duration_for(link, rtt):
            seen.append((link, rtt))
            return 4.0

        run_coexistence_grid(
            coupled_factory(), links_mbps=[10], rtts_ms=[10],
            duration_for=duration_for, warmup=2.0,
        )
        assert seen == [(10, 10)]

    def test_mix_sweep_runs(self):
        results = run_mix_sweep(
            coupled_factory(), mixes=[(1, 1)], capacity_mbps=10,
            duration=6.0, warmup=3.0,
        )
        assert (1, 1) in results


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(
            ["a", "bb"], [[1, 2.5], [10, 0.001]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[123.456], [0.1234], [1.5]])
        assert "123" in out
        assert "0.1234" in out
        assert "1.50" in out
