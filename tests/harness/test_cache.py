"""On-disk result cache: keying, hit/miss/invalidation, and corruption
handling.

The safety property is that a cache hit is indistinguishable from a
re-simulation (``digest()`` equality) and that *any* config change —
seed, duration, one AQM parameter — changes the key and forces a miss.
Anything whose configuration cannot be described (lambda factories) is
uncacheable by design, never silently mis-keyed.
"""

import pickle
from dataclasses import replace

from repro.aqm.pi import PiAqm
from repro.harness.cache import (
    CacheStats,
    ResultCache,
    code_fingerprint,
    describe_aqm_factory,
    experiment_cache_key,
)
from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.factories import coupled_factory, pi2_factory
from repro.harness.frozen import FrozenResult, freeze_result
from repro.harness.sweep import run_coexistence_grid


def _quick_experiment(**overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=3.0,
        warmup=1.0,
        aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )
    defaults.update(overrides)
    return Experiment(**defaults)


def _module_level_factory(rng):
    return PiAqm(rng=rng)


class TestFactoryDescription:
    def test_named_factory_describes_itself(self):
        description = describe_aqm_factory(pi2_factory())
        assert "Pi2Aqm" in description or "pi2" in description.lower()

    def test_kwargs_change_the_description(self):
        assert describe_aqm_factory(pi2_factory()) != describe_aqm_factory(
            pi2_factory(target_delay=0.05)
        )

    def test_plain_function_uses_qualname(self):
        description = describe_aqm_factory(_module_level_factory)
        assert description.endswith("_module_level_factory")

    def test_lambda_is_undescribable(self):
        assert describe_aqm_factory(lambda rng: PiAqm(rng=rng)) is None

    def test_closure_is_undescribable(self):
        hidden = 0.05

        def make(rng):
            return PiAqm(rng=rng, target_delay=hidden)

        assert describe_aqm_factory(make) is None


class TestExperimentKey:
    def test_same_config_same_key(self):
        assert experiment_cache_key(_quick_experiment()) == experiment_cache_key(
            _quick_experiment()
        )

    def test_every_field_change_changes_key(self):
        base = _quick_experiment()
        key = experiment_cache_key(base)
        variants = [
            replace(base, seed=99),
            replace(base, duration=4.0),
            replace(base, warmup=0.5),
            replace(base, capacity_bps=12e6),
            replace(base, sample_period=0.25),
            _quick_experiment(aqm_factory=pi2_factory(target_delay=0.05)),
            _quick_experiment(flows=[FlowGroup(cc="reno", count=3, rtt=0.02)]),
        ]
        keys = [experiment_cache_key(v) for v in variants]
        assert key not in keys
        assert len(set(keys)) == len(keys)  # all variants distinct too

    def test_uncacheable_factory_gives_none(self):
        exp = _quick_experiment(aqm_factory=lambda rng: PiAqm(rng=rng))
        assert experiment_cache_key(exp) is None

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # valid hex


class TestResultCacheStore:
    def test_put_get_round_trip_is_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = _quick_experiment()
        frozen = freeze_result(run_experiment(exp))
        key = cache.key_for(exp)
        cache.put(key, frozen)
        loaded = cache.get(key)
        assert isinstance(loaded, FrozenResult)
        assert loaded.digest() == frozen.digest()
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_absent_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats == CacheStats(hits=0, misses=1, stores=0)

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert not path.exists()

    def test_wrong_type_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a FrozenResult"}))
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = _quick_experiment()
        frozen = freeze_result(run_experiment(exp))
        cache.put(cache.key_for(exp), frozen)
        cache.put(cache.key_for(replace(exp, seed=2)), frozen)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSweepIntegration:
    def test_warm_rerun_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(
            links_mbps=[10], rtts_ms=[10, 20], duration=3.0, warmup=1.0, seed=3
        )
        cold = run_coexistence_grid(coupled_factory(), cache=cache, **kwargs)
        assert cache.stats.misses == 2
        assert cache.stats.stores == 2
        warm = run_coexistence_grid(coupled_factory(), cache=cache, **kwargs)
        assert cache.stats.hits == 2
        assert cache.stats.stores == 2  # nothing re-stored
        assert [c.result.digest() for c in cold] == [
            c.result.digest() for c in warm
        ]

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(links_mbps=[10], rtts_ms=[10], duration=3.0, warmup=1.0)
        run_coexistence_grid(coupled_factory(), cache=cache, seed=3, **kwargs)
        run_coexistence_grid(coupled_factory(), cache=cache, seed=4, **kwargs)
        # The seed change must re-simulate, not hit.
        assert cache.stats.hits == 0
        assert cache.stats.stores == 2

    def test_uncacheable_factory_still_runs(self, tmp_path):
        cache = ResultCache(tmp_path)
        outcome = run_coexistence_grid(
            lambda rng: PiAqm(rng=rng),
            links_mbps=[10], rtts_ms=[10], duration=3.0, warmup=1.0,
            cache=cache,
        )
        assert len(outcome) == 1
        assert outcome[0].result.total_goodput_bps() > 0
        # No key, so nothing was stored or looked up.
        assert cache.stats == CacheStats(hits=0, misses=0, stores=0)
        assert len(cache) == 0


class TestCorruptionHardening:
    def test_corrupt_entry_is_counted_and_logged(self, tmp_path, caplog):
        import logging

        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert any("corrupt cache entry" in r.message for r in caplog.records)
        assert not path.exists()

    def test_corrupt_entry_is_recomputed_transparently(self, tmp_path):
        """A sweep over a poisoned cache must re-simulate and restore the
        entry, bit-exact with the clean run."""
        cache = ResultCache(tmp_path)
        kwargs = dict(links_mbps=[10], rtts_ms=[10], duration=3.0,
                      warmup=1.0, seed=3)
        clean = run_coexistence_grid(coupled_factory(), cache=cache, **kwargs)
        [entry] = list(cache.root.glob("*/*.pkl"))
        entry.write_bytes(b"\x00garbage")
        again = run_coexistence_grid(coupled_factory(), cache=cache, **kwargs)
        assert cache.stats.corrupt == 1
        assert cache.stats.stores == 2  # re-stored after recompute
        assert [c.result.digest() for c in clean] == [
            c.result.digest() for c in again
        ]

    def test_verify_reports_and_prunes(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = _quick_experiment()
        frozen = freeze_result(run_experiment(exp))
        cache.put(cache.key_for(exp), frozen)
        bad = cache._path("ef" + "0" * 62)
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"junk")
        wrong_type = cache._path("aa" + "1" * 62)
        wrong_type.parent.mkdir(parents=True, exist_ok=True)
        wrong_type.write_bytes(pickle.dumps(["not", "frozen"]))

        ok, corrupt = cache.verify(prune=False)
        assert ok == 1
        assert len(corrupt) == 2
        assert bad.exists() and wrong_type.exists()  # prune=False: read-only

        ok, corrupt = cache.verify(prune=True)
        assert ok == 1
        assert len(corrupt) == 2
        assert not bad.exists() and not wrong_type.exists()
        assert cache.stats.corrupt == 2
        assert len(cache) == 1

    def test_verify_empty_cache(self, tmp_path):
        ok, corrupt = ResultCache(tmp_path / "nothing-here").verify()
        assert (ok, corrupt) == (0, [])

    def test_cli_cache_verify(self, tmp_path):
        from io import StringIO

        from repro.cli import main

        cache = ResultCache(tmp_path)
        exp = _quick_experiment()
        cache.put(cache.key_for(exp), freeze_result(run_experiment(exp)))
        out = StringIO()
        assert main(["cache", "--cache-dir", str(tmp_path), "--verify"],
                    out=out) == 0
        assert "1 entry OK" in out.getvalue()
        bad = cache._path("ab" + "0" * 62)
        bad.parent.mkdir(parents=True)
        bad.write_bytes(b"junk")
        out = StringIO()
        assert main(["cache", "--cache-dir", str(tmp_path), "--verify"],
                    out=out) == 1
        assert "pruned 1 corrupt entry" in out.getvalue()
        assert not bad.exists()


def _shared_flight_worker(payload):
    """Module-level (picklable) worker for the fork-pool single-flight test."""
    import time as _time

    from repro.harness.cache import SharedResultCache

    root, key = payload
    cache = SharedResultCache(root)

    def compute():
        _time.sleep(0.2)  # widen the race window: everyone piles on the lock
        return freeze_result(run_experiment(_quick_experiment(duration=1.5)))

    result = cache.fetch_or_compute(key, compute)
    return result.digest_hex()


class TestSharedSingleFlight:
    """Cross-process single-flight: compute once, share, never deadlock."""

    def _cache(self, tmp_path):
        from repro.harness.cache import SharedResultCache

        cache = SharedResultCache(tmp_path)
        cache.LOCK_POLL_INTERVAL = 0.01
        cache.LOCK_TIMEOUT = 10.0
        return cache

    def _frozen(self):
        return freeze_result(run_experiment(_quick_experiment(duration=1.5)))

    def test_computes_once_then_serves_from_disk(self, tmp_path):
        cache = self._cache(tmp_path)
        key = "ab" + "0" * 62
        frozen = self._frozen()
        assert cache.fetch_or_compute(key, lambda: frozen) is frozen
        assert cache.stats.computes == 1

        def boom():
            raise AssertionError("cached entry must not be recomputed")

        again = cache.fetch_or_compute(key, boom)
        assert again.digest() == frozen.digest()
        assert cache.stats.computes == 1
        assert cache.event_counts() == {"compute": 1, "wait": 0}

    def test_failed_compute_is_not_cached(self, tmp_path):
        cache = self._cache(tmp_path)
        key = "cd" + "0" * 62
        assert cache.fetch_or_compute(key, lambda: None) is None
        assert cache.get(key) is None  # failure never published
        frozen = self._frozen()
        assert cache.fetch_or_compute(key, lambda: frozen) is frozen
        assert cache.stats.computes == 2

    def test_waiter_shares_the_winners_entry(self, tmp_path):
        """While another holder owns the key's lock, fetch_or_compute
        must wait for the published entry instead of simulating."""
        import fcntl
        import os
        import threading

        cache = self._cache(tmp_path)
        key = "ef" + "0" * 62
        frozen = self._frozen()
        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)  # pose as the winning process
        got = []

        def boom():
            raise AssertionError("waiter must not compute a published entry")

        waiter = threading.Thread(
            target=lambda: got.append(cache.fetch_or_compute(key, boom))
        )
        waiter.start()
        try:
            import time

            time.sleep(0.05)
            cache.put(key, frozen)  # the "winner" publishes
            waiter.join(timeout=5.0)
        finally:
            os.close(fd)
        assert not waiter.is_alive()
        assert got and got[0].digest() == frozen.digest()
        assert cache.stats.waits == 1
        assert cache.stats.computes == 0

    def test_waiter_inherits_lock_from_dead_winner(self, tmp_path):
        """A winner that dies without publishing must not strand the
        waiters: the flock dies with its fd and the next poll wins it."""
        import fcntl
        import os
        import threading
        import time

        cache = self._cache(tmp_path)
        key = "12" + "0" * 62
        frozen = self._frozen()
        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)
        got = []
        waiter = threading.Thread(
            target=lambda: got.append(cache.fetch_or_compute(key, lambda: frozen))
        )
        waiter.start()
        time.sleep(0.05)
        os.close(fd)  # winner crashes: lock released, nothing published
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert got and got[0] is frozen
        assert cache.stats.computes == 1
        assert cache.stats.waits == 1

    def test_event_log_aggregates_and_clears(self, tmp_path):
        cache = self._cache(tmp_path)
        frozen = self._frozen()
        cache.fetch_or_compute("a1" + "0" * 62, lambda: frozen)
        cache.fetch_or_compute("b2" + "0" * 62, lambda: frozen)
        assert cache.event_counts() == {"compute": 2, "wait": 0}
        cache.clear_events()
        assert cache.event_counts() == {"compute": 0, "wait": 0}

    def test_four_processes_compute_once(self, tmp_path):
        """The real thing: a fork pool racing on one key computes it
        exactly once fleet-wide and every process gets the same bits."""
        import multiprocessing

        from repro.harness.cache import SharedResultCache

        key = "fe" + "0" * 62
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=4) as pool:
            digests = pool.map(
                _shared_flight_worker, [(str(tmp_path), key)] * 4
            )
        assert len(set(digests)) == 1
        counts = SharedResultCache(tmp_path).event_counts()
        assert counts["compute"] == 1
        assert counts["wait"] == 3


class TestInFlightProbe:
    """``in_flight`` is the non-blocking peek behind shared-cache-aware
    scheduling: it must see a held per-key lock without ever waiting."""

    def _cache(self, tmp_path):
        from repro.harness.cache import SharedResultCache

        return SharedResultCache(tmp_path)

    def test_unknown_key_is_not_in_flight(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.in_flight("aa" + "0" * 62) is False

    def test_held_lock_reads_as_in_flight_until_released(self, tmp_path):
        import fcntl
        import os

        cache = self._cache(tmp_path)
        key = "bb" + "0" * 62
        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        try:
            assert cache.in_flight(key) is False  # file exists, unlocked
            fcntl.flock(fd, fcntl.LOCK_EX)
            assert cache.in_flight(key) is True
            fcntl.flock(fd, fcntl.LOCK_UN)
            assert cache.in_flight(key) is False
        finally:
            os.close(fd)

    def test_probe_does_not_steal_the_lock(self, tmp_path):
        """The probe's transient flock must not leave the key locked —
        a later holder must still be able to win it immediately."""
        import fcntl
        import os

        cache = self._cache(tmp_path)
        key = "cc" + "0" * 62
        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        try:
            assert cache.in_flight(key) is False
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)  # must not raise
        finally:
            os.close(fd)
