"""Unit tests for experiment configuration and the runner."""

import pytest

from repro.harness.experiment import Experiment, FlowGroup, UdpGroup, run_experiment
from repro.harness.factories import pi2_factory, taildrop_factory


def quick_experiment(**overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=8.0,
        warmup=2.0,
        aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
        sample_period=0.5,
    )
    defaults.update(overrides)
    return Experiment(**defaults)


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            quick_experiment(capacity_bps=0)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            quick_experiment(duration=0)

    def test_warmup_must_precede_duration(self):
        with pytest.raises(ValueError):
            quick_experiment(warmup=10.0, duration=8.0)

    def test_flow_group_count_positive(self):
        with pytest.raises(ValueError):
            FlowGroup(cc="reno", count=0, rtt=0.02)


class TestRun:
    def test_runs_and_reports_goodput(self):
        result = run_experiment(quick_experiment())
        rates = result.goodputs("reno")
        assert len(rates) == 2
        assert sum(rates) > 1e6  # the 10 Mb/s link is mostly used

    def test_labels(self):
        result = run_experiment(quick_experiment())
        assert result.class_labels() == ["reno"]

    def test_udp_groups_run(self):
        result = run_experiment(
            quick_experiment(udp=[UdpGroup(rate_bps=1e6, count=2)])
        )
        assert "udp" in result.class_labels()

    def test_capacity_schedule_applied(self):
        result = run_experiment(
            quick_experiment(capacity_schedule=[(4.0, 5e6)])
        )
        assert result.bed.link.capacity_bps == 5e6

    def test_reproducible_with_same_seed(self):
        a = run_experiment(quick_experiment(seed=9))
        b = run_experiment(quick_experiment(seed=9))
        assert a.goodputs("reno") == b.goodputs("reno")
        assert a.queue_delay.values.tolist() == b.queue_delay.values.tolist()

    def test_different_seeds_differ(self):
        a = run_experiment(quick_experiment(seed=1))
        b = run_experiment(quick_experiment(seed=2))
        assert a.goodputs("reno") != b.goodputs("reno")

    def test_taildrop_factory_runs(self):
        result = run_experiment(quick_experiment(aqm_factory=taildrop_factory()))
        assert result.aqm is None
        assert sum(result.goodputs("reno")) > 1e6

    def test_summaries_available(self):
        result = run_experiment(quick_experiment())
        s = result.sojourn_summary()
        assert set(s) == {"mean", "p1", "p25", "p50", "p99"}
        u = result.utilization_summary()
        assert "mean" in u
        assert 0 <= result.mean_utilization() <= 1.01
