"""Parallel sweep execution: serial/parallel equivalence, failure parity,
and the picklability guard.

The contract under test is the strongest one the module makes: for a
fixed seed, results are **bit-exact identical** (``digest()`` equality)
whether cells run serially, in a process pool, or via
:func:`execute_tasks` directly — and failures come back in the same
slots either way.
"""

from dataclasses import replace

import pytest

from repro.aqm.pi import PiAqm
from repro.errors import ConfigError, ParallelExecutionError
from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import coupled_factory, pi2_factory
from repro.harness.parallel import SweepTask, execute_tasks, resolve_jobs
from repro.harness.repeat import repeat_experiment
from repro.harness.sweep import run_coexistence_grid, run_mix_sweep


class ExplodingFactory:
    """Picklable AQM factory whose instances always diverge.

    Module-level class (pickles by reference under the fork start
    method); the sabotage happens worker-side at instantiation time.
    """

    def __call__(self, rng):
        aqm = PiAqm(rng=rng)
        original = aqm.controller.update

        def poisoned(delay, gain_scale=1.0):
            return original(float("nan"))

        aqm.controller.update = poisoned
        return aqm


def _quick_experiment(**overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=3.0,
        warmup=1.0,
        aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=2, rtt=0.02)],
    )
    defaults.update(overrides)
    return Experiment(**defaults)


class TestResolveJobs:
    def test_auto_is_cpu_count(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-2)


class TestGridEquivalence:
    def test_parallel_grid_bit_matches_serial(self):
        kwargs = dict(
            links_mbps=[10], rtts_ms=[10, 20], duration=3.0, warmup=1.0, seed=3
        )
        serial = run_coexistence_grid(coupled_factory(), **kwargs)
        parallel = run_coexistence_grid(coupled_factory(), jobs=2, **kwargs)
        assert [(c.link_mbps, c.rtt_ms) for c in serial] == [
            (c.link_mbps, c.rtt_ms) for c in parallel
        ]
        assert [c.result.digest() for c in serial] == [
            c.result.digest() for c in parallel
        ]

    def test_jobs_one_stays_in_process_and_matches(self):
        kwargs = dict(
            links_mbps=[10], rtts_ms=[10], duration=3.0, warmup=1.0, seed=3
        )
        serial = run_coexistence_grid(coupled_factory(), **kwargs)
        one_job = run_coexistence_grid(coupled_factory(), jobs=1, **kwargs)
        assert [c.result.digest() for c in serial] == [
            c.result.digest() for c in one_job
        ]

    def test_mix_sweep_parallel_matches_serial(self):
        kwargs = dict(
            mixes=[(1, 1), (2, 1)], capacity_mbps=10,
            duration=3.0, warmup=1.0, seed=3,
        )
        serial = run_mix_sweep(coupled_factory(), **kwargs)
        parallel = run_mix_sweep(coupled_factory(), jobs=2, **kwargs)
        assert set(serial) == set(parallel)
        for mix in serial:
            assert serial[mix].digest() == parallel[mix].digest()


class TestRepeatEquivalence:
    def test_parallel_repeat_matches_serial_samples(self):
        exp = _quick_experiment()
        metrics = {
            "delay": lambda r: r.sojourn_summary()["mean"],
            "goodput": lambda r: r.total_goodput_bps(),
        }
        serial = repeat_experiment(exp, metrics, seeds=(1, 2, 3))
        parallel = repeat_experiment(exp, metrics, seeds=(1, 2, 3), jobs=2)
        for name in metrics:
            assert serial[name].samples == parallel[name].samples


class TestFailureParity:
    def test_capture_failures_land_in_same_slots(self):
        """Mixed good/bad tasks: an un-runnable cell (event budget of 500
        exhausts deterministically) must produce the same failure record
        in the same slot at jobs=1 and jobs=2, with identical digests for
        the surviving cells."""
        good = _quick_experiment()
        bad = _quick_experiment(max_events=500)
        tasks = [
            SweepTask("ok-a", good),
            SweepTask("doomed", bad),
            SweepTask("ok-b", replace(good, seed=2)),
        ]
        serial = execute_tasks(tasks, jobs=1, on_error="capture", max_retries=0)
        parallel = execute_tasks(tasks, jobs=2, on_error="capture", max_retries=0)
        for (r_s, f_s), (r_p, f_p) in zip(serial, parallel):
            assert (r_s is None) == (r_p is None)
            if r_s is not None:
                assert f_s is None and f_p is None
                assert r_s.digest() == r_p.digest()
            else:
                assert f_s.label == f_p.label == "doomed"
                assert f_s.error_type == f_p.error_type == "WatchdogExceeded"
                assert f_s.seeds_tried == f_p.seeds_tried

    def test_raise_mode_raises_first_failure_in_task_order(self):
        tasks = [
            SweepTask("ok", _quick_experiment()),
            SweepTask("first-bad", _quick_experiment(max_events=500)),
            SweepTask("second-bad", _quick_experiment(max_events=400, seed=2)),
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_tasks(tasks, jobs=2, on_error="raise", max_retries=0)
        assert excinfo.value.label == "first-bad"
        assert excinfo.value.error_type == "WatchdogExceeded"

    def test_grid_capture_parity_with_exploding_factory(self):
        kwargs = dict(
            links_mbps=[10], rtts_ms=[10, 20], duration=3.0, warmup=1.0,
            on_error="capture", max_retries=0,
        )
        serial = run_coexistence_grid(ExplodingFactory(), **kwargs)
        parallel = run_coexistence_grid(ExplodingFactory(), jobs=2, **kwargs)
        assert len(serial) == len(parallel) == 0
        assert [f.label for f in serial.failures] == [
            f.label for f in parallel.failures
        ]
        assert {f.error_type for f in parallel.failures} == {
            "ControllerDivergence"
        }
        assert not parallel.complete

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            execute_tasks([SweepTask("x", _quick_experiment())], on_error="ignore")


class TestPicklability:
    def test_lambda_factory_rejected_with_guidance(self):
        exp = _quick_experiment(aqm_factory=lambda rng: PiAqm(rng=rng))
        with pytest.raises(ConfigError) as excinfo:
            execute_tasks(
                [SweepTask("a", exp), SweepTask("b", replace(exp, seed=2))],
                jobs=2,
            )
        message = str(excinfo.value)
        assert "pickled" in message
        assert "jobs=1" in message

    def test_lambda_factory_fine_in_process(self):
        exp = _quick_experiment(aqm_factory=lambda rng: PiAqm(rng=rng))
        [(result, failure)] = execute_tasks([SweepTask("a", exp)], jobs=1)
        assert failure is None
        assert result.total_goodput_bps() > 0


class TestFrozenResults:
    def test_parallel_results_keep_metric_api(self):
        outcome = run_coexistence_grid(
            coupled_factory(), links_mbps=[10], rtts_ms=[10],
            duration=3.0, warmup=1.0, jobs=2,
        )
        [cell] = outcome
        summary = cell.result.sojourn_summary()
        assert summary["mean"] > 0
        assert cell.result.total_goodput_bps() > 1e6
        assert 0.0 <= cell.result.mean_utilization() <= 1.5
        assert cell.result.events_processed > 0


class TestSharedCacheDeferral:
    """Shared-cache-aware submission: cells another process holds in
    flight go to the back of the queue — order only, never results."""

    def _held(self, cache, key):
        import fcntl
        import os

        lock_path = cache._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT)
        fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def test_in_flight_cells_submit_last(self, tmp_path):
        import os

        from repro.harness.cache import SharedResultCache
        from repro.harness.parallel import _defer_in_flight

        cache = SharedResultCache(tmp_path)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        fd = self._held(cache, keys[0])
        events = []
        try:
            order = _defer_in_flight(
                [0, 1, 2], keys, cache,
                lambda cat, name, t, data: events.append((name, data)),
            )
        finally:
            os.close(fd)
        assert order == [1, 2, 0]
        assert events == [("cache_deferred", {"tasks": 1})]

    def test_nothing_in_flight_keeps_order_and_emits_nothing(self, tmp_path):
        from repro.harness.cache import SharedResultCache
        from repro.harness.parallel import _defer_in_flight

        cache = SharedResultCache(tmp_path)
        keys = ["dd" + "0" * 62, None]
        events = []
        order = _defer_in_flight(
            [0, 1], keys, cache,
            lambda cat, name, t, data: events.append(name),
        )
        assert order == [0, 1]
        assert events == []
