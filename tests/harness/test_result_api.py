"""Tests for the ExperimentResult read-out API and scenario constants."""

import math

import pytest

from repro.harness.experiment import Experiment, FlowGroup, UdpGroup, run_experiment
from repro.harness.factories import pi2_factory
from repro.harness.scenarios import MBPS, PAPER_EXPECTATIONS


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        Experiment(
            capacity_bps=10 * MBPS,
            duration=12.0,
            warmup=4.0,
            aqm_factory=pi2_factory(),
            flows=[
                FlowGroup(cc="reno", count=2, rtt=0.02, label="a"),
                FlowGroup(cc="cubic", count=1, rtt=0.02, label="b"),
            ],
            udp=[UdpGroup(rate_bps=1 * MBPS)],
        )
    )


class TestReadOuts:
    def test_class_labels_sorted(self, result):
        assert result.class_labels() == ["a", "b", "udp"]

    def test_goodputs_per_class(self, result):
        assert len(result.goodputs("a")) == 2
        assert len(result.goodputs("b")) == 1

    def test_total_goodput_close_to_capacity(self, result):
        # TCP goodput + the 1 Mb/s UDP group's nominal rate ≈ link rate.
        tcp = sum(result.goodputs("a")) + sum(result.goodputs("b"))
        assert 6 * MBPS < tcp < 10 * MBPS

    def test_balance_defined(self, result):
        ratio = result.balance("a", "b")
        assert ratio > 0 and math.isfinite(ratio)

    def test_probability_summary_keys(self, result):
        s = result.probability_summary(percentiles=(25, 99))
        assert set(s) == {"mean", "p25", "p99"}
        assert 0 <= s["mean"] <= 1

    def test_utilization_summary(self, result):
        s = result.utilization_summary()
        assert s["p1"] <= s["mean"] <= s["p99"] + 1e-9

    def test_sojourn_samples_warmup_filter(self, result):
        all_samples = result.sojourn_samples(from_warmup=False)
        tail = result.sojourn_samples(from_warmup=True)
        assert len(tail) < len(all_samples)

    def test_queue_stats_exposed(self, result):
        assert result.queue_stats.arrived > 0

    def test_raw_probability_series(self, result):
        # For PI2 raw (p') ≥ applied (p'²) pointwise.
        raw = result.raw_probability.values
        applied = result.probability.values
        assert all(r >= a - 1e-12 for r, a in zip(raw, applied))


class TestPaperExpectations:
    def test_keys_present(self):
        for key in (
            "fig11_target_delay",
            "fig15_pie_cubic_dctcp_ratio",
            "fig15_pi2_cubic_dctcp_ratio",
            "fig18_min_utilization",
        ):
            assert key in PAPER_EXPECTATIONS

    def test_values_sane(self):
        assert PAPER_EXPECTATIONS["fig11_target_delay"] == 0.020
        assert PAPER_EXPECTATIONS["fig15_pie_cubic_dctcp_ratio"] < 1
        assert PAPER_EXPECTATIONS["fig15_pi2_cubic_dctcp_ratio"] == 1.0
