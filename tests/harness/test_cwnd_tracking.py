"""Tests for per-flow congestion-window tracking in the dumbbell."""


from repro.core.pi2 import Pi2Aqm
from repro.harness.topology import Dumbbell


class TestCwndTracking:
    def test_off_by_default(self, sim, streams):
        bed = Dumbbell(sim, streams, 10e6, None)
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(3.0)
        assert bed.cwnd_series == {}

    def test_series_per_flow(self, sim, streams):
        bed = Dumbbell(sim, streams, 10e6, None)
        bed.track_cwnd = True
        bed.add_tcp_flow("reno", rtt=0.05)
        bed.add_tcp_flow("cubic", rtt=0.05)
        sim.run(5.0)
        assert set(bed.cwnd_series) == {0, 1}
        assert len(bed.cwnd_series[0]) == 5

    def test_sawtooth_visible_under_aqm(self, sim, streams):
        """Under an AQM a Classic flow's cwnd trace must go up and down
        (the sawtooth the paper's Figure 1 sketches)."""
        bed = Dumbbell(
            sim, streams, 10e6, Pi2Aqm(rng=streams.stream("aqm")),
            sample_period=0.2,
        )
        bed.track_cwnd = True
        bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(30.0)
        values = bed.cwnd_series[0].window(10.0, 30.0)
        rises = sum(b > a for a, b in zip(values, values[1:]))
        falls = sum(b < a for a, b in zip(values, values[1:]))
        assert rises > 5
        assert falls > 2
