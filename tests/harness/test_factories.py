"""Tests for the standard AQM factories."""

import random

import pytest

from repro.aqm.pi import PiAqm
from repro.aqm.pie import BarePieAqm, PieAqm
from repro.core.coupled import CoupledPi2Aqm
from repro.core.pi2 import Pi2Aqm
from repro.harness.factories import (
    FACTORIES,
    bare_pie_factory,
    coupled_factory,
    pi2_factory,
    pi_factory,
    pie_factory,
    taildrop_factory,
)


class TestFactoryTypes:
    @pytest.mark.parametrize(
        "factory,cls",
        [
            (pie_factory, PieAqm),
            (bare_pie_factory, BarePieAqm),
            (pi_factory, PiAqm),
            (pi2_factory, Pi2Aqm),
            (coupled_factory, CoupledPi2Aqm),
        ],
    )
    def test_builds_expected_type(self, factory, cls):
        aqm = factory()(random.Random(1))
        assert isinstance(aqm, cls)

    def test_taildrop_returns_none(self):
        assert taildrop_factory()(random.Random(1)) is None

    def test_registry_complete(self):
        assert set(FACTORIES) == {
            "taildrop", "pie", "bare-pie", "pi", "pi2", "coupled",
        }


class TestParameterForwarding:
    def test_target_delay_forwarded(self):
        aqm = pi2_factory(target_delay=0.005)(random.Random(1))
        assert aqm.controller.target == 0.005

    def test_coupled_k_forwarded(self):
        aqm = coupled_factory(k=1.19)(random.Random(1))
        assert aqm.k == 1.19

    def test_distinct_rngs_give_distinct_instances(self):
        factory = pi2_factory()
        a = factory(random.Random(1))
        b = factory(random.Random(2))
        assert a is not b
        assert a.rng is not b.rng


class TestSeedIsolation:
    def test_same_stream_reproduces_decisions(self):
        from tests.conftest import make_packet

        outcomes = []
        for _ in range(2):
            aqm = pi2_factory()(random.Random(7))
            aqm.controller.p = 0.5
            outcomes.append(
                tuple(aqm.on_enqueue(make_packet()) for _ in range(50))
            )
        assert outcomes[0] == outcomes[1]
