"""Tests for the multi-seed repetition harness."""

import math

import pytest

from repro.harness.experiment import Experiment, FlowGroup
from repro.harness.factories import pi2_factory, pie_factory
from repro.harness.repeat import MetricEstimate, compare_metric, repeat_experiment


def quick(factory=None, **overrides):
    defaults = dict(
        capacity_bps=10e6,
        duration=10.0,
        warmup=4.0,
        aqm_factory=factory or pi2_factory(),
        flows=[FlowGroup(cc="reno", count=3, rtt=0.03)],
        record_sojourns=False,
    )
    defaults.update(overrides)
    return Experiment(**defaults)


def mean_delay(result):
    return result.queue_delay.mean(4.0)


class TestMetricEstimate:
    def test_interval_bounds(self):
        est = MetricEstimate(mean=10.0, ci95=2.0, samples=(9.0, 11.0))
        assert est.low == 8.0
        assert est.high == 12.0

    def test_overlap(self):
        a = MetricEstimate(10.0, 1.0, (10.0,))
        b = MetricEstimate(11.5, 1.0, (11.5,))
        c = MetricEstimate(20.0, 1.0, (20.0,))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_single_sample_infinite_ci(self):
        out = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1,))
        assert math.isinf(out["d"].ci95)


class TestRepeat:
    def test_samples_per_seed(self):
        out = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1, 2, 3))
        assert len(out["d"].samples) == 3

    def test_seeds_produce_different_samples(self):
        out = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1, 2, 3))
        assert len(set(out["d"].samples)) > 1

    def test_deterministic_given_seeds(self):
        a = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1, 2))
        b = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1, 2))
        assert a["d"].samples == b["d"].samples

    def test_mean_near_target(self):
        out = repeat_experiment(quick(), {"d": mean_delay}, seeds=(1, 2, 3, 4))
        assert out["d"].mean == pytest.approx(0.020, abs=0.012)

    def test_validation(self):
        with pytest.raises(ValueError):
            repeat_experiment(quick(), {"d": mean_delay}, seeds=())
        with pytest.raises(ValueError):
            repeat_experiment(quick(), {}, seeds=(1,))

    def test_multiple_metrics(self):
        out = repeat_experiment(
            quick(),
            {"d": mean_delay, "u": lambda r: r.mean_utilization()},
            seeds=(1, 2),
        )
        assert set(out) == {"d", "u"}


class TestCompare:
    def test_pie_vs_pi2_delay_intervals_overlap(self):
        """Steady-state delay equivalence of PIE and PI2, with error bars."""
        a, b = compare_metric(
            quick(pie_factory()), quick(pi2_factory()), mean_delay,
            seeds=(1, 2, 3),
        )
        assert a.overlaps(b)
