"""Unit tests for the web-like short-flow workload generator."""

import random

import pytest

from repro.traffic.web import WebWorkload, bounded_pareto_segments


class TestBoundedPareto:
    def test_respects_bounds(self):
        rng = random.Random(1)
        sizes = [bounded_pareto_segments(rng, minimum=2, maximum=100) for _ in range(2000)]
        assert min(sizes) >= 2
        assert max(sizes) <= 100

    def test_heavy_tail_shape(self):
        rng = random.Random(1)
        sizes = [bounded_pareto_segments(rng, minimum=2, maximum=10_000) for _ in range(5000)]
        small = sum(s <= 10 for s in sizes) / len(sizes)
        big = sum(s >= 200 for s in sizes) / len(sizes)
        assert small > 0.5  # most flows are tiny
        assert big > 0.001  # but elephants exist

    def test_invalid_params_rejected(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            bounded_pareto_segments(rng, shape=0)
        with pytest.raises(ValueError):
            bounded_pareto_segments(rng, minimum=10, maximum=5)


class TestWebWorkload:
    def _spawn_instantly(self, sim):
        """Flow spawner that completes after a deterministic 'transfer'."""

        def spawn(size, on_complete):
            sim.schedule(size * 0.001, on_complete, size * 0.001)

        return spawn

    def test_poisson_arrival_count(self, sim):
        wl = WebWorkload(sim, self._spawn_instantly(sim), arrival_rate=50.0,
                         rng=random.Random(1))
        wl.start(0.0)
        sim.run(20.0)
        assert wl.flows_started == pytest.approx(1000, rel=0.15)

    def test_until_bounds_arrivals(self, sim):
        wl = WebWorkload(sim, self._spawn_instantly(sim), arrival_rate=100.0,
                         rng=random.Random(1))
        wl.start(0.0, until=1.0)
        sim.run(10.0)
        assert wl.flows_started == pytest.approx(100, rel=0.35)

    def test_stop(self, sim):
        wl = WebWorkload(sim, self._spawn_instantly(sim), arrival_rate=100.0,
                         rng=random.Random(1))
        wl.start(0.0)
        sim.schedule(0.5, wl.stop)
        sim.run(10.0)
        assert wl.flows_started < 120

    def test_completion_times_recorded(self, sim):
        wl = WebWorkload(sim, self._spawn_instantly(sim), arrival_rate=50.0,
                         rng=random.Random(1))
        wl.start(0.0)
        sim.run(5.0)
        assert len(wl.completion_times) > 0
        assert wl.mean_fct() > 0

    def test_percentile_fct(self, sim):
        wl = WebWorkload(sim, self._spawn_instantly(sim), arrival_rate=50.0,
                         rng=random.Random(1))
        wl.start(0.0)
        sim.run(10.0)
        assert wl.percentile_fct(99) >= wl.percentile_fct(50)

    def test_invalid_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            WebWorkload(sim, lambda s, c: None, arrival_rate=0, rng=random.Random(1))
