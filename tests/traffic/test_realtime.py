"""Unit and integration tests for latency-sensitive traffic metering."""

import math

import pytest

from repro.net.packet import Packet
from repro.traffic.realtime import RealtimeSink, RealtimeSource


class TestRealtimeSource:
    def test_isochronous_spacing(self, sim):
        times = []
        src = RealtimeSource(sim, 0, transmit=lambda p: times.append(sim.now),
                             interval=0.020)
        src.start(0.0)
        sim.run(1.0)
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert gaps == {0.020}

    def test_sequence_numbers_monotone(self, sim):
        pkts = []
        src = RealtimeSource(sim, 0, transmit=pkts.append)
        src.start(0.0)
        sim.run(0.5)
        assert [p.seq for p in pkts] == list(range(len(pkts)))

    def test_until_and_stop(self, sim):
        pkts = []
        src = RealtimeSource(sim, 0, transmit=pkts.append, interval=0.01)
        src.start(0.0, until=0.1)
        sim.run(1.0)
        assert len(pkts) == pytest.approx(10, abs=2)

    def test_invalid_params_rejected(self, sim):
        with pytest.raises(ValueError):
            RealtimeSource(sim, 0, transmit=lambda p: None, interval=0)
        with pytest.raises(ValueError):
            RealtimeSource(sim, 0, transmit=lambda p: None, payload_bytes=0)


class TestRealtimeSink:
    def _packet(self, seq, send_time):
        return Packet(flow_id=0, size=200, seq=seq, send_time=send_time)

    def test_delay_measurement(self, sim):
        sink = RealtimeSink(sim, base_delay=0.005)
        sim.schedule(0.030, lambda: sink.deliver(self._packet(0, 0.0)))
        sim.run(1.0)
        assert sink.delays == [pytest.approx(0.025)]

    def test_percentiles(self, sim):
        sink = RealtimeSink(sim)
        for i in range(100):
            sink.delays.append(i / 1000.0)
        assert sink.delay_percentile(99) == pytest.approx(0.098, abs=0.002)
        assert sink.mean_delay() == pytest.approx(0.0495, abs=0.001)

    def test_jitter_zero_for_constant_transit(self, sim):
        sink = RealtimeSink(sim)
        for i in range(10):
            sim.at(i * 0.02 + 0.01, sink.deliver, self._packet(i, i * 0.02))
        sim.run(1.0)
        assert sink.jitter == pytest.approx(0.0)

    def test_jitter_positive_for_variable_transit(self, sim):
        sink = RealtimeSink(sim)
        for i in range(10):
            transit = 0.01 + (0.005 if i % 2 else 0.0)
            sim.at(i * 0.02 + transit, sink.deliver, self._packet(i, i * 0.02))
        sim.run(1.0)
        assert sink.jitter > 0.001

    def test_loss_fraction(self, sim):
        sink = RealtimeSink(sim)
        sink.received = 90
        assert sink.loss_fraction(100) == pytest.approx(0.10)
        assert math.isnan(sink.loss_fraction(0))

    def test_reordering_detected(self, sim):
        sink = RealtimeSink(sim)
        sink.deliver(self._packet(1, 0.0))
        sink.deliver(self._packet(0, 0.0))
        assert sink.reordered == 1

    def test_empty_stats_nan(self, sim):
        sink = RealtimeSink(sim)
        assert math.isnan(sink.mean_delay())
        assert math.isnan(sink.delay_percentile(99))


class TestEndToEnd:
    def test_voip_through_congested_bottleneck(self, sim, streams):
        """A voice flow's P99 queuing delay under PI2 sits near the AQM
        target, orders of magnitude below tail-drop bufferbloat."""
        from repro.core.pi2 import Pi2Aqm
        from repro.harness.topology import Dumbbell

        results = {}
        for name in ("taildrop", "pi2"):
            from repro.sim.engine import Simulator
            from repro.sim.random import RandomStreams

            local_sim = Simulator()
            local_streams = RandomStreams(5)
            aqm = (
                Pi2Aqm(rng=local_streams.stream("aqm")) if name == "pi2" else None
            )
            bed = Dumbbell(local_sim, local_streams, 10e6, aqm,
                           buffer_packets=400)
            for _ in range(5):
                bed.add_tcp_flow("cubic", rtt=0.05)
            source, sink = bed.add_realtime_flow(rtt=0.05)
            local_sim.run(30.0)
            results[name] = sink

        assert results["pi2"].delay_percentile(99) < 0.08
        assert results["taildrop"].delay_percentile(50) > 0.15
        assert results["pi2"].received > 1000
