"""Unit tests for the constant-bit-rate UDP source."""

import pytest

from repro.net.packet import ECN
from repro.traffic.udp import UdpSource


class TestUdpSource:
    def test_rate_accuracy(self, sim):
        sent_bytes = []
        src = UdpSource(sim, 0, transmit=lambda p: sent_bytes.append(p.size),
                        rate_bps=6e6)
        src.start(0.0)
        sim.run(10.0)
        assert sum(sent_bytes) * 8 / 10.0 == pytest.approx(6e6, rel=0.01)

    def test_even_spacing(self, sim):
        times = []
        src = UdpSource(sim, 0, transmit=lambda p: times.append(sim.now),
                        rate_bps=1.2e6, packet_size=1500)
        src.start(0.0)
        sim.run(1.0)
        gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
        assert len(gaps) == 1  # perfectly periodic

    def test_start_and_until(self, sim):
        count = []
        src = UdpSource(sim, 0, transmit=lambda p: count.append(sim.now),
                        rate_bps=1e6)
        src.start(2.0, until=4.0)
        sim.run(10.0)
        assert all(2.0 <= t < 4.01 for t in count)

    def test_stop(self, sim):
        count = []
        src = UdpSource(sim, 0, transmit=lambda p: count.append(1), rate_bps=1e6)
        src.start(0.0)
        sim.schedule(1.0, src.stop)
        sim.run(5.0)
        n_at_stop = len(count)
        assert n_at_stop == pytest.approx(1e6 / (1500 * 8), rel=0.05)

    def test_default_not_ect(self, sim):
        pkts = []
        src = UdpSource(sim, 0, transmit=pkts.append, rate_bps=1e6)
        src.start(0.0)
        sim.run(0.1)
        assert all(p.ecn is ECN.NOT_ECT for p in pkts)

    def test_invalid_params_rejected(self, sim):
        with pytest.raises(ValueError):
            UdpSource(sim, 0, transmit=lambda p: None, rate_bps=0)
        with pytest.raises(ValueError):
            UdpSource(sim, 0, transmit=lambda p: None, rate_bps=1e6, packet_size=0)
