"""The domain static-analysis framework: every rule fires on a fixture
that violates it and stays quiet on the compliant twin, suppressions
behave as documented, the JSON schema is locked, and — the acceptance
gate — the repository's own tree is clean.
"""

import ast
import json
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis.static import (
    JSON_SCHEMA_VERSION,
    RULES,
    SourceFile,
    analyze_paths,
    check_source,
    run_check,
)
from repro.analysis.static.core import parse_allow_comments


def _check(text, package, rules=None, path="fixture.py"):
    """Run selected rules over an in-memory fixture; returns findings."""
    source = SourceFile(Path(path), text=text, package=package)
    selected = [RULES[name] for name in rules] if rules else None
    findings, suppressed = check_source(source, selected)
    return findings, suppressed


def _rules_hit(findings):
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# Registry / framework basics
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_builtin_rules_registered(self):
        assert {
            "DET", "ORD", "PROB", "SCHED", "PICKLE", "FLOAT", "OBS"
        } <= set(RULES)

    def test_rules_have_descriptions_and_severity(self):
        for rule in RULES.values():
            assert rule.description
            assert rule.severity.value in ("error", "warning")

    def test_package_scoping(self):
        # A DET violation in a package the rule does not cover is ignored.
        text = "import random\nrng = random.Random()\n"
        findings, _ = _check(text, package="metrics", rules=["DET"])
        assert findings == []
        findings, _ = _check(text, package="sim", rules=["DET"])
        assert _rules_hit(findings) == {"DET"}

    def test_syntax_error_yields_syntax_finding(self):
        findings, _ = _check("def broken(:\n", package="aqm")
        assert [finding.rule for finding in findings] == ["SYNTAX"]

    def test_finding_is_sorted_and_locatable(self):
        text = "import random\nb = random.Random()\na = random.Random()\n"
        findings, _ = _check(text, package="sim", rules=["DET"])
        assert [finding.line for finding in findings] == [2, 3]
        assert all(finding.col >= 1 for finding in findings)


# ----------------------------------------------------------------------
# DET — seeded randomness, no wall clock
# ----------------------------------------------------------------------
class TestDetRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrng = random.Random()\n",
            "import random\nrng = random.Random(42)\n",
            "import random\nx = random.random()\n",
            "import numpy\nx = numpy.random.rand()\n",
            "import numpy as np\nx = np.random.uniform()\n",
            "import time\nt = time.time()\n",
            "import time\nt = time.monotonic()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "import os\nkey = os.urandom(8)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import secrets\nx = secrets.token_bytes(8)\n",
            "import time\nclock = time.monotonic\n",
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="sim", rules=["DET"])
        assert _rules_hit(findings) == {"DET"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            # Randomness through the sanctioned stream factory.
            "def build(streams):\n    return streams.stream('aqm')\n",
            # Injected rng, used not constructed.
            "def decide(rng, p):\n    return rng.random() < p\n",
            # Virtual time, not wall time.
            "def later(sim):\n    return sim.now + 1.0\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="sim", rules=["DET"])
        assert findings == []

    def test_stream_factory_module_is_exempt(self):
        text = "import random\n\ndef default_stream(seed=0):\n    return random.Random(seed)\n"
        source = SourceFile(
            Path("src/repro/sim/random.py"), text=text, package="sim"
        )
        findings, _ = check_source(source, [RULES["DET"]])
        assert findings == []


# ----------------------------------------------------------------------
# ORD — deterministic iteration
# ----------------------------------------------------------------------
class TestOrdRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "names = {'a', 'b'}\nfor n in names:\n    print(n)\n",
            "names = set()\nout = [n for n in names]\n",
            "import os\nfor f in os.listdir('.'):\n    print(f)\n",
            "import glob\nfor f in glob.glob('*.py'):\n    print(f)\n",
            "from pathlib import Path\nfor f in Path('.').iterdir():\n    print(f)\n",
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="harness", rules=["ORD"])
        assert _rules_hit(findings) == {"ORD"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            "names = {'a', 'b'}\nfor n in sorted(names):\n    print(n)\n",
            "import os\nfor f in sorted(os.listdir('.')):\n    print(f)\n",
            # Dicts iterate in insertion order — deliberately not flagged.
            "d = {'a': 1}\nfor k in d:\n    print(k)\n",
            "items = [1, 2]\nfor x in items:\n    print(x)\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="harness", rules=["ORD"])
        assert findings == []


# ----------------------------------------------------------------------
# PROB — probability domain
# ----------------------------------------------------------------------
class TestProbRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(ps, k):\n    pc = ps / k\n    return pc\n",
            "class A:\n    def update(self, d):\n        self.p = self.p + d\n",
            "class A:\n    @property\n    def probability(self):\n"
            "        return self.p ** 2\n",
            "def f(p, denom):\n    pa = min(p / denom, 1.0)\n    return pa\n",  # one-sided
            "class A:\n    def bump(self, d):\n        self.p += d\n",  # attribute aug
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="aqm", rules=["PROB"])
        assert _rules_hit(findings) == {"PROB"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(ps, k):\n    pc = clamp_unit(ps / k)\n    return pc\n",
            "def f(x):\n    p = min(max(x, 0.0), 1.0)\n    return p\n",
            "class A:\n    @property\n    def probability(self):\n"
            "        return clamp_unit(self.p ** 2)\n",
            "p = 0.5\n",
            "def f(other):\n    p = other.p\n    return p\n",
            # Local accumulator then clamped store is the tolerated pattern.
            "class A:\n    def update(self, d):\n        acc = self.p\n        acc += d\n"
            "        self.p = clamp_unit(acc)\n",
            # bool-returning range *checks* are not probability producers.
            "def is_unit_probability(value: float) -> bool:\n"
            "    return 0.0 <= value <= 1.0\n",
            # p_max is a configuration bound, not a probability write.
            "p_max = 5.0\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="aqm", rules=["PROB"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOAT — order-stable float accumulation
# ----------------------------------------------------------------------
class TestFloatRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(values):\n    total = 0.0\n"
            "    for v in set(values):\n        total += v\n    return total\n",
            "def f(values):\n    total = 0.0\n"
            "    for v in {1.0, 2.0}:\n        total += v\n    return total\n",
            "def f(values):\n    total = 0.0\n"
            "    for v in frozenset(values):\n"
            "        total = total + v\n    return total\n",
            "import os\n\ndef f(d):\n    total = 0.0\n"
            "    for name in os.listdir(d):\n"
            "        total += float(name)\n    return total\n",
            "def f(xs, ys):\n    total = 0.0\n"
            "    for v in {x for x in xs}:\n        total += v\n    return total\n",
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="metrics", rules=["FLOAT"])
        assert _rules_hit(findings) == {"FLOAT"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned fix: a sorted sequence fixes the order.
            "def f(values):\n    total = 0.0\n"
            "    for v in sorted(set(values)):\n        total += v\n"
            "    return total\n",
            # Lists/tuples/ranges iterate in a reproducible order.
            "def f(values):\n    total = 0.0\n"
            "    for v in values:\n        total += v\n    return total\n",
            "def f():\n    total = 0.0\n"
            "    for v in range(10):\n        total += v\n    return total\n",
            # Unordered iteration without accumulation is ORD's concern.
            "def f(values):\n    out = []\n"
            "    for v in set(values):\n        out.append(v)\n    return out\n",
            # sum()/fsum over an explicit sort are the recommended forms.
            "import math\n\ndef f(values):\n"
            "    return math.fsum(sorted(values))\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="metrics", rules=["FLOAT"])
        assert findings == []

    def test_scoped_to_float_sensitive_packages(self):
        text = (
            "def f(values):\n    total = 0.0\n"
            "    for v in set(values):\n        total += v\n    return total\n"
        )
        findings, _ = _check(text, package="harness", rules=["FLOAT"])
        assert findings == []
        findings, _ = _check(text, package="sim", rules=["FLOAT"])
        assert _rules_hit(findings) == {"FLOAT"}


# ----------------------------------------------------------------------
# SCHED — virtual-time scheduling
# ----------------------------------------------------------------------
class TestSchedRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(sim, cb):\n    sim.schedule(-1.0, cb)\n",
            "def f(sim, cb):\n    sim.at_reserved(-0.5, 1, cb)\n",
            "import time\n\ndef f(sim, cb):\n    sim.schedule(time.time(), cb)\n",
            "import time\n\ndef f(sim, cb):\n    sim.stream_schedule(sim.now + time.monotonic(), cb)\n",
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="net", rules=["SCHED"])
        assert _rules_hit(findings) == {"SCHED"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(sim, cb):\n    sim.schedule(sim.now + 0.1, cb)\n",
            "def f(sim, cb, delay):\n    sim.schedule(delay, cb)\n",
            "def f(sim, cb):\n    sim.every(0.032, cb)\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="net", rules=["SCHED"])
        assert findings == []


# ----------------------------------------------------------------------
# PICKLE — the process-pool seam
# ----------------------------------------------------------------------
class TestPickleRule:
    def test_lambda_into_seam_constructor_fires(self):
        text = "f = NamedAqmFactory(lambda rng: None)\n"
        findings, _ = _check(text, package="harness", rules=["PICKLE"])
        assert _rules_hit(findings) == {"PICKLE"}

    def test_function_local_class_fires(self):
        text = (
            "def build():\n"
            "    class LocalAqm:\n"
            "        pass\n"
            "    return NamedAqmFactory(LocalAqm)\n"
        )
        findings, _ = _check(text, package="harness", rules=["PICKLE"])
        assert _rules_hit(findings) == {"PICKLE"}

    def test_slots_seam_class_without_getstate_fires(self):
        text = (
            "class NamedAqmFactory:\n"
            "    __slots__ = ('cls', 'kwargs')\n"
            "    def __init__(self):\n"
            "        pass\n"
        )
        findings, _ = _check(text, package="harness", rules=["PICKLE"])
        assert _rules_hit(findings) == {"PICKLE"}

    def test_quiet_on_compliant_seam(self):
        text = (
            "class NamedAqmFactory:\n"
            "    __slots__ = ('cls', 'kwargs')\n"
            "    def __getstate__(self):\n"
            "        return (self.cls, self.kwargs)\n"
            "    def __setstate__(self, state):\n"
            "        self.cls, self.kwargs = state\n"
            "\n"
            "def build(cls):\n"
            "    return NamedAqmFactory(cls)\n"
        )
        findings, _ = _check(text, package="harness", rules=["PICKLE"])
        assert findings == []

    def test_module_level_class_is_fine(self):
        text = (
            "class MyAqm:\n"
            "    pass\n"
            "\n"
            "def build():\n"
            "    return NamedAqmFactory(MyAqm)\n"
        )
        findings, _ = _check(text, package="harness", rules=["PICKLE"])
        assert findings == []


# ----------------------------------------------------------------------
# OBS — tracers observe, never steer
# ----------------------------------------------------------------------
class TestObsRule:
    @pytest.mark.parametrize(
        "snippet",
        [
            # Tracer call result assigned.
            "def f(tracer):\n    ok = tracer.emit('aqm', 'x', 0.0, {})\n"
            "    return ok\n",
            # Tracer call result tested in a condition.
            "def f(self):\n    if self._tracer.wants('engine'):\n"
            "        return 1\n    return 0\n",
            # Tracer call result passed onward.
            "def f(tracer, sink):\n"
            "    sink(tracer.emit('aqm', 'x', 0.0, {}))\n",
            # Tracer handed to the scheduler as a callback.
            "def f(sim, tracer):\n    sim.every(0.016, tracer.flush)\n",
            # Tracer state mixed into a scheduling time argument.
            "def f(sim, cb):\n"
            "    sim.schedule(self._tracer.last_t + 0.1, cb)\n",
            # ... including via keyword arguments.
            "def f(sim, tracer, cb):\n"
            "    sim.stream_schedule(1.0, cb, key=tracer)\n",
        ],
    )
    def test_fires(self, snippet):
        findings, _ = _check(snippet, package="sim", rules=["OBS"])
        assert _rules_hit(findings) == {"OBS"}, snippet

    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned shape: emit as a bare statement.
            "def f(tracer):\n    tracer.emit('aqm', 'x', 0.0, {})\n",
            "def f(self):\n    self._tracer.emit('engine', 'x', 0.0, {})\n",
            # Guarding on identity (not a call) is fine.
            "def f(self):\n    if self._tracer is not None:\n"
            "        self._tracer.emit('engine', 'x', 0.0, {})\n",
            # Binding the emit method (attribute read, not a call).
            "def f(tracer):\n"
            "    emit = tracer.emit if tracer is not None else None\n"
            "    if emit is not None:\n"
            "        emit('harness', 'x', 0.0, {})\n",
            # obs-package helpers called by bare name are not tracer chains.
            "def f(sim, tracer):\n"
            "    sim.set_tracer(engine_tracer(tracer))\n",
            # Scheduling without any tracer reference is SCHED's business.
            "def f(sim, cb):\n    sim.schedule(sim.now + 0.1, cb)\n",
        ],
    )
    def test_quiet_on_compliant(self, snippet):
        findings, _ = _check(snippet, package="sim", rules=["OBS"])
        assert findings == [], snippet

    def test_scoped_to_simulation_packages(self):
        # The obs package itself (and anything outside the simulation
        # packages) may consume tracer results — that is where wants()
        # capability checks live.
        text = "def f(tracer):\n    return tracer.wants('aqm')\n"
        findings, _ = _check(text, package="obs", rules=["OBS"])
        assert findings == []
        findings, _ = _check(text, package="harness", rules=["OBS"])
        assert _rules_hit(findings) == {"OBS"}


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_allow_suppresses(self):
        text = (
            "import random\n"
            "rng = random.Random(7)  # repro: allow[DET] fixture justification\n"
        )
        findings, suppressed = _check(text, package="sim", rules=["DET"])
        assert findings == []
        assert [finding.rule for finding in suppressed] == ["DET"]

    def test_standalone_allow_covers_next_code_line(self):
        text = (
            "import random\n"
            "# repro: allow[DET] fixture justification\n"
            "rng = random.Random(7)\n"
        )
        findings, suppressed = _check(text, package="sim", rules=["DET"])
        assert findings == []
        assert len(suppressed) == 1

    def test_allow_is_rule_specific(self):
        text = (
            "import random\n"
            "rng = random.Random(7)  # repro: allow[PROB] wrong rule\n"
        )
        findings, suppressed = _check(text, package="sim", rules=["DET"])
        assert [finding.rule for finding in findings] == ["DET"]
        assert suppressed == []

    def test_multi_rule_allow(self):
        allowed = parse_allow_comments(
            ["x = 1  # repro: allow[DET, PROB] two at once"]
        )
        names, why = allowed[1]
        assert names == frozenset({"DET", "PROB"})
        assert why == "two at once"

    def test_standalone_allow_does_not_leak_past_one_statement(self):
        text = (
            "import random\n"
            "# repro: allow[DET] only the next line\n"
            "a = random.Random(1)\n"
            "b = random.Random(2)\n"
        )
        findings, suppressed = _check(text, package="sim", rules=["DET"])
        assert [finding.line for finding in findings] == [4]
        assert len(suppressed) == 1


# ----------------------------------------------------------------------
# Runner: JSON schema, file walking, exit codes, the tree itself
# ----------------------------------------------------------------------
class TestRunner:
    def _write_fixture(self, tmp_path, name="repro/sim/bad.py"):
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("import random\nrng = random.Random()\n")
        return target

    def test_json_schema_locked(self, tmp_path):
        self._write_fixture(tmp_path)
        report = analyze_paths([tmp_path])
        payload = report.to_json()
        assert set(payload) == {
            "schema",
            "files_checked",
            "files_analyzed",
            "rules",
            "counts",
            "findings",
            "suppressed",
        }
        assert payload["schema"] == JSON_SCHEMA_VERSION == 2
        assert payload["files_checked"] == 1
        assert payload["files_analyzed"] == 1
        assert set(payload["counts"]) == set(payload["rules"]) == set(RULES)
        (finding,) = [f for f in payload["findings"] if f["rule"] == "DET"]
        assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
        assert payload["counts"]["DET"] == 1

    def test_run_check_exit_codes(self, tmp_path):
        bad = self._write_fixture(tmp_path)
        out = StringIO()
        assert run_check([str(bad)], out=out) == 1
        out = StringIO()
        assert run_check([str(bad)], rule_names=["ORD"], out=out) == 0
        out = StringIO()
        assert run_check([str(bad)], rule_names=["NOPE"], out=out) == 2
        assert "unknown rule" in out.getvalue()
        out = StringIO()
        assert run_check(list_rules=True, out=out) == 0
        assert "DET" in out.getvalue()

    def test_json_output_parses(self, tmp_path):
        bad = self._write_fixture(tmp_path)
        out = StringIO()
        run_check([str(bad)], output_format="json", out=out)
        payload = json.loads(out.getvalue())
        assert payload["schema"] == 2

    def test_pycache_skipped_and_order_stable(self, tmp_path):
        self._write_fixture(tmp_path, "repro/sim/bad.py")
        cached = tmp_path / "repro" / "__pycache__" / "junk.py"
        cached.parent.mkdir(parents=True)
        cached.write_text("import random\nx = random.Random()\n")
        report = analyze_paths([tmp_path])
        assert report.files_checked == 1

    def test_repository_tree_is_clean(self):
        """The acceptance gate: zero unsuppressed findings at HEAD."""
        report = analyze_paths()
        assert report.findings == [], "\n" + report.format_human()
        # The deliberate, justified suppressions (engine watchdog wall
        # clock, cache entry count, tune-table sweep variable).
        assert len(report.suppressed) >= 3
        assert report.files_checked > 50

    def test_checker_parses_every_repo_file(self):
        report = analyze_paths()
        assert not any(f.rule == "SYNTAX" for f in report.findings)


class TestCli:
    def test_repro_check_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "OK: 0 findings" in out

    def test_repro_check_rules_and_json(self, capsys):
        from repro.cli import main

        assert main(["check", "--rules", "DET,ORD", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["rules"]) == {"DET", "ORD"}

    def test_repro_check_flags_violation(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n")
        assert main(["check", str(tmp_path)]) == 1
        assert "DET" in capsys.readouterr().out


def test_ast_fixture_roundtrip():
    """Sanity: fixtures in this file are valid Python (guards typos)."""
    ast.parse("def f(sim, cb):\n    sim.schedule(sim.now + 0.1, cb)\n")
