"""Unit tests for Appendix A's steady-state laws."""

import math

import pytest

from repro.analysis import steady_state as ss


class TestScalability:
    """Section 2: c = pW, c ∝ W^(1−1/B), scalable iff B ≥ 1."""

    def test_signals_per_rtt(self):
        assert ss.signals_per_rtt(window=20, p=0.1) == pytest.approx(2.0)

    def test_reno_signals_shrink_with_rate(self):
        # For Reno, doubling the window quarters p, so c = pW halves.
        w1, w2 = 10.0, 20.0
        c1 = ss.signals_per_rtt(w1, ss.p_for_window_reno(w1))
        c2 = ss.signals_per_rtt(w2, ss.p_for_window_reno(w2))
        assert c2 == pytest.approx(c1 / 2)

    def test_dctcp_signals_constant_with_rate(self):
        # For DCTCP (B = 1), c = pW = 2 regardless of the window.
        for w in (10.0, 100.0, 1000.0):
            c = ss.signals_per_rtt(w, ss.p_for_window_dctcp(w))
            assert c == pytest.approx(2.0)

    @pytest.mark.parametrize(
        "b,scalable",
        [
            (ss.B_RENO, False),
            (ss.B_CRENO, False),
            (ss.B_CUBIC, False),
            (ss.B_DCTCP_PROB, True),
            (ss.B_DCTCP_STEP, True),
        ],
    )
    def test_scalability_criterion(self, b, scalable):
        assert ss.is_scalable(b) is scalable

    def test_exponents(self):
        assert ss.scalability_exponent(0.5) == pytest.approx(-1.0)
        assert ss.scalability_exponent(1.0) == pytest.approx(0.0)
        assert ss.scalability_exponent(2.0) == pytest.approx(0.5)


class TestWindowLaws:
    def test_reno_equation5(self):
        assert ss.window_reno(0.01) == pytest.approx(12.2)

    def test_creno_equation7(self):
        assert ss.window_creno(0.01) == pytest.approx(16.8)

    def test_creno_constant_from_aimd(self):
        # 1.68 ≈ 1.22·√((1+0.7)·0.5/(1−0.7)·...): check via AIMD formula
        # W_mean = sqrt(a(1+b)/(2(1-b)p)) with a=1, b=0.7.
        derived = math.sqrt(1 * (1 + 0.7) / (2 * (1 - 0.7)))
        assert derived == pytest.approx(1.68, abs=0.005)

    def test_cubic_equation6(self):
        assert ss.window_cubic(0.01, rtt=1.0) == pytest.approx(1.17 / 0.01 ** 0.75)

    def test_cubic_rtt_dependence(self):
        # W ∝ R^¾.
        r = ss.window_cubic(0.01, rtt=0.2) / ss.window_cubic(0.01, rtt=0.1)
        assert r == pytest.approx(2 ** 0.75)

    def test_dctcp_equation11(self):
        assert ss.window_dctcp(0.1) == pytest.approx(20.0)

    def test_dctcp_step_equation12(self):
        assert ss.window_dctcp_step(0.1) == pytest.approx(200.0)

    def test_step_marking_more_aggressive_at_low_p(self):
        # Equation (12) > (11) for p < 1: step marking sustains a larger
        # window for the same probability.
        for p in (0.01, 0.1, 0.5):
            assert ss.window_dctcp_step(p) > ss.window_dctcp(p)

    @pytest.mark.parametrize("fn", [ss.window_reno, ss.window_creno, ss.window_dctcp])
    def test_zero_p_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(0.0)


class TestInverses:
    def test_reno_round_trip(self):
        for p in (0.001, 0.01, 0.25):
            assert ss.p_for_window_reno(ss.window_reno(p)) == pytest.approx(p)

    def test_creno_round_trip(self):
        for p in (0.001, 0.01, 0.25):
            assert ss.p_for_window_creno(ss.window_creno(p)) == pytest.approx(p)

    def test_dctcp_round_trip(self):
        for p in (0.01, 0.1, 0.9):
            assert ss.p_for_window_dctcp(ss.window_dctcp(p)) == pytest.approx(p)


class TestSwitchover:
    """Equation (8)."""

    def test_low_bdp_is_creno(self):
        assert ss.cubic_operates_as_creno(window=20, rtt=0.01)

    def test_high_bdp_is_cubic(self):
        assert not ss.cubic_operates_as_creno(window=1000, rtt=0.1)

    def test_depends_on_both_w_and_r(self):
        # Same window, different RTT flips the mode.
        assert ss.cubic_operates_as_creno(window=100, rtt=0.01)
        assert not ss.cubic_operates_as_creno(window=100, rtt=0.2)


class TestCoupling:
    def test_equation13_equal_rate(self):
        """W_creno(pc) = W_dctcp(ps) exactly when pc = (ps/1.19)²."""
        ps = 0.2
        pc = ss.coupled_classic_probability(ps)
        assert ss.window_creno(pc) == pytest.approx(ss.window_dctcp(ps), rel=1e-3)

    def test_k_analytic_value(self):
        assert ss.k_analytic() == pytest.approx(1.19, abs=0.01)

    def test_deployed_k_two_makes_classic_weaker_signal(self):
        ps = 0.2
        pc2 = ss.coupled_classic_probability(ps, k=2.0)
        pc119 = ss.coupled_classic_probability(ps)
        assert pc2 < pc119  # larger k → gentler classic signal


class TestRates:
    def test_throughput(self):
        # 10 segments of 1448 B per 100 ms ≈ 1.16 Mb/s.
        assert ss.throughput_bps(10, 0.1) == pytest.approx(1448 * 8 * 100)

    def test_window_for_rate_round_trip(self):
        w = ss.window_for_rate(ss.throughput_bps(17.3, 0.05), 0.05)
        assert w == pytest.approx(17.3)
