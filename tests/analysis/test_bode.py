"""Unit tests for Bode margins — the paper's Figures 4 and 7 claims.

These are the analytical reproduction targets:

* Figure 4: a fixed-gain PI on Reno has a gain margin that degrades
  diagonally as p falls, going negative (unstable) at low p, while the
  auto-tuned (PIE) gains keep it positive.
* Figure 7: squaring flattens the margin across the whole load range;
  2.5× higher gains stay stable everywhere; the Scalable-on-PI margins
  look like the PI2 ones with ~2× more headroom.
"""

import numpy as np
import pytest

from repro.analysis.bode import (
    Margins,
    margin_sweep,
    margins_from_loop,
    margins_reno_pi,
    margins_reno_pi2,
    margins_reno_pie,
    margins_scal_pi,
)
from repro.analysis.fluid import (
    PAPER_PI2_GAINS,
    PAPER_PIE_GAINS,
    PAPER_SCAL_GAINS,
)

R0 = 0.1  # the paper's 100 ms analysis RTT


class TestMarginComputation:
    def test_known_first_order_system_with_delay(self):
        # L(s) = K e^{-sT}/s: phase crossover at ω = π/(2T),
        # GM = -20 log10(K·2T/π).
        K, T = 1.0, 0.1

        def loop(s):
            return K * np.exp(-s * T) / s

        m = margins_from_loop(loop)
        w_pc = np.pi / (2 * T)
        expected_gm = -20 * np.log10(K / w_pc)
        assert m.gain_margin_db == pytest.approx(expected_gm, abs=0.1)
        # |L| = 1 at ω = K → PM = 180 − 90 − ω·T·180/π.
        expected_pm = 180 - 90 - np.degrees(K * T)
        assert m.phase_margin_deg == pytest.approx(expected_pm, abs=0.5)

    def test_stable_property(self):
        assert Margins(10.0, 45.0).stable
        assert not Margins(-3.0, 45.0).stable
        assert not Margins(10.0, -5.0).stable
        assert Margins(None, None).stable


class TestFigure4:
    """Fixed-gain PI margins degrade at low p; auto-tune rescues them."""

    def test_fixed_gain_unstable_at_low_p(self):
        m = margins_reno_pi(1e-4, R0, PAPER_PIE_GAINS, tune_factor=1.0)
        assert m.gain_margin_db is not None
        assert m.gain_margin_db < 0

    def test_fixed_gain_stable_at_high_p(self):
        m = margins_reno_pi(0.3, R0, PAPER_PIE_GAINS, tune_factor=1.0)
        assert m.stable

    def test_gain_margin_diagonal_in_p(self):
        """GM grows ~10 dB per decade of p for fixed gains (κ_R = 1/2p)."""
        m1 = margins_reno_pi(0.001, R0, PAPER_PIE_GAINS)
        m2 = margins_reno_pi(0.01, R0, PAPER_PIE_GAINS)
        assert m2.gain_margin_db - m1.gain_margin_db == pytest.approx(10.0, abs=2.0)

    def test_smaller_tune_shifts_margin_up(self):
        m_full = margins_reno_pi(1e-4, R0, PAPER_PIE_GAINS, tune_factor=1.0)
        m_eighth = margins_reno_pi(1e-4, R0, PAPER_PIE_GAINS, tune_factor=1 / 8)
        assert m_eighth.gain_margin_db > m_full.gain_margin_db

    def test_auto_tune_keeps_margin_positive_across_range(self):
        for p in (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5):
            m = margins_reno_pie(p, R0, PAPER_PIE_GAINS)
            assert m.gain_margin_db is None or m.gain_margin_db > 0, f"p={p}"


class TestFigure7:
    """PI2's flat margins and the ×2.5 gain headroom."""

    def test_pi2_margin_positive_across_full_range(self):
        for pp in (0.001, 0.01, 0.1, 0.3, 0.6, 0.9):
            m = margins_reno_pi2(pp, R0, PAPER_PI2_GAINS)
            assert m.gain_margin_db is None or m.gain_margin_db > 0, f"p'={pp}"

    def test_pi2_margin_is_flat(self):
        """Across three decades of p' the GM varies far less than the
        30 dB a fixed-gain direct-p controller would swing."""
        gms = [
            margins_reno_pi2(pp, R0, PAPER_PI2_GAINS).gain_margin_db
            for pp in (0.001, 0.01, 0.1)
        ]
        assert max(gms) - min(gms) < 6.0

    def test_direct_p_margin_is_diagonal_in_contrast(self):
        gms = [
            margins_reno_pi(p, R0, PAPER_PIE_GAINS).gain_margin_db
            for p in (0.001, 0.01, 0.1)
        ]
        assert max(gms) - min(gms) > 15.0

    def test_scalable_pi_margins_similar_to_pi2(self):
        """'scal pi' curves (2× gains) stay stable across the range."""
        for pp in (0.01, 0.1, 0.5, 0.9):
            m = margins_scal_pi(pp, R0, PAPER_SCAL_GAINS)
            assert m.gain_margin_db is None or m.gain_margin_db > 0, f"p'={pp}"

    def test_scalable_has_headroom_for_double_gains(self):
        """At the same p', scal-PI with 2× PI2 gains keeps a margin
        comparable to reno-PI2 — the basis of the k = 2 gain ratio."""
        pp = 0.1
        m_scal = margins_scal_pi(pp, R0, PAPER_SCAL_GAINS)
        m_pi2 = margins_reno_pi2(pp, R0, PAPER_PI2_GAINS)
        assert abs(m_scal.gain_margin_db - m_pi2.gain_margin_db) < 6.0

    def test_high_load_margin_slightly_above_10db(self):
        """Paper: 'Only at high loads, when p' is higher than 60 % ...
        is the gain margin of PI2 slightly above 10 dB'."""
        m = margins_reno_pi2(0.8, R0, PAPER_PI2_GAINS)
        assert m.gain_margin_db > 10.0


class TestSweep:
    def test_sweep_shapes(self):
        ps = np.array([0.01, 0.1])
        out = margin_sweep("reno_pi2", ps, R0, PAPER_PI2_GAINS)
        assert len(out) == 2
        assert all(isinstance(m, Margins) for m in out)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            margin_sweep("nope", np.array([0.1]), R0, PAPER_PI2_GAINS)
