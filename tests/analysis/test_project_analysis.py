"""Tests for the two-pass project analyzer: graph, TAINT, UNIT, ratchet.

Covers the pass-1 index (call-graph construction, method resolution,
cycles, decorated functions), the interprocedural TAINT rule (multi-hop
source-to-sink flow, sanitizers, per-function summaries), the UNIT
dimensional analysis, the generalized findings baseline, SARIF output,
and the incremental runner's full-run parity.
"""

import json
from io import StringIO
from pathlib import Path

import pytest

from repro.analysis.static import (
    RULES,
    Report,
    SourceFile,
    analyze_paths,
    apply_baseline,
    check_source,
    load_baseline,
    run_check,
    to_sarif,
)
from repro.analysis.static.core import Finding
from repro.analysis.static.graph import ProjectIndex, module_name_for


def _source(text, name="repro/sim/mod.py", package=None, tmp=None):
    path = (tmp / name) if tmp is not None else Path(name)
    return SourceFile(path, text=text, package=package,
                      display_path=str(name))


def _index(*files):
    """Build a ProjectIndex from (name, text) pairs."""
    return ProjectIndex.build(
        [_source(text, name=name) for name, text in files]
    )


def _check(text, package, rules):
    source = _source(text, package=package)
    findings, suppressed = check_source(
        source, [RULES[name] for name in rules]
    )
    return findings, suppressed


def _write_tree(tmp_path, files):
    """Materialise {relative name: text} under tmp_path/repro/..."""
    for name, text in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return tmp_path


# ----------------------------------------------------------------------
# Pass 1: the project index
# ----------------------------------------------------------------------
class TestProjectIndex:
    def test_module_name_inference(self):
        assert module_name_for(
            _source("", name="src/repro/aqm/pi.py")
        ) == "repro.aqm.pi"
        assert module_name_for(
            _source("", name="src/repro/aqm/__init__.py")
        ) == "repro.aqm"
        assert module_name_for(_source("", name="fixture.py")) == "fixture"

    def test_call_graph_and_reverse_edges(self):
        idx = _index((
            "repro/sim/a.py",
            "def helper():\n    return 1\n\ndef top():\n    return helper()\n",
        ))
        assert "repro.sim.a.helper" in idx.call_graph["repro.sim.a.top"]
        assert "repro.sim.a.top" in idx.reverse_call_graph["repro.sim.a.helper"]

    def test_cross_module_call_through_import(self):
        idx = _index(
            ("repro/sim/a.py", "def helper():\n    return 1\n"),
            (
                "repro/sim/b.py",
                "from repro.sim.a import helper\n\n"
                "def top():\n    return helper()\n",
            ),
        )
        assert "repro.sim.a.helper" in idx.call_graph["repro.sim.b.top"]
        assert "repro.sim.b" in idx.module_deps
        assert "repro.sim.a" in idx.module_deps["repro.sim.b"]

    def test_method_resolution_through_bases(self):
        idx = _index((
            "repro/sim/c.py",
            "class Base:\n"
            "    def step(self):\n        return 0\n\n"
            "class Child(Base):\n"
            "    def run(self):\n        return self.step()\n",
        ))
        assert (
            idx.resolve_method("repro.sim.c.Child", "step")
            == "repro.sim.c.Base.step"
        )
        assert (
            "repro.sim.c.Base.step"
            in idx.call_graph["repro.sim.c.Child.run"]
        )

    def test_cyclic_calls_and_cyclic_bases_terminate(self):
        idx = _index((
            "repro/sim/d.py",
            "def f():\n    return g()\n\ndef g():\n    return f()\n\n"
            "class A(B):\n    pass\n\nclass B(A):\n    pass\n",
        ))
        assert "repro.sim.d.g" in idx.call_graph["repro.sim.d.f"]
        assert idx.resolve_method("repro.sim.d.A", "missing") is None
        assert "repro.sim.d.A" in idx.mro("repro.sim.d.A")

    def test_decorated_functions_are_indexed(self):
        idx = _index((
            "repro/sim/e.py",
            "import functools\n\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def cached():\n    return 1\n\n"
            "class C:\n"
            "    @property\n"
            "    def prop(self):\n        return 2\n"
            "    @staticmethod\n"
            "    def stat(x):\n        return x\n",
        ))
        assert "repro.sim.e.cached" in idx.functions
        assert "functools.lru_cache" in idx.functions[
            "repro.sim.e.cached"
        ].decorators
        assert idx.functions["repro.sim.e.C.prop"].is_property
        stat = idx.functions["repro.sim.e.C.stat"]
        assert stat.is_static
        # Caller-visible positional params skip self only for bound methods.
        assert stat.positional_param(0) == "x"
        assert idx.functions["repro.sim.e.C.prop"].positional_param(0) is None

    def test_attr_class_inference_resolves_self_attr_calls(self):
        idx = _index((
            "repro/sim/f.py",
            "class Ctl:\n"
            "    def update(self, d):\n        return d\n\n"
            "class Aqm:\n"
            "    def __init__(self):\n"
            "        self.ctl = Ctl()\n"
            "    def tick(self):\n"
            "        return self.ctl.update(0.0)\n",
        ))
        assert idx.attr_class("repro.sim.f.Aqm", "ctl") == "repro.sim.f.Ctl"
        assert "repro.sim.f.Ctl.update" in idx.call_graph["repro.sim.f.Aqm.tick"]

    def test_dependents_closure_is_transitive(self):
        idx = _index(
            ("repro/sim/base.py", "def low():\n    return 1\n"),
            (
                "repro/sim/mid.py",
                "from repro.sim.base import low\n\n"
                "def mid():\n    return low()\n",
            ),
            (
                "repro/sim/top.py",
                "from repro.sim.mid import mid\n\n"
                "def top():\n    return mid()\n",
            ),
        )
        dirty = idx.dependents_of(["repro/sim/base.py"])
        assert dirty == {
            "repro/sim/base.py", "repro/sim/mid.py", "repro/sim/top.py"
        }
        assert idx.dependents_of(["repro/sim/top.py"]) == {"repro/sim/top.py"}


# ----------------------------------------------------------------------
# TAINT
# ----------------------------------------------------------------------
class TestTaint:
    def test_direct_wall_clock_into_schedule(self):
        findings, _ = _check(
            "import time\n\n"
            "def arm(sim):\n"
            "    sim.schedule(time.time(), arm)\n",
            package="sim",
            rules=["TAINT"],
        )
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_two_hop_flow_reports_via_chain(self):
        findings, _ = _check(
            "import time\n\n"
            "def _now():\n    return time.time()\n\n"
            "def _jitter():\n    return _now() * 1e-3\n\n"
            "def arm(sim):\n    sim.schedule(_jitter(), arm)\n",
            package="sim",
            rules=["TAINT"],
        )
        assert len(findings) == 1
        assert "via _jitter -> _now" in findings[0].message

    def test_clamp_and_default_stream_sanitize(self):
        findings, _ = _check(
            "import time\n\n"
            "def clamped():\n    return clamp_unit(time.time())\n\n"
            "def seeded():\n    return default_stream()\n\n"
            "def arm(sim):\n"
            "    sim.schedule(clamped(), arm)\n"
            "    sim.schedule(seeded(), arm)\n",
            package="sim",
            rules=["TAINT"],
        )
        assert findings == []

    def test_environment_read_into_probability_write(self):
        findings, _ = _check(
            "import os\n\n"
            "def tune(self):\n"
            "    scale = float(os.environ['SCALE'])\n"
            "    self.p = scale\n",
            package="aqm",
            rules=["TAINT"],
        )
        assert len(findings) == 1
        assert "probability write" in findings[0].message

    def test_unseeded_rng_into_digest(self):
        findings, _ = _check(
            "import hashlib\n"
            "import random\n\n"
            "def fingerprint():\n"
            "    h = hashlib.sha256()\n"
            "    h.update(str(random.random()).encode())\n"
            "    return h.hexdigest()\n",
            package="harness",
            rules=["TAINT"],
        )
        assert len(findings) == 1
        assert "digest input" in findings[0].message

    def test_tainted_argument_into_sinking_callee(self):
        findings, _ = _check(
            "import time\n\n"
            "def arm_at(sim, when):\n"
            "    sim.schedule(when, arm_at)\n\n"
            "def caller(sim):\n"
            "    arm_at(sim, time.time())\n",
            package="sim",
            rules=["TAINT"],
        )
        # One finding at the call site passing the tainted argument.
        assert any("inside arm_at()" in f.message for f in findings)

    def test_set_iteration_taints_loop_variable(self):
        findings, _ = _check(
            "def arm(sim, flows):\n"
            "    for f in set(flows):\n"
            "        sim.schedule(f, arm)\n",
            package="sim",
            rules=["TAINT"],
        )
        assert len(findings) == 1
        assert "hash-order" in findings[0].message

    def test_virtual_time_stays_clean(self):
        findings, _ = _check(
            "def arm(sim, interval):\n"
            "    sim.schedule(sim.now + interval, arm)\n",
            package="sim",
            rules=["TAINT"],
        )
        assert findings == []

    def test_suppression_comment_applies(self):
        text = (
            "import time\n\n"
            "def arm(sim):\n"
            "    # repro: allow[TAINT] test fixture exercising the gate\n"
            "    sim.schedule(time.time(), arm)\n"
        )
        findings, suppressed = _check(text, package="sim", rules=["TAINT"])
        assert findings == []
        assert len(suppressed) == 1


# ----------------------------------------------------------------------
# UNIT
# ----------------------------------------------------------------------
class TestUnit:
    def test_seconds_plus_packets_flagged(self):
        findings, _ = _check(
            "from repro.units import Packets, Seconds\n\n"
            "def f(delay: Seconds, backlog: Packets):\n"
            "    return delay + backlog\n",
            package="aqm",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "mixes Seconds with Packets" in findings[0].message

    def test_division_composes_dimensions(self):
        findings, _ = _check(
            "from repro.units import Bits, BitsPerSecond, Seconds\n\n"
            "def tx_time(size: Bits, rate: BitsPerSecond) -> Seconds:\n"
            "    return size / rate\n",
            package="net",
            rules=["UNIT"],
        )
        assert findings == []

    def test_return_dimension_mismatch_flagged(self):
        findings, _ = _check(
            "from repro.units import Packets, Seconds\n\n"
            "def f(backlog: Packets) -> Seconds:\n"
            "    return backlog\n",
            package="net",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "returning Packets" in findings[0].message

    def test_literal_into_unit_parameter_flagged_zero_exempt(self):
        findings, _ = _check(
            "from repro.units import Seconds\n\n"
            "def arm(delay: Seconds):\n    return delay\n\n"
            "def go():\n"
            "    arm(0.02)\n"
            "    arm(0.0)\n"
            "    arm(Seconds(0.02))\n",
            package="sim",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "wrap it as Seconds" in findings[0].message
        assert findings[0].line == 7

    def test_keyword_argument_dimension_mismatch(self):
        findings, _ = _check(
            "from repro.units import Packets, Seconds\n\n"
            "def arm(delay: Seconds):\n    return delay\n\n"
            "def go(backlog: Packets):\n"
            "    arm(delay=backlog)\n",
            package="sim",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "Packets value passed" in findings[0].message

    def test_comparison_across_units_flagged(self):
        findings, _ = _check(
            "from repro.units import Packets, Seconds\n\n"
            "def f(delay: Seconds, backlog: Packets):\n"
            "    return delay < backlog\n",
            package="aqm",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "comparing Seconds against Packets" in findings[0].message

    def test_self_attribute_units_via_init_param(self):
        findings, _ = _check(
            "from repro.units import Packets, Seconds\n\n"
            "class Ctl:\n"
            "    def __init__(self, target: Seconds):\n"
            "        self.target = target\n"
            "    def err(self, backlog: Packets):\n"
            "        return backlog - self.target\n",
            package="aqm",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "mixes Packets with Seconds" in findings[0].message

    def test_probability_literals_stay_silent(self):
        findings, _ = _check(
            "from repro.units import Probability\n\n"
            "def cap(p_max: Probability):\n    return p_max\n\n"
            "def go():\n    cap(0.25)\n",
            package="aqm",
            rules=["UNIT"],
        )
        assert findings == []

    def test_annotated_default_literal_flagged(self):
        findings, _ = _check(
            "from repro.units import Seconds\n\n"
            "def arm(delay: Seconds = 0.032):\n    return delay\n",
            package="aqm",
            rules=["UNIT"],
        )
        assert len(findings) == 1
        assert "unit-less literal default" in findings[0].message


# ----------------------------------------------------------------------
# FLOAT extension: sum()/math.fsum() on unordered operands
# ----------------------------------------------------------------------
class TestFloatSums:
    def test_sum_on_set_and_listing_fire(self):
        findings, _ = _check(
            "import math\n"
            "import os\n\n"
            "def totals(xs):\n"
            "    a = sum(set(xs))\n"
            "    b = math.fsum({x * 2 for x in xs})\n"
            "    c = sum(os.listdir('.'))\n"
            "    return a, b, c\n",
            package="metrics",
            rules=["FLOAT"],
        )
        assert len(findings) == 3
        assert all("unstable iteration" in f.message for f in findings)

    def test_sum_on_dict_view_fires(self):
        findings, _ = _check(
            "def total(d):\n    return sum(d.values())\n",
            package="metrics",
            rules=["FLOAT"],
        )
        assert len(findings) == 1
        assert "dict .values() view" in findings[0].message

    def test_sorted_operand_is_quiet(self):
        findings, _ = _check(
            "import math\n\n"
            "def totals(xs, d):\n"
            "    a = sum(sorted(set(xs)))\n"
            "    b = math.fsum(sorted(d.values()))\n"
            "    c = sum(xs)\n"
            "    return a, b, c\n",
            package="metrics",
            rules=["FLOAT"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# Findings baseline (the generalized ratchet)
# ----------------------------------------------------------------------
class TestBaseline:
    def _report(self, det=0):
        report = Report(rules={"DET": "d", "TAINT": "t"})
        for i in range(det):
            report.findings.append(Finding(
                rule="DET", severity="error", path="x.py", line=i + 1,
                col=1, message="m",
            ))
        return report

    def test_update_writes_counts(self, tmp_path):
        path = tmp_path / "baseline.json"
        rc = apply_baseline(
            self._report(det=2), path, update=True, out=StringIO()
        )
        assert rc == 0
        assert load_baseline(path) == {"DET": 2, "TAINT": 0}

    def test_new_findings_fail(self, tmp_path):
        path = tmp_path / "baseline.json"
        apply_baseline(self._report(det=1), path, update=True, out=StringIO())
        out = StringIO()
        rc = apply_baseline(self._report(det=2), path, out=out)
        assert rc == 1
        assert "exceed the baseline ceiling" in out.getvalue()

    def test_fixed_findings_auto_lower_the_ceiling(self, tmp_path):
        path = tmp_path / "baseline.json"
        apply_baseline(self._report(det=3), path, update=True, out=StringIO())
        out = StringIO()
        rc = apply_baseline(self._report(det=1), path, out=out)
        assert rc == 0
        assert "ratcheted down" in out.getvalue()
        assert load_baseline(path)["DET"] == 1
        # ... and the lowered ceiling now gates at the new level.
        assert apply_baseline(self._report(det=2), path, out=StringIO()) == 1

    def test_missing_baseline_requires_flag(self, tmp_path):
        path = tmp_path / "missing.json"
        out = StringIO()
        assert apply_baseline(self._report(), path, require=True, out=out) == 1
        assert "baseline required" in out.getvalue()
        # Without require: legacy strict mode.
        assert apply_baseline(self._report(det=0), path, out=StringIO()) == 0
        assert apply_baseline(self._report(det=1), path, out=StringIO()) == 1

    def test_repo_baseline_is_all_zero(self):
        ceilings = load_baseline(Path("tools/findings_baseline.json"))
        assert ceilings is not None
        assert set(ceilings) == set(RULES)
        assert all(count == 0 for count in ceilings.values())


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
class TestSarif:
    def test_schema_locked(self):
        report = Report(rules={"DET": "no wall clock"})
        report.findings.append(Finding(
            rule="DET", severity="error", path="src/repro/sim/x.py",
            line=3, col=7, message="bad",
        ))
        payload = to_sarif(report)
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert driver["rules"] == [{
            "id": "DET",
            "shortDescription": {"text": "no wall clock"},
        }]
        (result,) = run["results"]
        assert result["ruleId"] == "DET"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/sim/x.py"
        assert location["region"] == {"startLine": 3, "startColumn": 7}

    def test_cli_format_sarif_parses(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrng = random.Random()\n")
        out = StringIO()
        rc = run_check([str(bad)], output_format="sarif", out=out)
        assert rc == 1
        payload = json.loads(out.getvalue())
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"]


# ----------------------------------------------------------------------
# Incremental mode
# ----------------------------------------------------------------------
class TestIncremental:
    FILES = {
        "repro/sim/base.py": "def low(x):\n    return x\n",
        "repro/sim/mid.py": (
            "from repro.sim.base import low\n\n"
            "def mid(sim):\n    sim.schedule(low(0.0), mid)\n"
        ),
        "repro/net/other.py": "def unrelated():\n    return 3\n",
    }

    def test_clean_rerun_analyzes_nothing(self, tmp_path):
        _write_tree(tmp_path, self.FILES)
        state = tmp_path / "state.json"
        first = analyze_paths([tmp_path], incremental=True, state_path=state)
        assert first.files_analyzed == 3
        second = analyze_paths([tmp_path], incremental=True, state_path=state)
        assert second.files_analyzed == 0
        assert second.files_checked == 3

    def test_change_reanalyzes_dependents_and_agrees_with_full_run(
        self, tmp_path
    ):
        _write_tree(tmp_path, self.FILES)
        state = tmp_path / "state.json"
        first = analyze_paths([tmp_path], incremental=True, state_path=state)
        assert first.findings == []
        # base.py now returns wall-clock time: mid.py's schedule() call
        # becomes a cross-file TAINT violation even though mid.py itself
        # did not change.
        (tmp_path / "repro/sim/base.py").write_text(
            "import time\n\ndef low(x):\n    return time.time()\n"
        )
        incremental = analyze_paths(
            [tmp_path], incremental=True, state_path=state
        )
        # Changed file + its dependent, but not the unrelated module.
        assert incremental.files_analyzed == 2
        full = analyze_paths([tmp_path])
        assert (
            [f.to_dict() for f in incremental.findings]
            == [f.to_dict() for f in full.findings]
        )
        assert any(
            f.rule == "TAINT" and f.path.endswith("mid.py")
            for f in incremental.findings
        )

    def test_cached_findings_replay_for_clean_files(self, tmp_path):
        files = dict(self.FILES)
        files["repro/net/other.py"] = (
            "import random\nrng = random.Random()\n"
        )
        _write_tree(tmp_path, files)
        state = tmp_path / "state.json"
        first = analyze_paths([tmp_path], incremental=True, state_path=state)
        assert any(f.rule == "DET" for f in first.findings)
        # Touch an unrelated file; the DET finding must replay from cache.
        (tmp_path / "repro/sim/mid.py").write_text(
            self.FILES["repro/sim/mid.py"] + "\n"
        )
        second = analyze_paths([tmp_path], incremental=True, state_path=state)
        assert any(f.rule == "DET" for f in second.findings)
        assert second.files_analyzed == 1

    def test_rule_change_forces_full_run(self, tmp_path):
        _write_tree(tmp_path, self.FILES)
        state = tmp_path / "state.json"
        analyze_paths([tmp_path], incremental=True, state_path=state)
        report = analyze_paths(
            [tmp_path], rule_names=["DET"], incremental=True, state_path=state
        )
        assert report.files_analyzed == 3


# ----------------------------------------------------------------------
# Acceptance fixtures: the gate fails on seeded violations
# ----------------------------------------------------------------------
class TestAcceptanceGate:
    def test_cross_function_wall_clock_to_schedule_fails_gate(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "jitter.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n\n"
            "def _now_wall():\n    return time.time()\n\n"
            "def arm(sim):\n    sim.schedule(_now_wall(), arm)\n"
        )
        assert run_check([str(tmp_path)], out=StringIO()) == 1

    def test_seconds_packets_mixing_fails_gate(self, tmp_path):
        bad = tmp_path / "repro" / "aqm" / "mix.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from repro.units import Packets, Seconds\n\n"
            "def err(delay: Seconds, backlog: Packets):\n"
            "    return delay - backlog\n"
        )
        assert run_check([str(tmp_path)], out=StringIO()) == 1

    def test_head_is_clean_under_the_baseline(self):
        out = StringIO()
        rc = run_check(
            baseline="tools/findings_baseline.json",
            require_baseline=True,
            out=out,
        )
        assert rc == 0, out.getvalue()
