"""Unit tests for the Appendix B fluid-model transfer functions."""

import math

import numpy as np
import pytest

from repro.analysis.fluid import (
    PAPER_PI2_GAINS,
    PAPER_PIE_GAINS,
    PAPER_SCAL_GAINS,
    AqmTransfer,
    PiGains,
    loop_reno_p,
    loop_reno_p2,
    loop_scal_p,
)


class TestPiGains:
    def test_paper_parameter_sets(self):
        assert (PAPER_PIE_GAINS.alpha, PAPER_PIE_GAINS.beta) == (0.125, 1.25)
        assert (PAPER_PI2_GAINS.alpha, PAPER_PI2_GAINS.beta) == (0.3125, 3.125)
        assert (PAPER_SCAL_GAINS.alpha, PAPER_SCAL_GAINS.beta) == (0.625, 6.25)

    def test_scaled(self):
        g = PAPER_PIE_GAINS.scaled(0.5)
        assert g.alpha == pytest.approx(0.0625)
        assert g.beta == pytest.approx(0.625)
        assert g.t_update == PAPER_PIE_GAINS.t_update

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PiGains(alpha=0, beta=1)
        with pytest.raises(ValueError):
            PiGains(alpha=1, beta=1, t_update=0)


class TestAqmTransfer:
    def test_constants_equation31(self):
        aqm = AqmTransfer(PiGains(alpha=0.3125, beta=3.125, t_update=0.032), r0=0.1)
        assert aqm.kappa_a == pytest.approx(0.3125 * 0.1 / 0.032)
        assert aqm.z_a == pytest.approx(0.3125 / (0.032 * (3.125 + 0.3125 / 2)))
        assert aqm.s_a == pytest.approx(10.0)

    def test_invalid_r0_rejected(self):
        with pytest.raises(ValueError):
            AqmTransfer(PAPER_PIE_GAINS, r0=0)


class TestLoopFunctions:
    def test_integrator_behaviour_at_low_frequency(self):
        # All loops contain 1/s: |L| → ∞ and phase → −90° as ω → 0.
        s = np.array([1e-6j])
        for fn, p in [(loop_reno_p, 0.01), (loop_reno_p2, 0.1), (loop_scal_p, 0.1)]:
            val = fn(s, p, 0.1, PAPER_PI2_GAINS)[0]
            assert abs(val) > 1e3
            assert math.degrees(np.angle(val)) == pytest.approx(-90, abs=5)

    def test_gain_rolls_off_at_high_frequency(self):
        s = np.array([1e-2j, 1e3j])
        for fn, p in [(loop_reno_p, 0.01), (loop_reno_p2, 0.1), (loop_scal_p, 0.1)]:
            lo, hi = np.abs(fn(s, p, 0.1, PAPER_PI2_GAINS))
            assert hi < lo

    def test_reno_p2_gain_is_linear_in_p_prime(self):
        """The PI2 plant gain κ_S = 1/p₀′ scales linearly — the core of the
        linearization claim (vs κ_R = 1/(2p₀) = 1/(2p₀′²) for direct p)."""
        s = np.array([1e-6j])  # near-DC, where the plant gain dominates
        v1 = abs(loop_reno_p2(s, 0.1, 0.1, PAPER_PI2_GAINS)[0])
        v2 = abs(loop_reno_p2(s, 0.2, 0.1, PAPER_PI2_GAINS)[0])
        assert v1 / v2 == pytest.approx(2.0, rel=0.1)

    def test_reno_p_gain_scales_inverse_p(self):
        s = np.array([1e-6j])
        v1 = abs(loop_reno_p(s, 0.01, 0.1, PAPER_PIE_GAINS)[0])
        v2 = abs(loop_reno_p(s, 0.04, 0.1, PAPER_PIE_GAINS)[0])
        assert v1 / v2 == pytest.approx(4.0, rel=0.1)

    def test_kappa_relation_between_reno_forms(self):
        """κ_R = κ_S/2 when the operating variables are numerically equal
        (the identification below eq. (34): κ_S = 1/p₀′, κ_R = 1/(2p₀))."""
        s = np.array([1e-6j])
        x = 0.3  # p₀ = p₀′ = 0.3 numerically
        direct = abs(loop_reno_p(s, x, 0.1, PAPER_PIE_GAINS)[0])
        squared = abs(loop_reno_p2(s, x, 0.1, PAPER_PIE_GAINS)[0])
        assert squared / direct == pytest.approx(2.0, rel=0.05)

    def test_operating_point_validation(self):
        s = np.array([1j])
        with pytest.raises(ValueError):
            loop_reno_p(s, 0.0, 0.1, PAPER_PIE_GAINS)
        with pytest.raises(ValueError):
            loop_reno_p2(s, 1.5, 0.1, PAPER_PI2_GAINS)
        with pytest.raises(ValueError):
            loop_scal_p(s, 0.5, 0.0, PAPER_SCAL_GAINS)

    def test_vectorized_evaluation(self):
        s = 1j * np.logspace(-3, 3, 50)
        out = loop_reno_p2(s, 0.2, 0.1, PAPER_PI2_GAINS)
        assert out.shape == s.shape
        assert np.all(np.isfinite(out))
