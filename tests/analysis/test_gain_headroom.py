"""Tests for the gain-headroom computation — the paper's ×2.5 claim.

"Because the gain margin of PI2 is flatter, it can be made more
responsive than PIE by increasing the gain factors by ×2.5 without the
gain margin dipping below zero anywhere over the full load range."
"""


import pytest

from repro.analysis.bode import margins_reno_pi2, max_stable_gain
from repro.analysis.fluid import PAPER_PI2_GAINS, PAPER_PIE_GAINS, PAPER_SCAL_GAINS

R0 = 0.1
LOAD_RANGE = (0.001, 0.01, 0.1, 0.5, 1.0)


class TestHeadroomMechanics:
    def test_matches_gain_margin(self):
        """The max stable multiplier must equal the gain margin as a
        ratio (a uniform gain scale shifts |L| without moving phase)."""
        m = margins_reno_pi2(0.1, R0, PAPER_PI2_GAINS)
        expected = 10 ** (m.gain_margin_db / 20)
        got = max_stable_gain("reno_pi2", 0.1, R0, PAPER_PI2_GAINS)
        assert got == pytest.approx(expected, rel=0.02)

    def test_unstable_point_returns_zero(self):
        assert max_stable_gain("reno_pi", 1e-4, R0, PAPER_PIE_GAINS) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            max_stable_gain("nope", 0.1, R0, PAPER_PI2_GAINS)


class TestPaperHeadroomClaim:
    def test_pi2_base_gains_admit_2_5x_everywhere(self):
        """Starting from PIE's base gains with the squared output, ×2.5
        (i.e. the PI2 defaults) must be stable over the full load range."""
        for p in LOAD_RANGE:
            headroom = max_stable_gain("reno_pi2", p, R0, PAPER_PIE_GAINS)
            assert headroom > 2.5, f"p'={p}: headroom {headroom}"

    def test_pi2_defaults_still_have_margin_to_spare(self):
        """At the deployed 2.5× gains there is still >1 headroom (the
        gain margin stays positive) everywhere."""
        for p in LOAD_RANGE:
            headroom = max_stable_gain("reno_pi2", p, R0, PAPER_PI2_GAINS)
            assert headroom > 1.1, f"p'={p}"

    def test_fixed_gain_direct_p_has_no_such_headroom(self):
        """Without the square, no constant multiplier works across the
        range: the low-p end is already unstable at ×1."""
        assert max_stable_gain("reno_pi", 1e-3, R0, PAPER_PIE_GAINS) == 0.0
        assert max_stable_gain("reno_pi", 0.5, R0, PAPER_PIE_GAINS) > 4.0

    def test_scalable_admits_double_pi2_gains(self):
        """The k = 2 gain ratio: Scalable-on-PI with 2× the PI2 gains
        (i.e. the coupled defaults) keeps positive margin everywhere."""
        for p in LOAD_RANGE:
            headroom = max_stable_gain("scal_pi", p, R0, PAPER_SCAL_GAINS)
            assert headroom > 1.1, f"p'={p}"

    def test_auto_tuned_pie_headroom_smaller_than_pi2(self):
        """PIE's stepped tuning leaves less uniform headroom at low p
        than the squared loop — the reason PI2 can be more responsive."""
        p = 0.01
        pie = max_stable_gain("reno_pie", p, R0, PAPER_PIE_GAINS)
        pi2 = max_stable_gain("reno_pi2", p, R0, PAPER_PIE_GAINS)
        assert pi2 > pie
