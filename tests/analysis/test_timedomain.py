"""Unit tests for the time-domain fluid model (Appendix B equations)."""

import math

import pytest

from repro.analysis.timedomain import FluidScenario, simulate_fluid

#: 10 Mb/s in 1448-byte segments per second.
CAP_PPS = 10e6 / (1448 * 8)


def scenario(**overrides):
    defaults = dict(
        capacity_pps=CAP_PPS,
        n_flows=5,
        base_rtt=0.1,
        alpha=0.3125,
        beta=3.125,
        kind="reno_pi2",
        duration=60.0,
    )
    defaults.update(overrides)
    return FluidScenario(**defaults)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            scenario(kind="bogus")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            scenario(capacity_pps=0)
        with pytest.raises(ValueError):
            scenario(n_flows=-1)
        with pytest.raises(ValueError):
            scenario(duration=0)

    def test_dt_must_resolve_rtt(self):
        with pytest.raises(ValueError):
            scenario(base_rtt=0.001, dt=0.01)


class TestEquilibrium:
    """Equation (19): W₀ = R₀C/N with R₀ = τ₀ + Tp, and the operating-point
    identities W₀²p₀′² = 2 (Reno/PI2) and W₀p₀′ = 2 (Scalable/PI)."""

    def test_queue_settles_on_target(self):
        r = simulate_fluid(scenario())
        assert r.tail_mean("queue_delay") == pytest.approx(0.020, rel=0.02)

    def test_window_matches_r0c_over_n(self):
        r = simulate_fluid(scenario())
        w0 = (0.1 + 0.020) * CAP_PPS / 5
        assert r.tail_mean("window") == pytest.approx(w0, rel=0.02)

    def test_pi2_operating_point_w0_p0_squared(self):
        r = simulate_fluid(scenario())
        w0 = r.tail_mean("window")
        p0 = r.tail_mean("p_prime")
        assert w0 ** 2 * p0 ** 2 == pytest.approx(2.0, rel=0.05)

    def test_scalable_operating_point_w0_p0(self):
        r = simulate_fluid(scenario(kind="scal_pi", alpha=0.625, beta=6.25))
        w0 = r.tail_mean("window")
        p0 = r.tail_mean("p_prime")
        assert w0 * p0 == pytest.approx(2.0, rel=0.05)

    def test_direct_p_operating_point(self):
        # Reno on direct p: W₀²p₀ = 2.
        r = simulate_fluid(scenario(kind="reno_pi", alpha=0.125, beta=1.25))
        w0 = r.tail_mean("window")
        p0 = r.tail_mean("p_prime")
        assert w0 ** 2 * p0 == pytest.approx(2.0, rel=0.05)

    def test_applied_probability_is_squared_for_pi2(self):
        r = simulate_fluid(scenario())
        assert r.applied_p[-1] == pytest.approx(r.p_prime[-1] ** 2)

    def test_more_flows_higher_probability(self):
        p5 = simulate_fluid(scenario()).tail_mean("p_prime")
        p20 = simulate_fluid(scenario(n_flows=20)).tail_mean("p_prime")
        assert p20 > p5


class TestDynamics:
    def test_load_step_returns_to_target(self):
        sc = scenario(
            duration=80.0,
            flows=lambda t: 5 if t < 40 else 25,
        )
        r = simulate_fluid(sc)
        tail = [
            v for t, v in zip(r.times, r.queue_delay) if t > 70.0
        ]
        assert sum(tail) / len(tail) == pytest.approx(0.020, rel=0.05)

    def test_capacity_drop_transient_recovers(self):
        sc = scenario(
            duration=80.0,
            capacity=lambda t: CAP_PPS if t < 40 else CAP_PPS / 5,
        )
        r = simulate_fluid(sc)
        peak = r.peak("queue_delay", t_from=40.0)
        assert peak > 0.020  # there is a transient...
        tail = [v for t, v in zip(r.times, r.queue_delay) if t > 70.0]
        assert sum(tail) / len(tail) == pytest.approx(0.020, rel=0.1)

    def test_pi2_higher_gains_settle_faster_than_pie_base_gains(self):
        """The responsiveness claim in the fluid domain: after a load
        step, the 2.5× gains reach the target band sooner."""

        def settle_time(alpha, beta):
            sc = scenario(
                alpha=alpha, beta=beta, duration=80.0,
                flows=lambda t: 5 if t < 40 else 25,
            )
            r = simulate_fluid(sc)
            for t, v in zip(r.times, r.queue_delay):
                if t <= 42.0:
                    continue
                if abs(v - 0.020) < 0.004:
                    # require it to stay in band for a second
                    window = [
                        u for s, u in zip(r.times, r.queue_delay)
                        if t <= s <= t + 1.0
                    ]
                    if all(abs(u - 0.020) < 0.008 for u in window):
                        return t - 40.0
            return math.inf

        fast = settle_time(0.3125, 3.125)
        slow = settle_time(0.125, 1.25)
        assert fast <= slow
