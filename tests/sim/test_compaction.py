"""Heap compaction of lazily-cancelled events.

Cancellation is lazy (the event stays in the heap), so workloads that
constantly re-arm timers accumulate dead entries.  These tests pin down
the accounting (``cancelled_pending``), the compaction trigger, and the
one property compaction must never break: the pop order of live events.
"""

import pytest

from repro.sim.engine import Simulator


def _noop():
    pass


class TestCancelledAccounting:
    def test_cancel_increments_counter(self, sim):
        ev = sim.schedule(1.0, _noop)
        assert sim.cancelled_pending == 0
        ev.cancel()
        assert sim.cancelled_pending == 1

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(1.0, _noop)
        ev.cancel()
        ev.cancel()
        ev.cancel()
        assert sim.cancelled_pending == 1

    def test_popping_cancelled_event_decrements(self, sim):
        ev = sim.schedule(1.0, _noop)
        sim.schedule(2.0, _noop)
        ev.cancel()
        sim.run(until=3.0)
        assert sim.cancelled_pending == 0
        assert sim.events_processed == 1

    def test_step_decrements_too(self, sim):
        ev = sim.schedule(1.0, _noop)
        sim.schedule(2.0, _noop)
        ev.cancel()
        assert sim.step() is True  # skips the cancelled event, runs the live one
        assert sim.cancelled_pending == 0


class TestExplicitCompact:
    def test_compact_removes_only_cancelled(self, sim):
        events = [sim.schedule(float(i), _noop) for i in range(10)]
        for ev in events[::2]:
            ev.cancel()
        removed = sim.compact()
        assert removed == 5
        assert sim.pending_events == 5
        assert sim.cancelled_pending == 0
        assert sim.compactions == 1

    def test_compact_with_nothing_to_remove_is_free(self, sim):
        sim.schedule(1.0, _noop)
        assert sim.compact() == 0
        assert sim.compactions == 0

    def test_compact_preserves_pop_order(self):
        """Live events must fire in exactly the same order with and
        without a mid-stream compaction."""

        def build(compact_at):
            sim = Simulator()
            fired = []
            cancelled = []
            for i in range(200):
                ev = sim.schedule(
                    (i % 7) * 0.5, lambda i=i: fired.append(i)
                )
                if i % 3 == 0:
                    cancelled.append(ev)
            for ev in cancelled:
                ev.cancel()
            if compact_at:
                sim.compact()
            sim.run(until=10.0)
            return fired

        assert build(compact_at=True) == build(compact_at=False)

    def test_compact_during_run_is_safe(self, sim):
        """run() holds a local reference to the heap list; an in-callback
        compaction must mutate it in place, not swap it out."""
        fired = []
        doomed = [sim.schedule(5.0 + i, _noop) for i in range(50)]

        def mid_run():
            for ev in doomed:
                ev.cancel()
            sim.compact()
            fired.append("compacted")

        sim.schedule(1.0, mid_run)
        sim.schedule(2.0, lambda: fired.append("after"))
        sim.run(until=10.0)
        assert fired == ["compacted", "after"]
        assert sim.pending_events == 0


class TestAutoCompaction:
    def test_churn_past_threshold_triggers_compaction(self, sim):
        threshold = Simulator.COMPACT_THRESHOLD
        events = [sim.schedule(100.0 + i, _noop) for i in range(threshold + 10)]
        for ev in events:
            ev.cancel()
        assert sim.compactions >= 1
        assert sim.cancelled_pending < threshold
        # All dead, so the heap is (nearly) empty after compaction.
        assert sim.pending_events <= 10

    def test_below_threshold_no_compaction(self, sim):
        events = [sim.schedule(100.0 + i, _noop) for i in range(100)]
        for ev in events:
            ev.cancel()
        assert sim.compactions == 0
        assert sim.cancelled_pending == 100

    def test_mostly_live_heap_not_compacted(self, sim):
        """Compaction requires dead entries to outnumber live ones —
        a big healthy heap with a few cancellations is left alone."""
        threshold = Simulator.COMPACT_THRESHOLD
        live = [sim.schedule(100.0 + i, _noop) for i in range(4 * threshold)]
        dead = [sim.schedule(200.0 + i, _noop) for i in range(threshold + 5)]
        for ev in dead:
            ev.cancel()
        assert sim.compactions == 0
        assert sim.pending_events == len(live) + len(dead)

    def test_heavy_rearm_churn_bounds_heap(self):
        """The retransmission-timer pattern: every tick cancels and
        re-arms.  With compaction the heap stays proportional to live
        events instead of growing with total cancellations."""
        sim = Simulator()
        state = {"timer": None, "ticks": 0}

        def rearm():
            state["ticks"] += 1
            if state["timer"] is not None:
                state["timer"].cancel()
            state["timer"] = sim.schedule(1000.0, _noop)  # never fires
            if state["ticks"] < 5000:
                sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        sim.run(until=20.0)
        assert state["ticks"] == 5000
        assert sim.compactions >= 1
        # 5000 cancellations happened; the heap must not retain them.
        assert sim.pending_events < Simulator.COMPACT_THRESHOLD + 10

    def test_churn_does_not_change_results(self):
        """Same workload with the auto-compactor effectively disabled
        (huge threshold) fires the same sequence."""

        def run(threshold):
            sim = Simulator()
            old = Simulator.COMPACT_THRESHOLD
            Simulator.COMPACT_THRESHOLD = threshold
            try:
                fired = []
                pending = []
                for i in range(3000):
                    ev = sim.schedule(
                        1.0 + (i % 11) * 0.1, lambda i=i: fired.append(i)
                    )
                    pending.append(ev)
                    if i % 2 == 0:
                        pending[i // 2].cancel()
                sim.run(until=50.0)
                return fired, sim.events_processed
            finally:
                Simulator.COMPACT_THRESHOLD = old

        assert run(threshold=64) == run(threshold=10**9)


class TestPeriodicTimerChurn:
    def test_stopped_timer_leaves_no_live_event(self, sim):
        timer = sim.every(0.5, _noop)
        sim.run(until=2.1)
        assert timer.fires == 4
        timer.stop()
        assert sim.cancelled_pending == 1
        sim.run(until=10.0)
        assert timer.fires == 4

    def test_counter_is_upper_bound_after_fired_event_cancel(self, sim):
        """Cancelling an event that already fired still bumps the tally
        (documented upper-bound semantics); compact() resets it."""
        ev = sim.schedule(1.0, _noop)
        sim.run(until=2.0)
        ev.cancel()
        assert sim.cancelled_pending == 1
        assert sim.pending_events == 0
        sim.compact()
        assert sim.cancelled_pending == 0


class TestRunSemanticsUnchanged:
    """The hot-loop rewrite must not alter run()'s contract."""

    def test_clock_lands_exactly_on_until(self, sim):
        sim.schedule(0.3, _noop)
        sim.run(until=1.0)
        assert sim.now == 1.0

    def test_back_to_back_runs_compose(self, sim):
        fired = []
        for t in (0.5, 1.5, 2.5):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(until=1.0)
        sim.run(until=3.0)
        assert fired == [0.5, 1.5, 2.5]

    def test_callback_error_wrapped_with_context(self, sim):
        from repro.errors import CallbackError

        def boom():
            raise RuntimeError("kaput")

        sim.schedule(1.25, boom)
        with pytest.raises(CallbackError) as excinfo:
            sim.run(until=2.0)
        assert excinfo.value.sim_time == 1.25
        assert "boom" in str(excinfo.value)

    def test_events_processed_persisted_on_failure(self, sim):
        def boom():
            raise RuntimeError("kaput")

        sim.schedule(0.5, _noop)
        sim.schedule(1.0, boom)
        with pytest.raises(Exception):
            sim.run(until=2.0)
        # The noop completed; the failing callback does not count (the
        # increment is post-return, matching the pre-rewrite behaviour).
        assert sim.events_processed == 1
