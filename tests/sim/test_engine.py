"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_event_fires_at_scheduled_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run(10.0)
        assert seen == [1.5]

    def test_at_absolute_time(self, sim):
        seen = []
        sim.at(3.0, lambda: seen.append(sim.now))
        sim.run(10.0)
        assert seen == [3.0]

    def test_events_fire_in_time_order(self, sim):
        seen = []
        sim.schedule(3.0, lambda: seen.append(3))
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(10.0)
        assert seen == [1, 2, 3]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run(2.0)
        assert seen == list(range(10))

    def test_args_are_passed(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "payload")
        sim.run(2.0)
        assert seen == ["payload"]

    def test_zero_delay_runs_after_current_instant(self, sim):
        seen = []

        def first():
            sim.schedule(0.0, lambda: seen.append("nested"))
            seen.append("first")

        sim.schedule(1.0, first)
        sim.run(2.0)
        assert seen == ["first", "nested"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self, sim):
        sim.run(5.0)
        with pytest.raises(ValueError):
            sim.at(4.0, lambda: None)


class TestRun:
    def test_run_stops_at_until(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run(2.0)
        assert seen == []
        assert sim.now == 2.0

    def test_run_is_composable(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(3.0, lambda: seen.append(3))
        sim.run(2.0)
        sim.run(4.0)
        assert seen == [1, 3]

    def test_run_backwards_rejected(self, sim):
        sim.run(5.0)
        with pytest.raises(ValueError):
            sim.run(1.0)

    def test_events_scheduled_during_run_fire(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run(5.0)
        assert seen == [2.0]

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(10.0)
        assert sim.events_processed == 5

    def test_step_processes_one_event(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        assert sim.step() is True
        assert seen == [1]

    def test_step_on_empty_heap_returns_false(self, sim):
        assert sim.step() is False


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        ev = sim.schedule(1.0, lambda: seen.append(1))
        ev.cancel()
        sim.run(2.0)
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run(2.0)

    def test_cancel_after_firing_is_harmless(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.run(2.0)
        ev.cancel()


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        seen = []
        sim.every(1.0, lambda: seen.append(sim.now))
        sim.run(3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_start_delay_override(self, sim):
        seen = []
        sim.every(1.0, lambda: seen.append(sim.now), start_delay=0.25)
        sim.run(2.5)
        assert seen == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self, sim):
        seen = []
        timer = sim.every(1.0, lambda: seen.append(sim.now))
        sim.schedule(2.5, timer.stop)
        sim.run(10.0)
        assert seen == [1.0, 2.0]
        assert timer.stopped

    def test_stop_from_within_callback(self, sim):
        seen = []
        timer = sim.every(1.0, lambda: (seen.append(sim.now), timer.stop()))
        sim.run(10.0)
        assert seen == [1.0]

    def test_fire_count(self, sim):
        timer = sim.every(0.5, lambda: None)
        sim.run(2.4)
        assert timer.fires == 4

    def test_non_positive_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.every(0.0, lambda: None)


class TestStreamLane:
    """The batcher-facing API: reserved seqs, the stream lane, horizon."""

    def test_reserve_seq_shares_the_schedule_counter(self, sim):
        a = sim.schedule(1.0, lambda: None)
        reserved = sim.reserve_seq()
        b = sim.schedule(1.0, lambda: None)
        assert a.seq < reserved < b.seq

    def test_stream_events_merge_with_heap_in_time_order(self, sim):
        seen = []
        sim.schedule(2.0, lambda: seen.append("heap"))
        sim.stream_schedule(1.0, sim.reserve_seq(), lambda: seen.append("stream"))
        sim.schedule(3.0, lambda: seen.append("late"))
        sim.run(5.0)
        assert seen == ["stream", "heap", "late"]

    def test_same_time_ties_break_on_seq(self, sim):
        seen = []
        first = sim.reserve_seq()
        sim.schedule(1.0, lambda: seen.append("heap"))  # later seq than first
        sim.stream_schedule(1.0, first, lambda: seen.append("stream"))
        second = sim.reserve_seq()  # later seq than the heap event
        sim.stream_schedule(1.0, second, lambda: seen.append("stream2"))
        sim.run(2.0)
        assert seen == ["stream", "heap", "stream2"]

    def test_at_reserved_is_the_unbatched_twin(self, sim):
        seen = []
        seq = sim.reserve_seq()
        sim.at_reserved(1.0, seq, seen.append, "x")
        sim.run(2.0)
        assert seen == ["x"]

    def test_scheduling_into_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(1.0)
        with pytest.raises(ValueError):
            sim.stream_schedule(0.5, sim.reserve_seq(), lambda: None)
        with pytest.raises(ValueError):
            sim.at_reserved(0.5, sim.reserve_seq(), lambda: None)

    def test_pending_events_counts_both_lanes(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.stream_schedule(2.0, sim.reserve_seq(), lambda: None)
        assert sim.pending_events == 2

    def test_peek_spans_both_lanes(self, sim):
        assert sim.peek() is None
        ev = sim.schedule(2.0, lambda: None)
        assert sim.peek() == (2.0, ev.seq)
        seq = sim.reserve_seq()
        sim.stream_schedule(1.0, seq, lambda: None)
        assert sim.peek() == (1.0, seq)
        assert sim.peek_time() == 1.0

    def test_step_dispatches_stream_events(self, sim):
        seen = []
        sim.stream_schedule(1.0, sim.reserve_seq(), lambda: seen.append(sim.now))
        assert sim.step()
        assert seen == [1.0]
        assert not sim.step()

    def test_advance_to_moves_clock_and_counts(self, sim):
        sim.advance_to(1.5)
        assert sim.now == 1.5
        assert sim.events_batched == 1
        with pytest.raises(ValueError):
            sim.advance_to(1.0)

    def test_note_batch_break_counter(self, sim):
        assert sim.batch_breaks == 0
        sim.note_batch_break()
        assert sim.batch_breaks == 1

    def test_horizon_set_only_inside_run(self, sim):
        assert sim.horizon is None
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.horizon))
        sim.run(4.0)
        assert seen == [4.0]
        assert sim.horizon is None


class TestSchedulerBackends:
    """The timer-wheel backend vs the reference heap."""

    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Simulator(scheduler="fifo")

    def test_heap_backend_still_selectable(self):
        sim = Simulator(scheduler="heap")
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run(2.0)
        assert seen == [1.0]

    def test_far_future_events_ride_overflow_and_fire(self, sim):
        # Anything past the wheel's one-rotation safety window lands in
        # the overflow heap; it must still fire in exact time order.
        seen = []
        sim.schedule(5.0, lambda: seen.append(5.0))   # overflow lane
        sim.schedule(0.1, lambda: seen.append(0.1))   # wheel lane
        sim.run(10.0)
        assert seen == [0.1, 5.0]
        assert sim.pending_events == 0

    def test_wheel_spans_many_rotations(self, sim):
        # 256 slots x ~1 ms: t=10 s is ~40 rotations out.  Rearming
        # timers walk the epoch forward through all of them.
        seen = []

        def tick():
            seen.append(sim.now)
            if sim.now < 10.0:
                sim.schedule(0.5, tick)

        sim.schedule(0.5, tick)
        sim.run(11.0)
        assert seen == [0.5 * (i + 1) for i in range(20)]

    def test_sub_slot_bursts_keep_schedule_order(self, sim):
        # Many same-slot (even same-time) events: FIFO by seq.
        seen = []
        for i in range(50):
            sim.schedule(0.0001, lambda i=i: seen.append(i))
        sim.run(1.0)
        assert seen == list(range(50))

    def test_call_later_events_are_recycled(self, sim):
        sim.call_later(0.01, lambda: None)
        sim.run(1.0)
        assert len(sim._pool) == 1  # dispatched event went to the freelist
        sim.call_later(0.01, lambda: None)
        assert len(sim._pool) == 0  # reused, not allocated
        sim.run(2.0)
        assert len(sim._pool) == 1

    def test_handled_events_are_never_pooled(self, sim):
        # schedule() hands out a cancellable handle; recycling it would
        # alias a stale cancel() onto an unrelated future event.
        ev = sim.schedule(0.01, lambda: None)
        sim.run(1.0)
        assert len(sim._pool) == 0
        ev.cancel()  # harmless after firing, and cannot hit a reused slot
        sim.call_later(0.01, lambda: None)
        sim.run(2.0)
        assert sim.events_processed == 2


def _drive(scheduler, ops):
    """Apply one randomized workload script to a backend; return its
    dispatch trace.  Callback behaviour is keyed by op kind so both
    backends execute byte-for-byte the same program:

    * ``later``  — relative schedule; ``rearm`` callbacks reschedule a
      child, ``flap`` callbacks cancel the oldest pending sibling
      *mid-drain* (the fault-injection pattern: timers torn down while
      the wheel is dispatching their bucket).
    * ``cancel`` — cancel a pending event from outside the run loop.
    * ``stream`` — a batcher continuation through the stream lane.
    * ``pooled`` — a fire-and-forget ``call_later`` (freelisted event).
    * ``drain``  — advance the horizon a bit (events straddle run()s).
    """
    import itertools as _it

    sim = Simulator(scheduler=scheduler)
    trace = []
    live = []
    ids = _it.count()

    def fire(i, kind, delay):
        trace.append((sim.now, i))
        if kind == "rearm":
            live.append(sim.schedule(delay + 0.003, fire, next(ids), "plain", 0.0))
        elif kind == "flap" and live:
            live.pop(0).cancel()

    for op in ops:
        if op[0] == "later":
            _, delay, kind = op
            live.append(sim.schedule(delay, fire, next(ids), kind, delay))
        elif op[0] == "cancel":
            if live:
                live.pop(op[1] % len(live)).cancel()
        elif op[0] == "stream":
            seq = sim.reserve_seq()
            sim.stream_schedule(sim.now + op[1], seq, fire, next(ids), "plain", 0.0)
        elif op[0] == "pooled":
            sim.call_later(op[1], fire, next(ids), "plain", 0.0)
        else:  # drain
            sim.run(sim.now + op[1])
    sim.run(sim.now + 5.0)
    assert sim.pending_events == 0
    return trace


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    # Delays straddle all three placements: sub-slot dense, in-window,
    # and past the one-rotation safety margin (overflow lane).
    _DELAY = st.one_of(
        st.floats(min_value=0.0, max_value=0.001),
        st.floats(min_value=0.0, max_value=0.2),
        st.floats(min_value=0.2, max_value=2.0),
    )
    _OP = st.one_of(
        st.tuples(st.just("later"), _DELAY,
                  st.sampled_from(["plain", "rearm", "flap"])),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("stream"), st.floats(min_value=0.0, max_value=0.05)),
        st.tuples(st.just("pooled"), _DELAY),
        st.tuples(st.just("drain"), st.floats(min_value=0.0, max_value=0.5)),
    )

    class TestPopOrderParity:
        """Property: wheel and heap produce the identical dispatch
        stream — same (time, id) sequence — for arbitrary interleavings
        of scheduling, cancellation (incl. mid-drain fault flaps),
        stream-lane traffic, and staged horizons."""

        @settings(max_examples=50, deadline=None)
        @given(ops=st.lists(_OP, max_size=60))
        def test_wheel_trace_equals_heap_trace(self, ops):
            assert _drive("wheel", ops) == _drive("heap", ops)

except ImportError:  # pragma: no cover - hypothesis is in the dev env
    def test_wheel_trace_equals_heap_trace_fallback():
        ops = [("later", 0.1 * i % 0.7, ("plain", "rearm", "flap")[i % 3])
               for i in range(40)] + [("drain", 0.2), ("cancel", 3)]
        assert _drive("wheel", ops) == _drive("heap", ops)
