"""Unit tests for the invariant checker, the PI divergence guard, the
engine's structured error handling and the watchdog."""

import math

import pytest

from repro.aqm.pi import PiAqm, PIController
from repro.errors import (
    CallbackError,
    ControllerDivergence,
    InvariantViolation,
    WatchdogExceeded,
)
from repro.net.queue import AQMQueue
from repro.sim.engine import Watchdog
from repro.sim.invariants import InvariantChecker
from tests.conftest import make_packet


# ----------------------------------------------------------------------
# Invariant checker
# ----------------------------------------------------------------------
class BrokenAqm:
    """An AQM stub whose probability leaves [0,1] — the silent failure
    mode the checker exists to catch."""

    def __init__(self, probability):
        self.probability = probability
        self.raw_probability = 0.5


class TestInvariantChecker:
    def test_clean_queue_passes(self, sim):
        q = AQMQueue(sim, None, 10e6)
        checker = InvariantChecker(sim, queue=q)
        for i in range(5):
            q.enqueue(make_packet(seq=i))
        q.dequeue()
        checker.check_now()
        assert checker.checks_run == 1

    def test_detects_probability_above_one(self, sim):
        checker = InvariantChecker(sim, aqm=BrokenAqm(1.3))
        with pytest.raises(InvariantViolation) as info:
            checker.check_now()
        assert info.value.invariant == "probability_range"
        assert "1.3" in str(info.value)

    def test_detects_nan_probability(self, sim):
        checker = InvariantChecker(sim, aqm=BrokenAqm(float("nan")))
        with pytest.raises(InvariantViolation) as info:
            checker.check_now()
        assert info.value.invariant == "probability_range"

    def test_detects_negative_probability(self, sim):
        checker = InvariantChecker(sim, aqm=BrokenAqm(-0.01))
        with pytest.raises(InvariantViolation):
            checker.check_now()

    def test_detects_conservation_break(self, sim):
        q = AQMQueue(sim, None, 10e6)
        q.enqueue(make_packet())
        q.stats.arrived += 3  # corrupt the books
        checker = InvariantChecker(sim, queue=q)
        with pytest.raises(InvariantViolation) as info:
            checker.check_now()
        assert info.value.invariant == "conservation"
        assert info.value.context["arrived"] == q.stats.arrived

    def test_detects_occupancy_break(self, sim):
        q = AQMQueue(sim, None, 10e6)
        q.enqueue(make_packet())
        q.enqueue(make_packet())
        q._fifo.pop()  # packet vanishes without accounting
        q._bytes -= 1500
        checker = InvariantChecker(sim, queue=q)
        with pytest.raises(InvariantViolation) as info:
            checker.check_now()
        assert info.value.invariant == "conservation"

    def test_violation_carries_sim_time_and_component(self, sim):
        checker = InvariantChecker(sim, aqm=BrokenAqm(2.0), label="bn0")
        sim.schedule(4.25, checker.check_now)
        with pytest.raises(InvariantViolation) as info:
            sim.run(10.0)
        assert info.value.sim_time == 4.25
        assert info.value.component == "bn0"

    def test_periodic_checking_via_timer(self, sim):
        q = AQMQueue(sim, None, 10e6)
        checker = InvariantChecker(sim, queue=q, check_interval=0.1)
        checker.start()
        sim.run(1.05)
        assert checker.checks_run == 10
        checker.stop()
        sim.run(2.0)
        assert checker.checks_run == 10

    def test_queue_without_stats_skips_conservation(self, sim):
        class BareQueue:
            def packet_length(self):
                return 0

            def byte_length(self):
                return 0

        checker = InvariantChecker(sim, queue=BareQueue())
        checker.check_now()  # must not raise
        assert checker.checks_run == 1

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            InvariantChecker(sim, check_interval=0.0)


# ----------------------------------------------------------------------
# PI controller divergence guard
# ----------------------------------------------------------------------
class TestControllerDivergenceGuard:
    def test_nan_input_raises_structured_error(self):
        ctl = PIController(alpha=0.3125, beta=3.125, target=0.02)
        with pytest.raises(ControllerDivergence) as info:
            ctl.update(float("nan"))
        assert info.value.component == "PIController"
        assert not math.isnan(ctl.p)  # state not corrupted

    def test_infinite_input_raises(self):
        ctl = PIController(alpha=0.3125, beta=3.125, target=0.02)
        with pytest.raises(ControllerDivergence):
            ctl.update(float("inf"))

    def test_finite_input_still_works(self):
        ctl = PIController(alpha=0.3125, beta=3.125, target=0.02)
        p = ctl.update(0.05)
        assert 0.0 <= p <= 1.0

    def test_guard_applies_through_pi2_aqm(self, sim, rng):
        """A NaN delay measurement must surface as ControllerDivergence,
        not poison p and keep running."""
        from repro.core.pi2 import Pi2Aqm

        aqm = Pi2Aqm(rng=rng)

        class NanQueue:
            def byte_length(self):
                return 0

            def packet_length(self):
                return 0

            def queue_delay(self):
                return float("nan")

        aqm.attach(sim, NanQueue())
        with pytest.raises(ControllerDivergence):
            sim.run(0.1)
        aqm.detach()

    def test_broken_aqm_detected_by_checker_in_experiment(self, sim, rng):
        """End-to-end: a sabotaged PiAqm emitting p > 1 is caught by the
        periodic invariant checker with sim-time context."""
        aqm = PiAqm(rng=rng)
        aqm.controller.p = 7.5  # sabotage: out-of-range probability
        checker = InvariantChecker(sim, aqm=aqm, check_interval=0.05)
        checker.start()
        with pytest.raises(InvariantViolation) as info:
            sim.run(1.0)
        assert info.value.sim_time == pytest.approx(0.05)
        assert info.value.invariant == "probability_range"


# ----------------------------------------------------------------------
# Engine: structured callback errors, state restoration, watchdog
# ----------------------------------------------------------------------
class TestEngineErrorHandling:
    def test_running_flag_reset_after_callback_error(self, sim):
        def boom():
            raise RuntimeError("kaput")

        sim.schedule(1.0, boom)
        with pytest.raises(CallbackError):
            sim.run(10.0)
        assert not sim._running
        # The engine stays usable: a fresh run processes new events.
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run(10.0)
        assert fired == [2.0]

    def test_callback_error_carries_time_and_name(self, sim):
        def exploding_callback():
            raise ValueError("inner detail")

        sim.schedule(2.5, exploding_callback)
        with pytest.raises(CallbackError) as info:
            sim.run(10.0)
        err = info.value
        assert err.sim_time == 2.5
        assert "exploding_callback" in err.callback
        assert isinstance(err.__cause__, ValueError)
        assert "inner detail" in str(err)

    def test_clock_left_at_failing_event(self, sim):
        def boom():
            raise RuntimeError("x")

        sim.schedule(3.0, boom)
        with pytest.raises(CallbackError):
            sim.run(10.0)
        assert sim.now == 3.0

    def test_structured_errors_pass_through_unwrapped(self, sim):
        def raise_structured():
            raise ControllerDivergence("diverged", component="PI")

        sim.schedule(1.5, raise_structured)
        with pytest.raises(ControllerDivergence) as info:
            sim.run(10.0)
        # Not double-wrapped in CallbackError; sim_time filled in.
        assert info.value.sim_time == 1.5

    def test_step_resets_running_flag_on_error(self, sim):
        def boom():
            raise RuntimeError("x")

        sim.schedule(0.5, boom)
        with pytest.raises(CallbackError):
            sim.step()
        assert not sim._running


class TestWatchdog:
    def test_event_budget_enforced(self, sim):
        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        sim.set_watchdog(max_events=250)
        with pytest.raises(WatchdogExceeded) as info:
            sim.run(1e9)
        assert info.value.sim_time is not None
        assert sim.events_processed == 250
        assert not sim._running

    def test_budget_counts_per_run_not_lifetime(self, sim):
        """The budget applies to each run() call, not cumulative events."""
        for _ in range(3):
            for i in range(10):
                sim.schedule(0.001 * (i + 1), lambda: None)
            sim.set_watchdog(max_events=50)
            sim.run(sim.now + 1.0)  # 10 events < 50: fine every time

    def test_wall_clock_budget(self, sim):
        def loop():
            sim.schedule(1e-9, loop)

        sim.schedule(0.0, loop)
        sim.set_watchdog(max_wall_seconds=0.05)
        with pytest.raises(WatchdogExceeded):
            sim.run(1e9)

    def test_no_watchdog_runs_to_completion(self, sim):
        fired = []
        for i in range(100):
            sim.schedule(0.01 * i, lambda i=i: fired.append(i))
        sim.run(10.0)
        assert len(fired) == 100

    def test_watchdog_validation(self):
        with pytest.raises(ValueError):
            Watchdog(max_events=0)
        with pytest.raises(ValueError):
            Watchdog(max_wall_seconds=-1.0)
