"""Unit tests for seeded named random streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_give_independent_streams(self):
        streams = RandomStreams(1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("x").random()
        b = RandomStreams(7).stream("x").random()
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_independent_of_request_order(self):
        s1 = RandomStreams(3)
        s2 = RandomStreams(3)
        s1.stream("first")
        v1 = s1.stream("second").random()
        v2 = s2.stream("second").random()
        assert v1 == v2

    def test_fork_namespaces_streams(self):
        parent = RandomStreams(5)
        child = parent.fork("sub")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_is_reproducible(self):
        a = RandomStreams(5).fork("sub").stream("x").random()
        b = RandomStreams(5).fork("sub").stream("x").random()
        assert a == b
