"""Cross-validation: the packet-level simulator vs the fluid model.

Two completely independent implementations of the same system — the
event-driven packet simulator (repro.sim/net/tcp) and the Appendix B
delay-differential fluid model (repro.analysis.timedomain) — must agree
on the steady-state operating point.  This is the strongest internal
consistency check the repository has: a bug in either substrate would
show up as a disagreement here.
"""

import pytest

from repro.analysis.timedomain import FluidScenario, simulate_fluid
from repro.harness import MBPS, pi2_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup

CAP_BPS = 10 * MBPS
CAP_PPS = CAP_BPS / (1448 * 8)
RTT = 0.1


def packet_run(n_flows, duration=50.0):
    exp = Experiment(
        capacity_bps=CAP_BPS,
        duration=duration,
        warmup=duration / 2,
        aqm_factory=pi2_factory(),
        flows=[FlowGroup(cc="reno", count=n_flows, rtt=RTT, label="x")],
    )
    return run_experiment(exp)


def fluid_run(n_flows, duration=60.0):
    return simulate_fluid(
        FluidScenario(
            capacity_pps=CAP_PPS,
            n_flows=n_flows,
            base_rtt=RTT,
            alpha=0.3125,
            beta=3.125,
            kind="reno_pi2",
            duration=duration,
        )
    )


class TestSteadyStateAgreement:
    @pytest.mark.parametrize("n_flows", [5, 10])
    def test_queue_delay_agrees(self, n_flows):
        packet = packet_run(n_flows)
        fluid = fluid_run(n_flows)
        packet_delay = packet.sojourn_summary()["mean"]
        fluid_delay = fluid.tail_mean("queue_delay")
        assert packet_delay == pytest.approx(fluid_delay, abs=0.008)

    @pytest.mark.parametrize("n_flows", [5, 10])
    def test_probability_agrees(self, n_flows):
        packet = packet_run(n_flows)
        fluid = fluid_run(n_flows)
        packet_p = packet.raw_probability.mean(25.0)
        fluid_p = fluid.tail_mean("p_prime")
        # The packet sim pays loss-recovery costs the fluid model doesn't,
        # so its p' runs slightly higher; agree within 40 % relative.
        assert packet_p == pytest.approx(fluid_p, rel=0.4)

    def test_throughput_agrees(self):
        packet = packet_run(5)
        fluid = fluid_run(5)
        fluid_rate = 5 * fluid.tail_mean("window") / (RTT + 0.020)  # pkts/s
        packet_rate = sum(packet.goodputs("x")) / (1448 * 8)
        # The fluid model carries no headers, retransmissions or recovery
        # dead-time, so the packet sim's goodput sits below it by those
        # overheads (~7 % headers/util + recovery costs).
        assert 0.7 * fluid_rate < packet_rate <= fluid_rate * 1.02
