"""Integration oracle: measured steady-state windows vs Appendix A laws.

Each test runs one flow against a constant-probability marker/dropper on a
fast link (so queueing is negligible and the RTT is the configured base
RTT) and compares the goodput-derived mean window with the closed form.

Loss-driven flows (Reno, Cubic) run below the law because NewReno recovery
without SACK pays real throughput costs under i.i.d. loss — the tests
bound the ratio rather than pin it.  ECN-driven flows (ECN-Cubic, DCTCP)
lose nothing to recovery and match tightly.
"""

import pytest

from repro.aqm.fixed import DeterministicMarker, FixedProbabilityAqm
from repro.analysis import steady_state as ss
from repro.harness.experiment import Experiment, FlowGroup, run_experiment

MSS = 1448
RTT = 0.04


def measure_window(cc: str, p: float, duration=50.0, deterministic=False, seed=3):
    def factory(rng):
        if deterministic:
            return DeterministicMarker(p)
        return FixedProbabilityAqm(p, rng)

    exp = Experiment(
        capacity_bps=200e6,
        duration=duration,
        warmup=15.0,
        aqm_factory=factory,
        flows=[FlowGroup(cc=cc, count=1, rtt=RTT, label="x")],
        seed=seed,
        record_sojourns=False,
    )
    result = run_experiment(exp)
    rate = sum(result.goodputs("x"))
    return rate * RTT / (MSS * 8)


class TestRenoLaw:
    """Equation (5): W = 1.22/√p."""

    def test_low_p_matches(self):
        w = measure_window("reno", 0.003)
        assert w / ss.window_reno(0.003) == pytest.approx(1.0, abs=0.2)

    def test_moderate_p_within_recovery_costs(self):
        w = measure_window("reno", 0.01)
        assert 0.6 < w / ss.window_reno(0.01) <= 1.1

    def test_square_root_exponent(self):
        """W(p)/W(4p) ≈ 2 — the exponent, independent of the constant."""
        w1 = measure_window("reno", 0.0025)
        w2 = measure_window("reno", 0.01)
        assert w1 / w2 == pytest.approx(2.0, rel=0.25)


class TestCRenoLaw:
    """Equation (7): W = 1.68/√p for Cubic at low rate·RTT."""

    def test_ecn_cubic_matches_tightly(self):
        w = measure_window("ecn-cubic", 0.01)
        assert w / ss.window_creno(0.01) == pytest.approx(1.0, abs=0.15)

    def test_loss_cubic_within_recovery_costs(self):
        w = measure_window("cubic", 0.01)
        assert 0.55 < w / ss.window_creno(0.01) <= 1.1

    def test_creno_above_reno(self):
        """The 1.68 vs 1.22 constants: CReno sustains a larger window at
        the same signal probability (both measured via ECN to exclude
        recovery-cost asymmetry; reno has no ECN variant here so compare
        cubic-ecn against the analytic reno law)."""
        w = measure_window("ecn-cubic", 0.01)
        assert w > ss.window_reno(0.01)


class TestDctcpLaw:
    """Equation (11): W = 2/p under probabilistic marking."""

    @pytest.mark.parametrize("p", [0.02, 0.05, 0.1])
    def test_matches_bernoulli_marker(self, p):
        w = measure_window("dctcp", p)
        assert w / ss.window_dctcp(p) == pytest.approx(1.0, abs=0.15)

    def test_matches_deterministic_marker(self):
        w = measure_window("dctcp", 0.05, deterministic=True)
        assert w / ss.window_dctcp(0.05) == pytest.approx(1.0, abs=0.15)

    def test_linear_exponent(self):
        """W(p)/W(2p) ≈ 2: B = 1, the defining Scalable property."""
        w1 = measure_window("dctcp", 0.04)
        w2 = measure_window("dctcp", 0.08)
        assert w1 / w2 == pytest.approx(2.0, rel=0.2)


class TestScalabilityContrast:
    """Section 2: signals per RTT shrink for Classic, not for Scalable."""

    def test_dctcp_signal_rate_constant_reno_shrinks(self):
        # c = p·W measured at two probabilities.
        c_reno = [p * measure_window("reno", p) for p in (0.0025, 0.01)]
        c_dctcp = [p * measure_window("dctcp", p) for p in (0.04, 0.16)]
        # Reno: c halves as p quarters (W doubles). DCTCP: c constant ≈ 2.
        assert c_reno[0] / c_reno[1] == pytest.approx(0.5, rel=0.35)
        assert c_dctcp[0] == pytest.approx(2.0, rel=0.3)
        assert c_dctcp[1] == pytest.approx(2.0, rel=0.3)
