"""Further DualQ dynamics tests: controller behaviour and overload."""


from repro.aqm.dualq import DualQueueCoupledAqm
from repro.harness.topology import Dumbbell
from repro.net.packet import ECN
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.udp import UdpSource


def build(capacity=20e6, seed=2, **kwargs):
    sim = Simulator()
    streams = RandomStreams(seed)
    queue = DualQueueCoupledAqm(sim, capacity, rng=streams.stream("aqm"), **kwargs)
    bed = Dumbbell(sim, streams, capacity, aqm=None, queue=queue)
    return sim, streams, queue, bed


class TestControllerDynamics:
    def test_p_prime_rises_under_classic_load(self):
        sim, streams, queue, bed = build()
        for _ in range(5):
            bed.add_tcp_flow("cubic", rtt=0.02)
        sim.run(15.0)
        assert queue.controller.p > 0.0
        assert queue.classic_probability > 0.0

    def test_c_queue_delay_held_near_target(self):
        sim, streams, queue, bed = build()
        for _ in range(5):
            bed.add_tcp_flow("cubic", rtt=0.02)
        sim.run(20.0)
        c_delay = queue.estimator.delay(queue._c_bytes)
        assert c_delay < 0.060

    def test_pure_scalable_load_controlled_by_native_threshold(self):
        sim, streams, queue, bed = build()
        for _ in range(4):
            bed.add_tcp_flow("dctcp", rtt=0.02)
        sim.run(15.0)
        # No classic backlog → p' stays near zero; the shallow native
        # threshold does the marking.
        assert queue.controller.p < 0.05
        assert queue.l_stats.ce_marked > 0

    def test_udp_flood_in_classic_queue_bounded_by_tail_drop(self):
        sim, streams, queue, bed = build(buffer_packets=200)
        source = UdpSource(sim, 99, transmit=queue.enqueue, rate_bps=40e6)
        bed._fwd_pipes[99] = None  # route to default sink
        source.start(0.0)
        sim.run(5.0)
        assert queue.packet_length() <= 200
        assert queue.stats.tail_dropped > 0


class TestAccounting:
    def test_queue_stats_balance(self):
        sim, streams, queue, bed = build()
        bed.add_tcp_flow("dctcp", rtt=0.02)
        bed.add_tcp_flow("cubic", rtt=0.02)
        sim.run(10.0)
        s = queue.stats
        assert queue.l_stats.enqueued + queue.c_stats.enqueued == s.enqueued
        assert s.dequeued <= s.enqueued

    def test_byte_length_consistent(self):
        # Standalone queue (no link draining it behind our back).
        import random

        from tests.conftest import make_packet

        sim = Simulator()
        queue = DualQueueCoupledAqm(sim, 10e6, rng=random.Random(1))
        queue.enqueue(make_packet(ecn=ECN.ECT1, size=1000))
        queue.enqueue(make_packet(ecn=ECN.NOT_ECT, size=500))
        assert queue.byte_length() == 1500
        queue.dequeue()
        queue.dequeue()
        assert queue.byte_length() == 0
