"""Sanity runs for each canned scenario at reduced duration.

Every scenario builder must produce a runnable experiment whose headline
metric lands in a physically sensible band — a guard against config rot
(wrong rates, broken flow schedules) that unit tests on the dataclasses
alone would miss.
"""


from repro.harness import (
    MBPS,
    heavy_tcp,
    light_tcp,
    pi2_factory,
    run_experiment,
    tcp_plus_udp,
    varying_capacity,
    varying_intensity,
)


class TestScenarioRuns:
    def test_light_tcp(self):
        r = run_experiment(light_tcp(pi2_factory(), duration=15.0))
        assert 0.5 * 10 * MBPS < r.total_goodput_bps() < 10.5 * MBPS

    def test_heavy_tcp(self):
        r = run_experiment(heavy_tcp(pi2_factory(), duration=15.0))
        assert r.mean_utilization() > 0.9
        assert len(r.goodputs("reno")) == 50

    def test_tcp_plus_udp_overload_is_real(self):
        r = run_experiment(tcp_plus_udp(pi2_factory(), duration=15.0))
        # The UDP groups alone overload the link; utilization is pinned.
        assert r.mean_utilization() > 0.95

    def test_varying_intensity_flow_schedule(self):
        exp = varying_intensity(pi2_factory(), stage=4.0)
        r = run_experiment(exp)
        bed = r.bed
        # 50 senders total were created (10 + 20 + 20).
        assert len(bed.senders) == 50
        # The stage-3-only group stopped before the end.
        stopped = sum(1 for s in bed.senders.values() if s.completed)
        assert stopped >= 20

    def test_varying_capacity_final_rate(self):
        exp = varying_capacity(pi2_factory(), stage=4.0)
        r = run_experiment(exp)
        assert r.bed.link.capacity_bps == 100 * MBPS  # back at the high rate

    def test_all_scenarios_keep_queue_bounded(self):
        for build in (light_tcp, heavy_tcp):
            r = run_experiment(build(pi2_factory(), duration=12.0))
            assert r.queue_delay.max(4.0) < 0.5
