"""Integration tests for the coexistence claims (Figures 15–20, condensed).

The shape-level assertions: under PIE, DCTCP starves Cubic by roughly an
order of magnitude; under the coupled PI+PI2 the per-flow ratio comes back
near 1; queue delay stays near target and utilization high under both.
"""

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.factories import coupled_factory, pie_factory
from repro.harness.scenarios import MBPS, coexistence_mix, coexistence_pair


def pair(factory, **kw):
    kw.setdefault("duration", 30.0)
    kw.setdefault("warmup", 10.0)
    return run_experiment(coexistence_pair(factory, **kw))


class TestStarvationUnderPie:
    def test_dctcp_starves_cubic(self):
        r = pair(pie_factory())
        ratio = r.balance("cubic", "dctcp")
        assert ratio < 0.25  # paper: ~0.1

    def test_ecn_cubic_fair_with_cubic_under_pie(self):
        """The control case: same CC, only ECN differs → ratio ≈ 1."""
        r = pair(pie_factory(), cc_a="ecn-cubic", cc_b="cubic")
        assert r.balance("cubic", "ecn-cubic") == pytest.approx(1.0, abs=0.5)


class TestBalanceUnderCoupledPi2:
    def test_cubic_dctcp_near_equal(self):
        r = pair(coupled_factory())
        ratio = r.balance("cubic", "dctcp")
        assert 0.4 < ratio < 2.5  # paper: ≈ 1 (vs ~0.1 for PIE)

    def test_pi2_improves_on_pie_by_large_factor(self):
        pie_ratio = pair(pie_factory()).balance("cubic", "dctcp")
        pi2_ratio = pair(coupled_factory()).balance("cubic", "dctcp")
        assert pi2_ratio > pie_ratio * 4

    def test_balance_across_rtts(self):
        for rtt in (0.005, 0.020):
            r = pair(coupled_factory(), rtt=rtt)
            assert 0.3 < r.balance("cubic", "dctcp") < 3.0, f"rtt={rtt}"

    def test_balance_at_low_link_rate(self):
        r = pair(coupled_factory(), capacity_bps=4 * MBPS, rtt=0.020)
        assert 0.3 < r.balance("cubic", "dctcp") < 3.0

    def test_ecn_cubic_control_case(self):
        r = pair(coupled_factory(), cc_a="ecn-cubic", cc_b="cubic")
        assert r.balance("cubic", "ecn-cubic") == pytest.approx(1.0, abs=0.5)


class TestSharedQueueProperties:
    def test_queue_delay_near_target_both_aqms(self):
        for factory in (pie_factory(), coupled_factory()):
            r = pair(factory)
            assert r.sojourn_summary()["mean"] == pytest.approx(0.020, abs=0.012)

    def test_utilization_high_both_aqms(self):
        for factory in (pie_factory(), coupled_factory()):
            r = pair(factory)
            assert r.mean_utilization() > 0.90

    def test_coupled_probability_relation_in_flight(self):
        """During the run, the applied probabilities obey ps ≈ 2·√pc."""
        r = pair(coupled_factory())
        aqm = r.aqm
        assert aqm.classic_probability == pytest.approx(
            (aqm.probability / 2) ** 2, rel=1e-9
        )


class TestFlowCountMixes:
    """Figure 19/20 condensed: the balance holds for uneven mixes."""

    @pytest.mark.parametrize("n_a,n_b", [(1, 3), (3, 1), (2, 2)])
    def test_mix_balance(self, n_a, n_b):
        r = run_experiment(
            coexistence_mix(
                coupled_factory(), n_a, n_b,
                capacity_bps=40 * MBPS, rtt=0.010,
                duration=25.0, warmup=10.0,
            )
        )
        assert 0.3 < r.balance("cubic", "dctcp") < 3.0

    def test_single_class_mix_runs(self):
        r = run_experiment(
            coexistence_mix(
                coupled_factory(), 0, 4,
                capacity_bps=10 * MBPS, rtt=0.010,
                duration=15.0, warmup=5.0,
            )
        )
        assert sum(r.goodputs("cubic")) > 5 * MBPS
