"""Smoke tests: every example script must run and print its key lines.

Each example is executed in-process via runpy (so coverage and debugging
work) with stdout captured.  These are the repository's 'docs that cannot
rot': if an API change breaks an example, this suite fails.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "tail-drop only (bufferbloat)" in out
        assert "PI2 (target 20 ms)" in out
        assert "removed" in out

    def test_coexistence(self):
        out = run_example("coexistence.py")
        assert "=== PIE ===" in out
        assert "=== coupled PI+PI2 ===" in out
        assert "cubic/dctcp ratio" in out

    def test_bode_analysis(self):
        out = run_example("bode_analysis.py")
        assert "pi(tune=1)" in out
        assert "X" in out  # an unstable point is rendered
        assert "pi2" in out

    def test_aqm_shootout(self):
        out = run_example("aqm_shootout.py")
        for name in ("tail-drop", "RED", "CoDel", "PIE", "bare-PIE", "PI2"):
            assert name in out

    def test_dualq_demo(self):
        out = run_example("dualq_demo.py")
        assert "single queue (paper §5)" in out
        assert "DualQ Coupled" in out

    def test_fluid_step_response(self):
        out = run_example("fluid_step_response.py")
        assert "light-load oscillation" in out
        assert "20 ms target" in out

    def test_interactive_latency(self):
        out = run_example("interactive_latency.py")
        for queue in ("tail-drop", "PIE", "PI2", "DualQ"):
            assert queue in out
        assert "delay p99" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py")
        assert "=== PI2 through link flap + burst loss ===" in out
        assert "link down" in out and "link up" in out
        assert "burst loss" in out
        assert "resilient sweep with one sabotaged cell" in out
        assert "cells completed: 2 of 3" in out
        assert "ControllerDivergence" in out

    def test_paper_walkthrough(self):
        out = run_example("paper_walkthrough.py")
        for step in range(1, 7):
            assert f"step {step}" in out
        assert "UNSTABLE" in out
        assert "ratio" in out
