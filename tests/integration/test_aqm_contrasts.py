"""Integration tests for the Section 3 lineage claims and variants.

* RED "pushes back against higher load with higher queuing delay and
  higher loss" — its standing queue grows with the number of flows —
  whereas the PI family "holds queuing delay to a constant target" [18].
* PIE was designed for hardware: it estimates queue delay from a measured
  departure rate rather than timestamps; with the measured estimator the
  control behaviour must be essentially unchanged.
* The AQMs are classless: flows with different RTTs share one queue, and
  the usual TCP RTT-bias (throughput ∝ 1/RTT) persists through any AQM —
  a sanity check that the AQM isn't accidentally scheduling.
"""


import numpy as np
import pytest

from repro.aqm.pie import PieAqm
from repro.aqm.red import RedAqm
from repro.harness import MBPS, pi2_factory, pie_factory, run_experiment
from repro.harness.experiment import Experiment, FlowGroup
from repro.net.queue import DepartureRateEstimator


def red_factory(**kwargs):
    def make(rng):
        return RedAqm(rng=rng, **kwargs)

    return make


def run_flows(factory, n_flows, duration=30.0, **kwargs):
    return run_experiment(
        Experiment(
            capacity_bps=10 * MBPS,
            duration=duration,
            warmup=10.0,
            aqm_factory=factory,
            flows=[FlowGroup(cc="reno", count=n_flows, rtt=0.05)],
            **kwargs,
        )
    )


class TestRedVsPiFamily:
    def test_red_queue_grows_with_load(self):
        light = run_flows(red_factory(), 4)
        heavy = run_flows(red_factory(), 24)
        d_light = light.sojourn_summary()["mean"]
        d_heavy = heavy.sojourn_summary()["mean"]
        assert d_heavy > d_light * 1.3

    def test_pi2_queue_constant_with_load(self):
        light = run_flows(pi2_factory(), 4)
        heavy = run_flows(pi2_factory(), 24)
        d_light = light.sojourn_summary()["mean"]
        d_heavy = heavy.sojourn_summary()["mean"]
        assert abs(d_heavy - d_light) < 0.010

    def test_pie_queue_constant_with_load(self):
        light = run_flows(pie_factory(), 4)
        heavy = run_flows(pie_factory(), 24)
        assert abs(
            heavy.sojourn_summary()["mean"] - light.sojourn_summary()["mean"]
        ) < 0.012


class TestMeasuredRateEstimator:
    """PIE with its departure-rate estimator instead of the exact rate."""

    def _run(self, measured):
        from repro.harness.topology import Dumbbell
        from repro.net.queue import AQMQueue
        from repro.sim.engine import Simulator
        from repro.sim.random import RandomStreams

        sim = Simulator()
        streams = RandomStreams(3)
        aqm = PieAqm(rng=streams.stream("aqm"))
        estimator = (
            DepartureRateEstimator(initial_rate_bps=1 * MBPS)
            if measured
            else None
        )
        sojourns = []
        queue = AQMQueue(
            sim, aqm, 10 * MBPS,
            estimator=estimator,
            on_sojourn=lambda now, s, p: sojourns.append(s) if now > 10 else None,
        )
        bed = Dumbbell(sim, streams, 10 * MBPS, aqm=None, queue=queue)
        bed.aqm = aqm
        for _ in range(8):
            bed.add_tcp_flow("reno", rtt=0.05)
        sim.run(30.0)
        return float(np.mean(sojourns))

    def test_measured_estimator_controls_like_exact(self):
        exact = self._run(measured=False)
        measured = self._run(measured=True)
        assert measured == pytest.approx(exact, abs=0.012)
        assert measured == pytest.approx(0.020, abs=0.015)


class TestRttHeterogeneity:
    def test_short_rtt_flows_win_under_any_aqm(self):
        """The classic RTT bias persists — the single queue is FIFO, not
        a scheduler — but both classes make progress."""
        for factory in (pie_factory(), pi2_factory()):
            r = run_experiment(
                Experiment(
                    capacity_bps=10 * MBPS,
                    duration=30.0,
                    warmup=10.0,
                    aqm_factory=factory,
                    flows=[
                        FlowGroup(cc="reno", count=3, rtt=0.020, label="short"),
                        FlowGroup(cc="reno", count=3, rtt=0.120, label="long"),
                    ],
                )
            )
            short = sum(r.goodputs("short"))
            long_ = sum(r.goodputs("long"))
            assert short > long_
            assert long_ > 0.3 * MBPS

    def test_mixed_rtt_queue_still_on_target(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS,
                duration=30.0,
                warmup=10.0,
                aqm_factory=pi2_factory(),
                flows=[
                    FlowGroup(cc="reno", count=3, rtt=0.020, label="short"),
                    FlowGroup(cc="reno", count=3, rtt=0.120, label="long"),
                ],
            )
        )
        assert r.sojourn_summary()["mean"] == pytest.approx(0.020, abs=0.010)
