"""Integration tests: the PI-family AQMs hold queue delay at the target.

These are condensed versions of the paper's Figure 11 steady-state checks,
run at reduced duration.
"""

import numpy as np
import pytest

from repro.harness.experiment import Experiment, FlowGroup, UdpGroup, run_experiment
from repro.harness.factories import (
    bare_pie_factory,
    pi2_factory,
    pie_factory,
    taildrop_factory,
)

MBPS = 1e6


def steady(aqm_factory, flows=5, duration=30.0, cc="reno", udp_bps=0.0, seed=1):
    groups = [FlowGroup(cc=cc, count=flows, rtt=0.1)]
    udp = [UdpGroup(rate_bps=udp_bps)] if udp_bps else []
    return run_experiment(
        Experiment(
            capacity_bps=10 * MBPS,
            duration=duration,
            warmup=10.0,
            aqm_factory=aqm_factory,
            flows=groups,
            udp=udp,
            seed=seed,
        )
    )


class TestTargetHolding:
    def test_pi2_holds_20ms_target_light_load(self):
        r = steady(pi2_factory())
        assert r.sojourn_summary()["mean"] == pytest.approx(0.020, abs=0.010)

    def test_pie_holds_20ms_target_light_load(self):
        r = steady(pie_factory())
        assert r.sojourn_summary()["mean"] == pytest.approx(0.020, abs=0.015)

    def test_pi2_bounds_delay_heavy_load(self):
        # 50 flows on 10 Mb/s is ~2 segments per flow — at the cwnd floor,
        # where no AQM can hold the target exactly (the paper's Figure 11b
        # shows the same elevated, fluctuating delay).  Assert the queue
        # stays bounded near the target rather than blowing up.
        r = steady(pi2_factory(), flows=50)
        assert r.sojourn_summary()["mean"] < 0.060

    def test_pi2_custom_target_5ms(self):
        r = steady(pi2_factory(target_delay=0.005), flows=20)
        assert r.sojourn_summary()["mean"] == pytest.approx(0.005, abs=0.006)

    def test_taildrop_bufferbloat_contrast(self):
        """Without AQM the queue delay is far above 20 ms (bufferbloat)."""
        r = steady(taildrop_factory(), flows=20, duration=20.0)
        assert r.sojourn_summary()["mean"] > 0.100


class TestUtilization:
    def test_pi2_high_utilization(self):
        r = steady(pi2_factory())
        assert r.mean_utilization() > 0.90

    def test_pie_high_utilization(self):
        r = steady(pie_factory())
        assert r.mean_utilization() > 0.90


class TestBarePieEquivalence:
    """Section 5: bare-PIE behaves like full PIE in steady state."""

    def test_same_mean_delay(self):
        full = steady(pie_factory())
        bare = steady(bare_pie_factory())
        assert bare.sojourn_summary()["mean"] == pytest.approx(
            full.sojourn_summary()["mean"], abs=0.010
        )

    def test_same_utilization(self):
        full = steady(pie_factory())
        bare = steady(bare_pie_factory())
        assert bare.mean_utilization() == pytest.approx(
            full.mean_utilization(), abs=0.05
        )


class TestUnresponsiveOverload:
    """Figure 11c: 12 Mb/s of UDP into 10 Mb/s."""

    def test_pie_controls_udp_overload(self):
        r = steady(pie_factory(), udp_bps=6 * MBPS)
        r2 = steady(pie_factory(), flows=5)
        # With another 6 Mb/s UDP group we need two groups; do it directly:
        r = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS, duration=30.0, warmup=10.0,
                aqm_factory=pie_factory(),
                flows=[FlowGroup(cc="reno", count=5, rtt=0.1)],
                udp=[UdpGroup(rate_bps=6 * MBPS, count=2)],
            )
        )
        assert np.mean(r.sojourn_samples()) < 0.060
        assert r.probability.mean(10.0) > 0.15

    def test_pi2_saturates_at_classic_cap_and_queue_grows_bounded(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10 * MBPS, duration=30.0, warmup=10.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=5, rtt=0.1)],
                udp=[UdpGroup(rate_bps=6 * MBPS, count=2)],
            )
        )
        # The 25 % Classic cap binds (Section 5's overload strategy) ...
        assert r.probability.max(10.0) == pytest.approx(0.25, abs=0.01)
        # ... and the queue settles above target but far below the buffer.
        assert 0.020 < np.mean(r.sojourn_samples()) < 0.300


class TestResponsiveness:
    """Figure 6/13's claim: PI2's higher gains track load changes with
    less overshoot than PIE (compared at the same post-change stage)."""

    def test_pi2_less_overshoot_on_flow_join(self):
        def run(factory):
            return run_experiment(
                Experiment(
                    capacity_bps=10 * MBPS, duration=30.0, warmup=5.0,
                    aqm_factory=factory,
                    flows=[
                        FlowGroup(cc="reno", count=5, rtt=0.1),
                        FlowGroup(cc="reno", count=20, rtt=0.1, start=15.0),
                    ],
                    sample_period=0.1,
                )
            )

        pie = run(pie_factory())
        pi2 = run(pi2_factory())
        pie_peak = pie.queue_delay.max(15.0, 25.0)
        pi2_peak = pi2.queue_delay.max(15.0, 25.0)
        # PI2's overshoot after the surge is no worse than PIE's.
        assert pi2_peak <= pie_peak * 1.2
