"""Failure-injection tests: the transport machinery under adverse paths."""


import pytest

from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.factories import pi2_factory, pie_factory
from repro.net.faults import (
    BurstLossFault,
    DuplicatingPipe,
    GilbertElliottLoss,
    GilbertElliottPipe,
    LinkFlapFault,
    ReorderingPipe,
)
from repro.net.pipe import LossyPipe
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.tcp.reno import RenoSender
from repro.tcp.receiver import TcpReceiver
from repro.net.pipe import Pipe


class TestRandomPathLoss:
    def _run_with_loss(self, fwd_loss, rev_loss, flow_size=400, seed=1):
        sim = Simulator()
        streams = RandomStreams(seed)
        rev = LossyPipe(sim, 0.05, loss=rev_loss, rng=streams.stream("rev"))
        fwd = LossyPipe(sim, 0.05, loss=fwd_loss, rng=streams.stream("fwd"))
        sender = RenoSender(sim, 0, transmit=fwd.deliver, flow_size=flow_size)
        receiver = TcpReceiver(sim, 0, ack_out=rev.deliver)
        fwd.sink = receiver
        rev.sink = sender
        sender.start(0.0)
        sim.run(120.0)
        return sender, receiver

    def test_completes_under_5pct_data_loss(self):
        sender, receiver = self._run_with_loss(0.05, 0.0)
        assert sender.completed
        assert receiver.rcv_next == 400

    def test_completes_under_ack_loss(self):
        """Cumulative ACKs tolerate reverse-path loss."""
        sender, receiver = self._run_with_loss(0.0, 0.3)
        assert sender.completed
        assert receiver.rcv_next == 400

    def test_completes_under_bidirectional_loss(self):
        sender, receiver = self._run_with_loss(0.05, 0.1)
        assert sender.completed

    def test_heavy_loss_progresses_via_timeouts(self):
        sender, receiver = self._run_with_loss(0.3, 0.0, flow_size=50)
        assert sender.completed
        assert sender.timeouts > 0


class TestCapacityCollapse:
    def test_aqm_recovers_from_10x_capacity_drop(self):
        r = run_experiment(
            Experiment(
                capacity_bps=100e6,
                duration=40.0,
                warmup=5.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.02)],
                capacity_schedule=[(15.0, 10e6)],
            )
        )
        # After the collapse the controller must re-pin the target.
        tail = r.queue_delay.window(30.0, 40.0)
        assert tail.mean() == pytest.approx(0.020, abs=0.015)

    def test_capacity_increase_keeps_queue_controlled(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10e6,
                duration=40.0,
                warmup=5.0,
                aqm_factory=pie_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.02)],
                capacity_schedule=[(15.0, 100e6)],
            )
        )
        tail = r.queue_delay.window(30.0, 40.0)
        assert tail.max() < 0.100


class TestAdversePipes:
    """End-to-end transfers through the fault-injection pipes."""

    def _run_with_pipes(self, fwd, rev, flow_size=400, sack=False):
        sim = fwd.sim
        sender = RenoSender(
            sim, 0, transmit=fwd.deliver, flow_size=flow_size, sack=sack
        )
        receiver = TcpReceiver(sim, 0, ack_out=rev.deliver)
        fwd.sink = receiver
        rev.sink = sender
        sender.start(0.0)
        sim.run(120.0)
        return sender, receiver

    @pytest.mark.parametrize("sack", [False, True])
    def test_completes_under_reordering(self, sack):
        """30% of data packets delayed enough to be overtaken: spurious
        dupACKs must not wedge either NewReno or SACK recovery."""
        sim = Simulator()
        streams = RandomStreams(1)
        fwd = ReorderingPipe(
            sim, 0.025, reorder=0.3, extra_delay=0.010,
            rng=streams.stream("fwd"),
        )
        rev = Pipe(sim, 0.025)
        sender, receiver = self._run_with_pipes(fwd, rev, sack=sack)
        assert sender.completed
        assert receiver.rcv_next == 400
        assert fwd.reordered > 0

    @pytest.mark.parametrize("sack", [False, True])
    def test_completes_under_duplication(self, sack):
        """20% duplicated data packets: stale copies must be discarded,
        not double-delivered or allowed to corrupt ACK accounting."""
        sim = Simulator()
        streams = RandomStreams(2)
        fwd = DuplicatingPipe(
            sim, 0.025, duplicate=0.2, rng=streams.stream("fwd"),
            dup_gap=0.001,
        )
        rev = Pipe(sim, 0.025)
        sender, receiver = self._run_with_pipes(fwd, rev, sack=sack)
        assert sender.completed
        assert receiver.rcv_next == 400
        assert fwd.duplicated > 0

    def test_completes_under_duplicated_acks(self):
        """Duplicated pure ACKs must be treated as stale, not as dupACKs
        signalling loss."""
        sim = Simulator()
        streams = RandomStreams(3)
        fwd = Pipe(sim, 0.025)
        rev = DuplicatingPipe(
            sim, 0.025, duplicate=0.3, rng=streams.stream("rev"),
        )
        sender, receiver = self._run_with_pipes(fwd, rev)
        assert sender.completed
        assert receiver.rcv_next == 400

    @pytest.mark.parametrize("sack", [False, True])
    def test_completes_under_bursty_loss(self, sack):
        """Gilbert–Elliott bursts take out whole windows; retransmission
        machinery (RTO back-off + recovery) must still finish the flow."""
        sim = Simulator()
        streams = RandomStreams(4)
        model = GilbertElliottLoss.from_rates(
            streams.stream("ge"), loss_rate=0.05, mean_burst=5.0
        )
        fwd = GilbertElliottPipe(sim, 0.025, model)
        rev = Pipe(sim, 0.025)
        sender, receiver = self._run_with_pipes(fwd, rev, sack=sack)
        assert sender.completed
        assert receiver.rcv_next == 400
        assert fwd.lost > 0


class TestFaultSchedule:
    def test_pi2_recovers_from_flap_and_burst_loss(self):
        """The declarative fault path end-to-end: a bottleneck outage plus
        a bursty-loss window mid-run, with invariant checking on; PI2 must
        re-pin its 20 ms target once the faults clear."""
        r = run_experiment(
            Experiment(
                capacity_bps=10e6,
                duration=40.0,
                warmup=5.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=5, rtt=0.02)],
                faults=[
                    LinkFlapFault(10.0, 1.0),
                    BurstLossFault(15.0, 5.0, loss_rate=0.05, mean_burst=8.0),
                ],
                validate=True,
            )
        )
        # All scheduled fault transitions fired, in order.
        events = [msg for _, msg in r.fault_timeline]
        assert events[0] == "link down"
        assert "link up" in events
        assert any("burst loss" in msg and "on" in msg for msg in events)
        assert any("burst loss" in msg and "off" in msg for msg in events)
        # Losses were attributed to the fault gate, not the AQM.
        assert r.queue_stats.fault_dropped > 0
        # Invariants held throughout.
        assert r.invariant_checks > 0
        # Recovery: the controller re-pins the target after the faults.
        tail = r.queue_delay.window(30.0, 40.0)
        assert tail.mean() == pytest.approx(0.020, abs=0.015)


class TestBufferExhaustion:
    def test_tiny_buffer_tail_drops_but_flows_survive(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10e6,
                duration=20.0,
                warmup=5.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.05)],
                buffer_packets=20,
            )
        )
        assert r.queue_stats.tail_dropped > 0
        assert sum(r.goodputs("reno")) > 5e6
