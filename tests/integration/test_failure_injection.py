"""Failure-injection tests: the transport machinery under adverse paths."""

import pytest

from repro.harness.experiment import Experiment, FlowGroup, run_experiment
from repro.harness.factories import pi2_factory, pie_factory
from repro.net.pipe import LossyPipe
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.tcp.reno import RenoSender
from repro.tcp.receiver import TcpReceiver
from repro.net.pipe import Pipe


class TestRandomPathLoss:
    def _run_with_loss(self, fwd_loss, rev_loss, flow_size=400, seed=1):
        sim = Simulator()
        streams = RandomStreams(seed)
        rev = LossyPipe(sim, 0.05, loss=rev_loss, rng=streams.stream("rev"))
        fwd = LossyPipe(sim, 0.05, loss=fwd_loss, rng=streams.stream("fwd"))
        sender = RenoSender(sim, 0, transmit=fwd.deliver, flow_size=flow_size)
        receiver = TcpReceiver(sim, 0, ack_out=rev.deliver)
        fwd.sink = receiver
        rev.sink = sender
        sender.start(0.0)
        sim.run(120.0)
        return sender, receiver

    def test_completes_under_5pct_data_loss(self):
        sender, receiver = self._run_with_loss(0.05, 0.0)
        assert sender.completed
        assert receiver.rcv_next == 400

    def test_completes_under_ack_loss(self):
        """Cumulative ACKs tolerate reverse-path loss."""
        sender, receiver = self._run_with_loss(0.0, 0.3)
        assert sender.completed
        assert receiver.rcv_next == 400

    def test_completes_under_bidirectional_loss(self):
        sender, receiver = self._run_with_loss(0.05, 0.1)
        assert sender.completed

    def test_heavy_loss_progresses_via_timeouts(self):
        sender, receiver = self._run_with_loss(0.3, 0.0, flow_size=50)
        assert sender.completed
        assert sender.timeouts > 0


class TestCapacityCollapse:
    def test_aqm_recovers_from_10x_capacity_drop(self):
        r = run_experiment(
            Experiment(
                capacity_bps=100e6,
                duration=40.0,
                warmup=5.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.02)],
                capacity_schedule=[(15.0, 10e6)],
            )
        )
        # After the collapse the controller must re-pin the target.
        tail = r.queue_delay.window(30.0, 40.0)
        assert tail.mean() == pytest.approx(0.020, abs=0.015)

    def test_capacity_increase_keeps_queue_controlled(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10e6,
                duration=40.0,
                warmup=5.0,
                aqm_factory=pie_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.02)],
                capacity_schedule=[(15.0, 100e6)],
            )
        )
        tail = r.queue_delay.window(30.0, 40.0)
        assert tail.max() < 0.100


class TestBufferExhaustion:
    def test_tiny_buffer_tail_drops_but_flows_survive(self):
        r = run_experiment(
            Experiment(
                capacity_bps=10e6,
                duration=20.0,
                warmup=5.0,
                aqm_factory=pi2_factory(),
                flows=[FlowGroup(cc="reno", count=10, rtt=0.05)],
                buffer_packets=20,
            )
        )
        assert r.queue_stats.tail_dropped > 0
        assert sum(r.goodputs("reno")) > 5e6
