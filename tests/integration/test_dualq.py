"""Integration tests for the DualQ Coupled extension: the paper's stated
deployment goal — Scalable traffic gets low latency *and* rate balance
with Classic traffic behind the same link."""

import numpy as np
import pytest

from repro.aqm.dualq import DualQueueCoupledAqm
from repro.harness.topology import Dumbbell
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def run_dualq_pair(capacity=40e6, rtt=0.010, duration=30.0, warmup=10.0, seed=1):
    sim = Simulator()
    streams = RandomStreams(seed)
    l_sojourns = []
    c_sojourns = []

    def on_sojourn(now, sojourn, pkt):
        if now < warmup:
            return
        (l_sojourns if pkt.is_scalable else c_sojourns).append(sojourn)

    queue = DualQueueCoupledAqm(
        sim, capacity, rng=streams.stream("aqm"), on_sojourn=on_sojourn
    )
    bed = Dumbbell(sim, streams, capacity, aqm=None, queue=queue)
    bed.add_tcp_flow("dctcp", rtt=rtt, label="dctcp")
    bed.add_tcp_flow("cubic", rtt=rtt, label="cubic")
    sim.at(warmup, bed.flows.open_windows, warmup)
    sim.run(duration)
    return bed, l_sojourns, c_sojourns, duration


class TestDualQ:
    def test_rejects_queue_and_aqm_together(self):
        sim = Simulator()
        streams = RandomStreams(1)
        queue = DualQueueCoupledAqm(sim, 10e6)
        from repro.core.pi2 import Pi2Aqm

        with pytest.raises(ValueError):
            Dumbbell(sim, streams, 10e6, aqm=Pi2Aqm(), queue=queue)

    def test_scalable_latency_far_below_classic(self):
        bed, l_s, c_s, _ = run_dualq_pair()
        assert l_s and c_s
        assert np.mean(l_s) < np.mean(c_s) / 2

    def test_scalable_latency_is_low(self):
        bed, l_s, _, _ = run_dualq_pair()
        assert np.mean(l_s) < 0.005

    def test_rate_balance_near_one(self):
        bed, _, _, duration = run_dualq_pair()
        cubic = sum(bed.goodput_bps("cubic", duration))
        dctcp = sum(bed.goodput_bps("dctcp", duration))
        assert 0.3 < cubic / dctcp < 3.0

    def test_link_well_utilized(self):
        bed, _, _, duration = run_dualq_pair()
        total = sum(bed.goodput_bps("cubic", duration)) + sum(
            bed.goodput_bps("dctcp", duration)
        )
        assert total > 0.85 * bed.capacity_bps

    def test_probability_sampled_from_queue(self):
        bed, _, _, _ = run_dualq_pair(duration=12.0)
        assert len(bed.probability) > 0
