"""Unit tests for packets and ECN codepoint semantics."""

import pytest

from repro.net.packet import ACK_SIZE, DEFAULT_MSS, ECN, HEADER_BYTES, Packet
from tests.conftest import make_packet


class TestECN:
    def test_codepoint_values_match_rfc3168(self):
        assert ECN.NOT_ECT == 0b00
        assert ECN.ECT1 == 0b01
        assert ECN.ECT0 == 0b10
        assert ECN.CE == 0b11

    @pytest.mark.parametrize("cp", [ECN.ECT0, ECN.ECT1, ECN.CE])
    def test_ecn_capable_codepoints(self, cp):
        assert cp.ecn_capable

    def test_not_ect_is_not_capable(self):
        assert not ECN.NOT_ECT.ecn_capable


class TestPacket:
    def test_default_size_is_mss_plus_headers(self):
        assert Packet(flow_id=0).size == DEFAULT_MSS + HEADER_BYTES

    def test_ack_size_constant(self):
        assert ACK_SIZE == HEADER_BYTES

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(flow_id=0, size=0)

    def test_uids_are_unique(self):
        assert make_packet().uid != make_packet().uid

    def test_ect_preserved_from_ecn(self):
        pkt = make_packet(ecn=ECN.ECT1)
        assert pkt.ect is ECN.ECT1

    def test_not_ect_keeps_not_ect_ect(self):
        assert make_packet(ecn=ECN.NOT_ECT).ect is ECN.NOT_ECT


class TestMarking:
    def test_mark_ce_on_ect0(self):
        pkt = make_packet(ecn=ECN.ECT0)
        pkt.mark_ce()
        assert pkt.ecn is ECN.CE
        assert pkt.ce_marked

    def test_mark_ce_preserves_original_ect(self):
        pkt = make_packet(ecn=ECN.ECT1)
        pkt.mark_ce()
        assert pkt.ect is ECN.ECT1

    def test_mark_not_ect_raises(self):
        pkt = make_packet(ecn=ECN.NOT_ECT)
        with pytest.raises(ValueError):
            pkt.mark_ce()

    def test_double_marking_is_allowed(self):
        pkt = make_packet(ecn=ECN.ECT0)
        pkt.mark_ce()
        pkt.mark_ce()
        assert pkt.ecn is ECN.CE


class TestClassifier:
    """Figure 9's classifier: ECT(1) or CE-from-ECT(1) → Scalable."""

    def test_ect1_is_scalable(self):
        assert make_packet(ecn=ECN.ECT1).is_scalable

    def test_ect0_is_classic(self):
        assert not make_packet(ecn=ECN.ECT0).is_scalable

    def test_not_ect_is_classic(self):
        assert not make_packet(ecn=ECN.NOT_ECT).is_scalable

    def test_ce_marked_scalable_stays_scalable(self):
        pkt = make_packet(ecn=ECN.ECT1)
        pkt.mark_ce()
        assert pkt.is_scalable

    def test_ce_marked_classic_stays_classic(self):
        pkt = make_packet(ecn=ECN.ECT0)
        pkt.mark_ce()
        assert not pkt.is_scalable
