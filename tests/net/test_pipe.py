"""Unit tests for fixed-delay pipes and lossy pipes."""

import random

import pytest

from repro.net.node import CountingSink
from repro.net.pipe import LossyPipe, Pipe
from tests.conftest import make_packet


class TestPipe:
    def test_delivers_after_delay(self, sim):
        sink = CountingSink()
        pipe = Pipe(sim, 0.050, sink=sink)
        pipe.deliver(make_packet())
        sim.run(0.049)
        assert sink.packets == 0
        sim.run(0.051)
        assert sink.packets == 1

    def test_zero_delay_delivers_immediately(self, sim):
        sink = CountingSink()
        Pipe(sim, 0.0, sink=sink).deliver(make_packet())
        assert sink.packets == 1

    def test_ordering_preserved(self, sim):
        order = []

        class Recorder:
            def deliver(self, pkt):
                order.append(pkt.seq)

        pipe = Pipe(sim, 0.010, sink=Recorder())
        for i in range(5):
            sim.schedule(i * 0.001, pipe.deliver, make_packet(seq=i))
        sim.run(1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Pipe(sim, -0.1)

    def test_missing_sink_raises(self, sim):
        with pytest.raises(RuntimeError):
            Pipe(sim, 0.1).deliver(make_packet())

    def test_delivered_counter(self, sim):
        sink = CountingSink()
        pipe = Pipe(sim, 0.01, sink=sink)
        pipe.deliver(make_packet())
        pipe.deliver(make_packet())
        sim.run(1.0)
        assert pipe.delivered == 2


class TestLossyPipe:
    def test_zero_loss_delivers_everything(self, sim):
        sink = CountingSink()
        pipe = LossyPipe(sim, 0.0, loss=0.0, rng=random.Random(1), sink=sink)
        for _ in range(100):
            pipe.deliver(make_packet())
        assert sink.packets == 100

    def test_full_loss_delivers_nothing(self, sim):
        sink = CountingSink()
        pipe = LossyPipe(sim, 0.0, loss=1.0, rng=random.Random(1), sink=sink)
        for _ in range(50):
            pipe.deliver(make_packet())
        assert sink.packets == 0
        assert pipe.lost == 50

    def test_partial_loss_rate(self, sim):
        sink = CountingSink()
        pipe = LossyPipe(sim, 0.0, loss=0.3, rng=random.Random(1), sink=sink)
        for _ in range(5000):
            pipe.deliver(make_packet())
        assert sink.packets == pytest.approx(3500, rel=0.06)

    def test_invalid_loss_rejected(self, sim):
        with pytest.raises(ValueError):
            LossyPipe(sim, 0.0, loss=1.5, rng=random.Random(1))
