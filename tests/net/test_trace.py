"""Tests for packet-event tracing."""


import pytest

from repro.aqm.base import AQM, Decision
from repro.net.queue import AQMQueue
from repro.net.trace import PacketTrace, TraceEvent
from repro.net.packet import ECN
from tests.conftest import make_packet


class DropEverySecond(AQM):
    def __init__(self):
        super().__init__()
        self._n = 0

    def on_enqueue(self, packet):
        self._n += 1
        return Decision.DROP if self._n % 2 == 0 else Decision.PASS


class MarkAll(AQM):
    def on_enqueue(self, packet):
        return Decision.MARK


class TestTracing:
    def test_enqueue_dequeue_sequence(self, sim):
        q = AQMQueue(sim, None, 10e6)
        trace = PacketTrace(q)
        q.enqueue(make_packet(seq=1))
        q.dequeue()
        kinds = [r.event for r in trace.records]
        assert kinds == [TraceEvent.ENQUEUE, TraceEvent.DEQUEUE]

    def test_aqm_drop_recorded(self, sim):
        q = AQMQueue(sim, DropEverySecond(), 10e6)
        trace = PacketTrace(q)
        q.enqueue(make_packet(seq=1))
        q.enqueue(make_packet(seq=2))
        assert trace.count(TraceEvent.AQM_DROP) == 1
        assert trace.count(TraceEvent.ENQUEUE) == 1

    def test_tail_drop_recorded(self, sim):
        q = AQMQueue(sim, None, 10e6, buffer_packets=1)
        trace = PacketTrace(q)
        q.enqueue(make_packet())
        q.enqueue(make_packet())
        assert trace.count(TraceEvent.TAIL_DROP) == 1

    def test_ce_mark_recorded(self, sim):
        q = AQMQueue(sim, MarkAll(), 10e6)
        trace = PacketTrace(q)
        q.enqueue(make_packet(ecn=ECN.ECT0))
        assert trace.count(TraceEvent.CE_MARK) == 1
        assert trace.count(TraceEvent.ENQUEUE) == 1

    def test_timestamps(self, sim):
        q = AQMQueue(sim, None, 10e6)
        trace = PacketTrace(q)
        sim.schedule(1.5, lambda: q.enqueue(make_packet()))
        sim.run(2.0)
        assert trace.records[0].time == 1.5

    def test_flow_filter(self, sim):
        q = AQMQueue(sim, None, 10e6)
        trace = PacketTrace(q)
        q.enqueue(make_packet(flow_id=1))
        q.enqueue(make_packet(flow_id=2))
        assert len(trace.flow(1)) == 1

    def test_limit_bounds_memory(self, sim):
        q = AQMQueue(sim, None, 10e6)
        trace = PacketTrace(q, limit=3)
        for i in range(10):
            q.enqueue(make_packet(seq=i))
        assert len(trace) == 3
        assert trace.records[-1].seq == 9

    def test_invalid_limit_rejected(self, sim):
        q = AQMQueue(sim, None, 10e6)
        with pytest.raises(ValueError):
            PacketTrace(q, limit=0)

    def test_detach_restores(self, sim):
        q = AQMQueue(sim, None, 10e6)
        trace = PacketTrace(q)
        trace.detach()
        q.enqueue(make_packet())
        assert len(trace) == 0

    def test_end_to_end_fifo_order(self, sim, streams):
        """Dequeue order must equal enqueue order (FIFO) in a real run."""
        from repro.harness.topology import Dumbbell

        bed = Dumbbell(sim, streams, 10e6, None)
        trace = PacketTrace(bed.queue)
        bed.add_tcp_flow("reno", rtt=0.05, flow_size=50)
        sim.run(10.0)
        enq = [r.uid for r in trace.events(TraceEvent.ENQUEUE)]
        deq = [r.uid for r in trace.events(TraceEvent.DEQUEUE)]
        assert deq == enq[: len(deq)]
