"""Unit tests for the serializing bottleneck link."""

import pytest

from repro.net.link import Link
from repro.net.node import CountingSink
from repro.net.queue import AQMQueue
from tests.conftest import make_packet


def make_link(sim, capacity=8e6, prop_delay=0.0, sink=None):
    q = AQMQueue(sim, None, capacity)
    sink = sink or CountingSink()
    link = Link(sim, q, capacity, sink=sink, prop_delay=prop_delay)
    return q, link, sink


class TestSerialization:
    def test_packet_delivered_after_serialization_time(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        q.enqueue(make_packet(size=1000))  # 8000 bits / 8 Mb/s = 1 ms
        sim.run(0.0009)
        assert sink.packets == 0
        sim.run(0.0011)
        assert sink.packets == 1

    def test_back_to_back_packets_serialize_sequentially(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        q.enqueue(make_packet(size=1000))
        q.enqueue(make_packet(size=1000))
        sim.run(0.0015)
        assert sink.packets == 1
        sim.run(0.0021)
        assert sink.packets == 2

    def test_propagation_delay_added(self, sim):
        q, link, sink = make_link(sim, capacity=8e6, prop_delay=0.010)
        q.enqueue(make_packet(size=1000))
        sim.run(0.010)
        assert sink.packets == 0
        sim.run(0.0111)
        assert sink.packets == 1

    def test_idle_link_restarts_on_arrival(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        q.enqueue(make_packet(size=1000))
        sim.run(0.005)
        assert not link.busy
        sim.schedule(0.005, lambda: q.enqueue(make_packet(size=1000)))
        sim.run(0.02)
        assert sink.packets == 2

    def test_counters(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        q.enqueue(make_packet(size=1000))
        q.enqueue(make_packet(size=500))
        sim.run(1.0)
        assert link.packets_sent == 2
        assert link.bytes_sent == 1500
        assert link.busy_time == pytest.approx((8000 + 4000) / 8e6)


class TestCapacityChange:
    def test_set_capacity_affects_next_packet(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        link.set_capacity(16e6)
        q.enqueue(make_packet(size=1000))
        sim.run(0.00051)
        assert sink.packets == 1

    def test_set_capacity_updates_queue_estimator(self, sim):
        q, link, sink = make_link(sim, capacity=8e6)
        link.set_capacity(16e6)
        assert q.estimator.capacity_bps == 16e6

    def test_invalid_capacity_rejected(self, sim):
        q, link, sink = make_link(sim)
        with pytest.raises(ValueError):
            link.set_capacity(0)

    def test_invalid_construction(self, sim):
        q = AQMQueue(sim, None, 1e6)
        with pytest.raises(ValueError):
            Link(sim, q, 0)
        with pytest.raises(ValueError):
            Link(sim, q, 1e6, prop_delay=-1)


class TestRouting:
    def test_router_overrides_sink(self, sim):
        q, link, default_sink = make_link(sim)
        special = CountingSink()
        link.set_router(lambda pkt: special if pkt.flow_id == 7 else default_sink)
        q.enqueue(make_packet(flow_id=7))
        q.enqueue(make_packet(flow_id=1))
        sim.run(1.0)
        assert special.packets == 1
        assert default_sink.packets == 1
