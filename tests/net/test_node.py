"""Unit tests for endpoint sinks."""

from repro.net.node import CallbackSink, CountingSink, NullSink
from tests.conftest import make_packet


class TestCountingSink:
    def test_counts_packets_and_bytes(self):
        sink = CountingSink()
        sink.deliver(make_packet(size=100))
        sink.deliver(make_packet(size=200))
        assert sink.packets == 2
        assert sink.bytes == 300

    def test_per_flow_bytes(self):
        sink = CountingSink()
        sink.deliver(make_packet(flow_id=1, size=100))
        sink.deliver(make_packet(flow_id=1, size=100))
        sink.deliver(make_packet(flow_id=2, size=50))
        assert sink.per_flow_bytes == {1: 200, 2: 50}


class TestNullSink:
    def test_absorbs_silently(self):
        NullSink().deliver(make_packet())


class TestCallbackSink:
    def test_invokes_callback(self):
        seen = []
        sink = CallbackSink(seen.append)
        pkt = make_packet()
        sink.deliver(pkt)
        assert seen == [pkt]
