"""Unit tests for the fault-injection module: adverse pipes, the
Gilbert–Elliott model's empirical statistics, fault dataclass validation
and the CLI fault-spec mini-language."""

import random

import pytest

from repro.errors import ConfigError
from repro.net.faults import (
    AqmStallFault,
    AqmTimerJitterFault,
    BurstLossFault,
    CorruptingPipe,
    CorruptionFault,
    DuplicatingPipe,
    FaultInjector,
    GilbertElliottLoss,
    GilbertElliottPipe,
    LinkFlapFault,
    ReorderingPipe,
    parse_fault_spec,
)
from repro.net.node import CountingSink
from repro.sim.engine import Simulator
from tests.conftest import make_packet


# ----------------------------------------------------------------------
# Gilbert–Elliott model statistics
# ----------------------------------------------------------------------
class TestGilbertElliott:
    def _burst_lengths(self, model, n):
        """Per-packet drop decisions folded into loss-burst run lengths."""
        bursts, current = [], 0
        for _ in range(n):
            if model.should_drop():
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        if current:
            bursts.append(current)
        return bursts

    def test_empirical_loss_rate_matches_target(self):
        model = GilbertElliottLoss.from_rates(
            random.Random(7), loss_rate=0.05, mean_burst=8.0
        )
        n = 200_000
        losses = sum(model.should_drop() for _ in range(n))
        assert losses / n == pytest.approx(0.05, rel=0.10)

    def test_empirical_mean_burst_matches_target(self):
        model = GilbertElliottLoss.from_rates(
            random.Random(11), loss_rate=0.05, mean_burst=8.0
        )
        bursts = self._burst_lengths(model, 400_000)
        assert len(bursts) > 100
        mean = sum(bursts) / len(bursts)
        assert mean == pytest.approx(8.0, rel=0.15)

    def test_bursts_are_longer_than_bernoulli(self):
        """Same loss rate, but correlated: bursts must beat the geometric
        run lengths an independent Bernoulli process would produce."""
        ge = GilbertElliottLoss.from_rates(
            random.Random(3), loss_rate=0.05, mean_burst=10.0
        )
        ge_bursts = self._burst_lengths(ge, 300_000)
        bern = random.Random(3)
        bern_bursts, current = [], 0
        for _ in range(300_000):
            if bern.random() < 0.05:
                current += 1
            elif current:
                bern_bursts.append(current)
                current = 0
        ge_mean = sum(ge_bursts) / len(ge_bursts)
        bern_mean = sum(bern_bursts) / len(bern_bursts)
        assert ge_mean > 3 * bern_mean

    def test_burst_length_distribution_is_geometric(self):
        """Bad-state sojourns are geometric: P(len > 2·mean) ≈ e^-2."""
        mean_burst = 5.0
        model = GilbertElliottLoss.from_rates(
            random.Random(19), loss_rate=0.10, mean_burst=mean_burst
        )
        bursts = self._burst_lengths(model, 400_000)
        frac_long = sum(b > 2 * mean_burst for b in bursts) / len(bursts)
        # Geometric(p=1/5): P(len > 10) = (1 - 1/5)^10 ≈ 0.107
        assert frac_long == pytest.approx(0.107, abs=0.05)

    def test_from_rates_validation(self):
        rng = random.Random(1)
        with pytest.raises(ConfigError):
            GilbertElliottLoss.from_rates(rng, loss_rate=0.0, mean_burst=8.0)
        with pytest.raises(ConfigError):
            GilbertElliottLoss.from_rates(rng, loss_rate=1.0, mean_burst=8.0)
        with pytest.raises(ConfigError):
            GilbertElliottLoss.from_rates(rng, loss_rate=0.05, mean_burst=0.5)
        with pytest.raises(ConfigError):
            # 90% loss with 1-packet bursts needs p_gb = 9 > 1.
            GilbertElliottLoss.from_rates(rng, loss_rate=0.9, mean_burst=1.0)

    def test_transition_probability_validation(self):
        with pytest.raises(ConfigError):
            GilbertElliottLoss(random.Random(1), 1.5, 0.1)


# ----------------------------------------------------------------------
# Adverse pipes
# ----------------------------------------------------------------------
class TestFaultPipes:
    def test_gilbert_elliott_pipe_drops_and_counts(self, sim):
        sink = CountingSink()
        model = GilbertElliottLoss.from_rates(
            random.Random(5), loss_rate=0.2, mean_burst=4.0
        )
        pipe = GilbertElliottPipe(sim, 0.0, model, sink=sink)
        n = 20_000
        for _ in range(n):
            pipe.deliver(make_packet())
        assert pipe.lost + sink.packets == n
        assert pipe.lost / n == pytest.approx(0.2, rel=0.15)

    def test_corrupting_pipe_counts_corruption_separately(self, sim):
        sink = CountingSink()
        pipe = CorruptingPipe(sim, 0.0, corrupt=0.5, rng=random.Random(2), sink=sink)
        for _ in range(2000):
            pipe.deliver(make_packet())
        assert pipe.corrupted == pipe.lost
        assert pipe.corrupted / 2000 == pytest.approx(0.5, rel=0.1)
        assert sink.packets == 2000 - pipe.corrupted

    def test_corrupting_pipe_validation(self, sim):
        with pytest.raises(ConfigError):
            CorruptingPipe(sim, 0.0, corrupt=1.5, rng=random.Random(1))

    def test_reordering_pipe_reorders(self, sim):
        order = []

        class Recorder:
            def deliver(self, pkt):
                order.append(pkt.seq)

        pipe = ReorderingPipe(
            sim, 0.010, reorder=0.3, extra_delay=0.050,
            rng=random.Random(4), sink=Recorder(),
        )
        for i in range(200):
            sim.schedule(i * 0.001, pipe.deliver, make_packet(seq=i))
        sim.run(10.0)
        assert sorted(order) == list(range(200))  # nothing lost
        assert order != list(range(200))  # but not in order
        assert pipe.reordered > 0

    def test_reordering_pipe_zero_probability_is_in_order(self, sim):
        order = []

        class Recorder:
            def deliver(self, pkt):
                order.append(pkt.seq)

        pipe = ReorderingPipe(
            sim, 0.010, reorder=0.0, extra_delay=0.050,
            rng=random.Random(4), sink=Recorder(),
        )
        for i in range(50):
            sim.schedule(i * 0.001, pipe.deliver, make_packet(seq=i))
        sim.run(10.0)
        assert order == list(range(50))

    def test_reordering_pipe_validation(self, sim):
        rng = random.Random(1)
        with pytest.raises(ConfigError):
            ReorderingPipe(sim, 0.0, reorder=2.0, extra_delay=0.01, rng=rng)
        with pytest.raises(ConfigError):
            ReorderingPipe(sim, 0.0, reorder=0.1, extra_delay=0.0, rng=rng)

    def test_duplicating_pipe_duplicates(self, sim):
        sink = CountingSink()
        pipe = DuplicatingPipe(
            sim, 0.005, duplicate=0.25, rng=random.Random(6),
            dup_gap=0.001, sink=sink,
        )
        n = 4000
        for _ in range(n):
            pipe.deliver(make_packet())
        sim.run(5.0)
        assert sink.packets == n + pipe.duplicated
        assert pipe.duplicated / n == pytest.approx(0.25, rel=0.1)

    def test_duplicating_pipe_validation(self, sim):
        rng = random.Random(1)
        with pytest.raises(ConfigError):
            DuplicatingPipe(sim, 0.0, duplicate=-0.1, rng=rng)
        with pytest.raises(ConfigError):
            DuplicatingPipe(sim, 0.0, duplicate=0.1, rng=rng, dup_gap=-1.0)


# ----------------------------------------------------------------------
# Fault dataclasses
# ----------------------------------------------------------------------
class TestFaultDataclasses:
    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            LinkFlapFault(-1.0, 2.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigError):
            AqmStallFault(5.0, 0.0)

    def test_flap_count_requires_repeat(self):
        with pytest.raises(ConfigError):
            LinkFlapFault(5.0, 2.0, count=3)

    def test_flap_repeat_must_exceed_duration(self):
        with pytest.raises(ConfigError):
            LinkFlapFault(5.0, 2.0, repeat_every=1.0, count=2)

    def test_flap_windows(self):
        fault = LinkFlapFault(10.0, 2.0, repeat_every=20.0, count=3)
        assert fault.windows() == [(10.0, 12.0), (30.0, 32.0), (50.0, 52.0)]
        assert fault.end == 52.0

    def test_burst_loss_validation(self):
        with pytest.raises(ConfigError):
            BurstLossFault(0.0, 5.0, loss_rate=1.5)
        with pytest.raises(ConfigError):
            BurstLossFault(0.0, 5.0, mean_burst=0.2)

    def test_corruption_validation(self):
        with pytest.raises(ConfigError):
            CorruptionFault(0.0, 5.0, probability=0.0)

    def test_jitter_validation(self):
        with pytest.raises(ConfigError):
            AqmTimerJitterFault(0.0, 5.0, max_jitter=-0.01)


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_missing_target_raises_config_error(self):
        sim = Simulator()
        injector = FaultInjector(sim, random.Random(1))  # no link/queue/aqm
        with pytest.raises(ConfigError):
            injector.install([LinkFlapFault(1.0, 0.5)])
        with pytest.raises(ConfigError):
            injector.install([BurstLossFault(1.0, 0.5)])
        with pytest.raises(ConfigError):
            injector.install([AqmStallFault(1.0, 0.5)])

    def test_unknown_fault_type_rejected(self):
        sim = Simulator()
        injector = FaultInjector(sim, random.Random(1))
        with pytest.raises(ConfigError):
            injector.install([object()])

    def test_timeline_records_flap_events(self):
        class FakeLink:
            def set_down(self):
                pass

            def set_up(self):
                pass

        sim = Simulator()
        injector = FaultInjector(sim, random.Random(1), link=FakeLink())
        injector.install([LinkFlapFault(1.0, 0.5, repeat_every=2.0, count=2)])
        sim.run(10.0)
        assert [t for t, _ in injector.timeline] == [1.0, 1.5, 3.0, 3.5]
        assert [m for _, m in injector.timeline] == [
            "link down", "link up", "link down", "link up",
        ]
        assert "link down" in injector.describe()


# ----------------------------------------------------------------------
# CLI spec mini-language
# ----------------------------------------------------------------------
class TestParseFaultSpec:
    def test_flap(self):
        fault = parse_fault_spec("flap:30:2")
        assert fault == LinkFlapFault(30.0, 2.0)

    def test_flap_repeating(self):
        fault = parse_fault_spec("flap:30:2:20:3")
        assert fault == LinkFlapFault(30.0, 2.0, repeat_every=20.0, count=3)

    def test_burstloss_defaults(self):
        fault = parse_fault_spec("burstloss:10:15")
        assert fault == BurstLossFault(10.0, 15.0, loss_rate=0.05, mean_burst=8.0)

    def test_burstloss_full(self):
        fault = parse_fault_spec("burstloss:10:15:0.02:4")
        assert fault == BurstLossFault(10.0, 15.0, loss_rate=0.02, mean_burst=4.0)

    def test_corrupt_and_stall_and_jitter(self):
        assert parse_fault_spec("corrupt:5:3:0.02") == CorruptionFault(
            5.0, 3.0, probability=0.02
        )
        assert parse_fault_spec("stall:5:3") == AqmStallFault(5.0, 3.0)
        assert parse_fault_spec("jitter:5:3:0.02") == AqmTimerJitterFault(
            5.0, 3.0, max_jitter=0.02
        )

    def test_bad_specs_rejected(self):
        for spec in (
            "flap:30",  # missing duration
            "flap:a:b",  # not numbers
            "stall:5:3:1",  # too many fields
            "meteor:5:3",  # unknown kind
        ):
            with pytest.raises(ConfigError):
                parse_fault_spec(spec)
