"""Unit tests for the AQM-managed FIFO queue and its delay estimators."""

import pytest

from repro.aqm.base import AQM, Decision
from repro.net.packet import ECN
from repro.net.queue import (
    AQMQueue,
    CapacityDelayEstimator,
    DepartureRateEstimator,
)
from tests.conftest import make_packet


class AlwaysDrop(AQM):
    def on_enqueue(self, packet):
        return Decision.DROP


class AlwaysMark(AQM):
    def on_enqueue(self, packet):
        return Decision.MARK


class TestFifoBasics:
    def test_enqueue_dequeue_fifo_order(self, sim):
        q = AQMQueue(sim, None, 10e6)
        pkts = [make_packet(seq=i) for i in range(5)]
        for p in pkts:
            q.enqueue(p)
        out = [q.dequeue() for _ in range(5)]
        assert [p.seq for p in out] == [0, 1, 2, 3, 4]

    def test_dequeue_empty_returns_none(self, sim):
        q = AQMQueue(sim, None, 10e6)
        assert q.dequeue() is None

    def test_byte_and_packet_lengths(self, sim):
        q = AQMQueue(sim, None, 10e6)
        q.enqueue(make_packet(size=1000))
        q.enqueue(make_packet(size=500))
        assert q.byte_length() == 1500
        assert q.packet_length() == 2
        q.dequeue()
        assert q.byte_length() == 500
        assert q.packet_length() == 1

    def test_len_matches_packet_length(self, sim):
        q = AQMQueue(sim, None, 10e6)
        q.enqueue(make_packet())
        assert len(q) == 1

    def test_enqueue_timestamps_packets(self, sim):
        q = AQMQueue(sim, None, 10e6)
        sim.schedule(2.5, lambda: q.enqueue(make_packet()))
        sim.run(3.0)
        pkt = q.dequeue()
        assert pkt.enqueue_time == 2.5


class TestTailDrop:
    def test_buffer_limit_enforced(self, sim):
        q = AQMQueue(sim, None, 10e6, buffer_packets=3)
        assert all(q.enqueue(make_packet()) for _ in range(3))
        assert q.enqueue(make_packet()) is False
        assert q.stats.tail_dropped == 1

    def test_invalid_buffer_rejected(self, sim):
        with pytest.raises(ValueError):
            AQMQueue(sim, None, 10e6, buffer_packets=0)

    def test_space_freed_after_dequeue(self, sim):
        q = AQMQueue(sim, None, 10e6, buffer_packets=1)
        q.enqueue(make_packet())
        assert q.enqueue(make_packet()) is False
        q.dequeue()
        assert q.enqueue(make_packet()) is True


class TestAqmIntegration:
    def test_aqm_drop_refuses_packet(self, sim):
        q = AQMQueue(sim, AlwaysDrop(), 10e6)
        assert q.enqueue(make_packet()) is False
        assert q.stats.aqm_dropped == 1
        assert len(q) == 0

    def test_aqm_mark_sets_ce(self, sim):
        q = AQMQueue(sim, AlwaysMark(), 10e6)
        assert q.enqueue(make_packet(ecn=ECN.ECT0)) is True
        assert q.dequeue().ecn is ECN.CE
        assert q.stats.ce_marked == 1

    def test_aqm_attach_called(self, sim):
        aqm = AlwaysDrop()
        q = AQMQueue(sim, aqm, 10e6)
        assert aqm.queue is q
        assert aqm.sim is sim

    def test_stats_counters(self, sim):
        q = AQMQueue(sim, None, 10e6)
        q.enqueue(make_packet(size=100))
        q.enqueue(make_packet(size=200))
        q.dequeue()
        s = q.stats
        assert s.arrived == 2
        assert s.enqueued == 2
        assert s.dequeued == 1
        assert s.bytes_arrived == 300
        assert s.bytes_dequeued == 100

    def test_wakeup_fires_on_enqueue(self, sim):
        q = AQMQueue(sim, None, 10e6)
        calls = []
        q.set_wakeup(lambda: calls.append(True))
        q.enqueue(make_packet())
        assert calls == [True]

    def test_sojourn_callback(self, sim):
        seen = []
        q = AQMQueue(
            sim, None, 10e6, on_sojourn=lambda t, s, p: seen.append((t, s))
        )
        q.enqueue(make_packet())
        sim.schedule(0.5, q.dequeue)
        sim.run(1.0)
        assert seen == [(0.5, 0.5)]


class TestCapacityDelayEstimator:
    def test_delay_is_backlog_over_rate(self):
        est = CapacityDelayEstimator(10e6)
        # 12500 bytes = 100 kbit at 10 Mb/s = 10 ms.
        assert est.delay(12500) == pytest.approx(0.010)

    def test_zero_backlog_zero_delay(self):
        assert CapacityDelayEstimator(10e6).delay(0) == 0.0

    def test_capacity_change_affects_delay(self):
        est = CapacityDelayEstimator(10e6)
        est.set_capacity(20e6)
        assert est.delay(12500) == pytest.approx(0.005)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CapacityDelayEstimator(0)
        with pytest.raises(ValueError):
            CapacityDelayEstimator(10e6).set_capacity(-1)


class TestDepartureRateEstimator:
    def test_initial_rate_used_before_measurement(self):
        est = DepartureRateEstimator(initial_rate_bps=8e6)
        assert est.delay(1000) == pytest.approx(1000 * 8 / 8e6)

    def test_rate_converges_to_actual_drain(self):
        est = DepartureRateEstimator(initial_rate_bps=1e6, dq_threshold=10_000)
        # Drain 100 kB at exactly 10 Mb/s: 1250 bytes per ms.
        now = 0.0
        for _ in range(200):
            est.observe_backlog(50_000)
            est.on_dequeue(1250, now)
            now += 0.001
        assert est.rate_bps == pytest.approx(10e6, rel=0.05)

    def test_no_measurement_below_threshold(self):
        est = DepartureRateEstimator(initial_rate_bps=1e6, dq_threshold=10_000)
        est.observe_backlog(100)
        est.on_dequeue(1250, 0.0)
        est.on_dequeue(1250, 0.001)
        assert est.rate_bps == 1e6

    def test_invalid_initial_rate_rejected(self):
        with pytest.raises(ValueError):
            DepartureRateEstimator(initial_rate_bps=0)

    def test_set_capacity_is_noop(self):
        est = DepartureRateEstimator(initial_rate_bps=5e6)
        est.set_capacity(50e6)
        assert est.rate_bps == 5e6
