"""Link/pipe event batching: timing parity, counters, fault interaction.

The batching contract is that coalescing back-to-back transmissions (and
prop-delay deliveries, and pipe arrivals) into single dispatches changes
*nothing observable*: every callback fires at the same simulated time, in
the same order, as the one-heap-event-per-packet schedule.  These tests
pin that contract at the unit level — the end-to-end ``digest()`` parity
gate lives in ``benchmarks/perf_smoke.py``.
"""

import pytest

from repro.net.link import Link
from repro.net.node import CountingSink
from repro.net.pipe import Pipe
from repro.net.queue import AQMQueue
from repro.sim.engine import Simulator
from tests.conftest import make_packet


class TimedSink:
    """Sink recording the simulated time of every delivery."""

    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def deliver(self, packet):
        self.times.append(self.sim.now)


def make_link(sim, capacity=8e6, prop_delay=0.0, batching=True):
    q = AQMQueue(sim, None, capacity)
    sink = TimedSink(sim)
    link = Link(
        sim, q, capacity, sink=sink, prop_delay=prop_delay, batching=batching
    )
    return q, link, sink


def run_burst(n=10, capacity=8e6, prop_delay=0.0, batching=True, until=1.0):
    """Enqueue ``n`` back-to-back packets and run; returns (sim, link, sink)."""
    sim = Simulator()
    q, link, sink = make_link(
        sim, capacity=capacity, prop_delay=prop_delay, batching=batching
    )
    for _ in range(n):
        q.enqueue(make_packet(size=1000))  # 1 ms each at 8 Mb/s
    sim.run(until)
    return sim, link, sink


class TestTimingParity:
    def test_delivery_times_identical_batched_vs_unbatched(self):
        _, _, batched = run_burst(batching=True)
        _, _, unbatched = run_burst(batching=False)
        assert batched.times == unbatched.times
        assert batched.times == pytest.approx([0.001 * k for k in range(1, 11)])

    def test_prop_delay_deliveries_identical(self):
        _, _, batched = run_burst(prop_delay=0.005, batching=True)
        _, _, unbatched = run_burst(prop_delay=0.005, batching=False)
        assert batched.times == unbatched.times

    def test_logical_event_count_is_conserved(self):
        on_sim, _, _ = run_burst(batching=True)
        off_sim, _, _ = run_burst(batching=False)
        assert on_sim.events_batched > 0
        assert (
            on_sim.events_processed + on_sim.events_batched
            == off_sim.events_processed
        )

    def test_pipe_arrival_times_identical(self):
        def arrivals(batching):
            sim = Simulator()
            sink = TimedSink(sim)
            pipe = Pipe(sim, delay=0.010, sink=sink, batching=batching)
            for k in range(5):
                sim.schedule(0.001 * k or 1e-6, pipe.deliver, make_packet())
            sim.run(1.0)
            return sim, sink.times

        on_sim, on_times = arrivals(True)
        _, off_times = arrivals(False)
        assert on_times == off_times
        assert on_sim.events_batched > 0


class TestCounters:
    def test_batch_counters_on_uninterrupted_burst(self):
        sim, link, sink = run_burst(n=10, batching=True)
        assert len(sink.times) == 10
        assert link.batches == 1
        assert link.batched_packets == 9
        assert link.longest_batch == 10
        assert sim.events_batched == 9

    def test_unbatched_link_never_batches(self):
        sim, link, sink = run_burst(n=10, batching=False)
        assert len(sink.times) == 10
        assert link.batches == 0
        assert link.batched_packets == 0
        assert sim.events_batched == 0

    def test_foreign_event_breaks_batch(self):
        sim = Simulator()
        q, link, sink = make_link(sim)
        for _ in range(10):
            q.enqueue(make_packet(size=1000))
        sim.schedule(0.0055, lambda: None)  # mid-burst foreign event
        sim.run(1.0)
        assert len(sink.times) == 10
        assert link.batches == 2
        assert sim.batch_breaks >= 1

    def test_step_mode_disables_batching(self):
        sim = Simulator()
        q, link, sink = make_link(sim)
        for _ in range(5):
            q.enqueue(make_packet(size=1000))
        while sim.step():
            pass
        assert len(sink.times) == 5
        assert sink.times == pytest.approx([0.001 * k for k in range(1, 6)])
        assert sim.events_batched == 0  # no run horizon, nothing absorbed


class TestAccounting:
    def test_busy_time_and_utilization_match_unbatched(self):
        _, batched, _ = run_burst(batching=True)
        _, unbatched, _ = run_burst(batching=False)
        assert batched.busy_time == unbatched.busy_time
        assert batched.busy_time == pytest.approx(0.010)
        assert batched.utilization(0.010) == pytest.approx(1.0)
        assert batched.utilization(0.020) == pytest.approx(0.5)

    def test_idle_time_accrues_between_bursts(self):
        sim = Simulator()
        q, link, sink = make_link(sim)
        q.enqueue(make_packet(size=1000))
        sim.schedule(0.005, q.enqueue, make_packet(size=1000))
        sim.run(0.010)
        # Busy [0, 1ms] and [5, 6ms]; the 4 ms gap is the accrued idle
        # time (trailing idle is accounted at the next busy transition).
        assert link.busy_time == pytest.approx(0.002)
        assert link.idle_time == pytest.approx(0.004)


class TestFaultInteraction:
    def test_flap_lands_mid_batch(self):
        """An outage event interrupts a drain exactly between completions:
        the in-flight packet finishes, nothing new starts, and the
        interruption is counted."""
        sim = Simulator()
        q, link, sink = make_link(sim)
        for _ in range(10):
            q.enqueue(make_packet(size=1000))
        sim.schedule(0.0025, link.set_down)  # between 2 ms and 3 ms
        sim.schedule(0.010, link.set_up)
        sim.run(1.0)
        assert link.outages == 1
        assert link.interrupted_batches == 1
        # 3 packets before the outage (the one in flight at 2.5 ms
        # completes at 3 ms), 7 after restoration at 10 ms.
        assert sink.times == pytest.approx(
            [0.001, 0.002, 0.003] + [0.010 + 0.001 * k for k in range(1, 8)]
        )
        assert link.busy_time == pytest.approx(0.010)

    def test_flap_timing_matches_unbatched(self):
        def flap(batching):
            sim = Simulator()
            q, link, sink = make_link(sim, batching=batching)
            for _ in range(10):
                q.enqueue(make_packet(size=1000))
            sim.schedule(0.0025, link.set_down)
            sim.schedule(0.010, link.set_up)
            sim.run(1.0)
            return link, sink.times

        on_link, on_times = flap(True)
        off_link, off_times = flap(False)
        assert on_times == off_times
        assert on_link.busy_time == off_link.busy_time
        assert on_link.outages == off_link.outages == 1

    def test_flap_while_idle_interrupts_nothing(self):
        sim = Simulator()
        q, link, sink = make_link(sim)
        q.enqueue(make_packet(size=1000))
        sim.schedule(0.005, link.set_down)  # link drained and idle by then
        sim.run(0.010)
        assert link.outages == 1
        assert link.interrupted_batches == 0
