"""Statistical helpers for the paper's evaluation metrics.

Everything Figures 14–20 report reduces to a handful of reusable
computations: empirical CDFs of per-packet queue delay, percentile
summaries, Jain's fairness index, the per-class rate-balance ratio, and
normalized per-flow rates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ecdf",
    "percentile_summary",
    "jain_fairness",
    "rate_balance_ratio",
    "normalized_rates",
    "geometric_mean",
]


def ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities).

    Used for Figure 14's queue-delay CDF comparison.
    """
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def percentile_summary(
    samples: Sequence[float], percentiles: Iterable[float] = (1, 25, 50, 99)
) -> Dict[str, float]:
    """Mean plus the requested percentiles, keyed 'mean', 'p1', 'p25', ...

    Figure 16 uses mean and P99; Figure 17 P25/mean/P99; Figures 18 and 20
    P1/mean/P99 — all served by this one helper.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        out = {"mean": math.nan}
        out.update({f"p{int(q)}": math.nan for q in percentiles})
        return out
    out = {"mean": float(np.mean(arr))}
    for q in percentiles:
        out[f"p{int(q)}"] = float(np.percentile(arr, q))
    return out


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index (Σx)²/(n·Σx²) ∈ (0, 1]."""
    arr = np.asarray(rates, dtype=float)
    if arr.size == 0:
        return math.nan
    denom = arr.size * float(np.sum(arr * arr))
    if denom == 0:
        return math.nan
    return float(np.sum(arr)) ** 2 / denom


def rate_balance_ratio(
    rates_a: Sequence[float], rates_b: Sequence[float]
) -> float:
    """Per-flow throughput ratio between two classes (Figures 15 and 19).

    Defined as mean-per-flow rate of class A divided by class B's.  The
    paper's coexistence goal is a ratio ≈ 1; PIE's DCTCP-starves-Cubic
    pathology shows up as ≈ 0.1 for Cubic/DCTCP.
    """
    a = np.asarray(rates_a, dtype=float)
    b = np.asarray(rates_b, dtype=float)
    if a.size == 0 or b.size == 0:
        return math.nan
    mean_b = float(np.mean(b))
    if mean_b == 0:
        return math.inf
    return float(np.mean(a)) / mean_b


def normalized_rates(
    per_flow_rates: Sequence[float], capacity_bps: float, total_flows: int
) -> List[float]:
    """Per-flow rate divided by the equal-share 'fair' rate (Figure 20).

    ``fair = capacity / total_flows`` across *all* concurrent flows of
    both classes, as the figure's caption defines.
    """
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive (got {capacity_bps})")
    if total_flows <= 0:
        raise ValueError(f"total_flows must be positive (got {total_flows})")
    fair = capacity_bps / total_flows
    return [r / fair for r in per_flow_rates]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-positive entries (log-domain average)."""
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if arr.size == 0:
        return math.nan
    return float(np.exp(np.mean(np.log(arr))))
