"""Per-flow accounting: goodput, windows, marks and drops.

One :class:`FlowRecord` per flow collects what the receiver delivers
in-order (goodput — what Figures 15, 19 and 20 report) and what the
sender experienced (reductions, retransmits).  :class:`FlowTable` groups
records by traffic class so the rate-balance ratios can be computed per
(class A, class B) pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.stats import rate_balance_ratio

__all__ = ["FlowRecord", "FlowTable"]


class FlowRecord:
    """Accounting for one flow over an observation window."""

    def __init__(self, flow_id: int, label: str, mss_bytes: int):
        self.flow_id = flow_id
        self.label = label
        self.mss_bytes = mss_bytes
        self.segments_delivered = 0
        self._window_start: Optional[float] = None
        self._window_segments = 0

    def on_segment(self, now: float) -> None:
        """Receiver callback: one in-order segment delivered."""
        self.segments_delivered += 1
        if self._window_start is not None:
            self._window_segments += 1

    def open_window(self, now: float) -> None:
        """Begin the measurement window (after warm-up)."""
        self._window_start = now
        self._window_segments = 0

    def goodput_bps(self, now: float) -> float:
        """Goodput over the open measurement window, in bits/second."""
        if self._window_start is None or now <= self._window_start:
            return 0.0
        return self._window_segments * self.mss_bytes * 8.0 / (now - self._window_start)


class FlowTable:
    """All flows of an experiment, grouped by class label."""

    def __init__(self) -> None:
        self._records: Dict[int, FlowRecord] = {}

    def add(self, flow_id: int, label: str, mss_bytes: int) -> FlowRecord:
        if flow_id in self._records:
            raise ValueError(f"flow id {flow_id} already registered")
        record = FlowRecord(flow_id, label, mss_bytes)
        self._records[flow_id] = record
        return record

    def __getitem__(self, flow_id: int) -> FlowRecord:
        return self._records[flow_id]

    def __len__(self) -> int:
        return len(self._records)

    def labels(self) -> List[str]:
        return sorted({r.label for r in self._records.values()})

    def by_label(self, label: str) -> List[FlowRecord]:
        return [r for r in self._records.values() if r.label == label]

    def open_windows(self, now: float) -> None:
        for record in self._records.values():
            record.open_window(now)

    def goodputs(self, label: str, now: float) -> List[float]:
        return [r.goodput_bps(now) for r in self.by_label(label)]

    def balance(self, label_a: str, label_b: str, now: float) -> float:
        """Per-flow goodput ratio label_a / label_b (Figure 15's metric)."""
        return rate_balance_ratio(
            self.goodputs(label_a, now), self.goodputs(label_b, now)
        )
