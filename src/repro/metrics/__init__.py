"""Measurement substrate: time series, statistics, per-flow accounting."""

from repro.metrics.export import result_summary, write_result_json, write_series_csv
from repro.metrics.flowstats import FlowRecord, FlowTable
from repro.metrics.series import Sampler, TimeSeries
from repro.metrics.stats import (
    ecdf,
    geometric_mean,
    jain_fairness,
    normalized_rates,
    percentile_summary,
    rate_balance_ratio,
)

__all__ = [
    "TimeSeries",
    "Sampler",
    "FlowRecord",
    "FlowTable",
    "ecdf",
    "percentile_summary",
    "jain_fairness",
    "rate_balance_ratio",
    "normalized_rates",
    "geometric_mean",
    "result_summary",
    "write_result_json",
    "write_series_csv",
]
