"""Time-series recording.

Thin, allocation-friendly recorders used throughout the harness:

* :class:`TimeSeries` — (t, value) samples; queue-delay traces (Figures 6,
  11–13), probability traces (Figure 17) and utilization traces
  (Figure 18) are all instances.
* :class:`Sampler` — drives a recording callback on a fixed period (the
  paper's plots use a 1 s sampling interval; Figure 12's overshoot detail
  uses 100 ms).

Storage
-------
Samples live in ``array('d')`` buffers: flat C double storage with
amortized-doubling growth, so an append is one unboxed store instead of
a boxed-``float`` + pointer append, and a million-sample trace costs
8 MB instead of ~28 MB of float objects.  The numpy export copies out of
the buffer (``np.frombuffer`` views would pin the buffer and make every
later append raise ``BufferError``) and is cached until the next append.
Pickles carry the raw buffers; :meth:`TimeSeries.__setstate__` also
accepts the plain-list payloads written by earlier versions, so old
result-cache entries stay loadable.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Union

import numpy as np

from repro.sim.engine import Simulator

__all__ = ["TimeSeries", "Sampler"]


class TimeSeries:
    """Append-only series of (time, value) points with numpy export.

    The numpy arrays returned by :attr:`times`/:attr:`values` are built
    lazily and cached — figure and summary code calls ``window``/``mean``/
    ``percentile`` many times over the same finished series, and
    rebuilding a fresh array per access dominated those paths.  The cache
    is invalidated on :meth:`append`; treat the returned arrays as
    read-only snapshots.
    """

    __slots__ = ("name", "_t", "_v", "_t_arr", "_v_arr")

    def __init__(self, name: str = ""):
        self.name = name
        self._t: array = array("d")
        self._v: array = array("d")
        self._t_arr: Union[np.ndarray, None] = None
        self._v_arr: Union[np.ndarray, None] = None

    def append(self, t: float, value: float) -> None:
        self._t.append(t)
        self._v.append(value)
        self._t_arr = None
        self._v_arr = None

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        arr = self._t_arr
        if arr is None:
            arr = self._t_arr = np.array(self._t, dtype=np.float64)
        return arr

    @property
    def values(self) -> np.ndarray:
        arr = self._v_arr
        if arr is None:
            arr = self._v_arr = np.array(self._v, dtype=np.float64)
        return arr

    def window(self, t_from: float, t_to: float) -> np.ndarray:
        """Values with t_from <= t < t_to."""
        t = self.times
        mask = (t >= t_from) & (t < t_to)
        return self.values[mask]

    # The cached arrays are derived state; keep pickles (result cache,
    # process-pool transfer) lean by rebuilding them on demand instead.
    def __getstate__(self) -> Dict[str, Any]:
        return {"name": self.name, "t": self._t, "v": self._v}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.name = state["name"]
        t, v = state["t"], state["v"]
        # Pre-buffer pickles stored plain lists of boxed floats.
        self._t = t if isinstance(t, array) else array("d", t)
        self._v = v if isinstance(v, array) else array("d", v)
        self._t_arr = None
        self._v_arr = None

    def mean(self, t_from: float = 0.0, t_to: float = float("inf")) -> float:
        vals = self.window(t_from, t_to)
        return float(np.mean(vals)) if vals.size else float("nan")

    def max(self, t_from: float = 0.0, t_to: float = float("inf")) -> float:
        vals = self.window(t_from, t_to)
        return float(np.max(vals)) if vals.size else float("nan")

    def percentile(
        self, q: float, t_from: float = 0.0, t_to: float = float("inf")
    ) -> float:
        vals = self.window(t_from, t_to)
        return float(np.percentile(vals, q)) if vals.size else float("nan")

    def std(self, t_from: float = 0.0, t_to: float = float("inf")) -> float:
        vals = self.window(t_from, t_to)
        return float(np.std(vals)) if vals.size else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TimeSeries {self.name!r} n={len(self)}>"


class Sampler:
    """Calls ``probe()`` every ``period`` seconds and records the result."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period: float = 1.0,
        name: str = "",
        start_delay: float = 0.0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        self.series = TimeSeries(name)
        self._probe = probe
        sim.every(period, self._tick, start_delay=max(start_delay, period))
        self._sim = sim

    def _tick(self) -> None:
        self.series.append(self._sim.now, self._probe())
