"""Export experiment results to JSON / CSV artifacts.

Reproduction runs are only useful if their outputs can leave the process:
this module serializes an :class:`~repro.harness.experiment.ExperimentResult`
(summary + sampled series) to JSON, and any recorded time series to CSV,
so results can be archived, diffed across code versions, or plotted with
external tooling.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import ExperimentResult
    from repro.metrics.series import TimeSeries

__all__ = ["result_summary", "write_result_json", "write_series_csv"]


def _clean(value: float) -> Optional[float]:
    """JSON has no NaN/Inf; map them to None."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def result_summary(result: "ExperimentResult") -> Dict:
    """A JSON-ready dictionary of an experiment's headline numbers."""
    exp = result.experiment
    summary = {
        "config": {
            "capacity_bps": exp.capacity_bps,
            "duration_s": exp.duration,
            "warmup_s": exp.warmup,
            "seed": exp.seed,
            "buffer_packets": exp.buffer_packets,
            "flows": [
                {
                    "cc": g.cc,
                    "count": g.count,
                    "rtt_s": g.rtt,
                    "label": g.label or g.cc,
                    "sack": g.sack,
                }
                for g in exp.flows
            ],
            "udp": [
                {"rate_bps": g.rate_bps, "count": g.count} for g in exp.udp
            ],
        },
        "queue_delay": {
            k: _clean(v) for k, v in result.sojourn_summary().items()
        },
        "utilization": {
            k: _clean(v) for k, v in result.utilization_summary().items()
        },
        "goodput_bps": {
            label: [_clean(r) for r in result.goodputs(label)]
            for label in result.class_labels()
        },
        "queue_counters": {
            "arrived": result.queue_stats.arrived,
            "dequeued": result.queue_stats.dequeued,
            "aqm_dropped": result.queue_stats.aqm_dropped,
            "tail_dropped": result.queue_stats.tail_dropped,
            "ce_marked": result.queue_stats.ce_marked,
        },
    }
    if result.aqm is not None:
        summary["aqm"] = {
            "type": type(result.aqm).__name__,
            "final_probability": _clean(result.aqm.probability),
            "final_raw_probability": _clean(result.aqm.raw_probability),
        }
    return summary


def write_result_json(result: "ExperimentResult", path: Union[str, Path]) -> Path:
    """Serialize the result summary to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(result_summary(result), indent=2) + "\n")
    return path


def write_series_csv(series: "TimeSeries", path: Union[str, Path]) -> Path:
    """Write a time series as two-column CSV (time, value)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", series.name or "value"])
        for t, v in zip(series.times, series.values):
            writer.writerow([repr(float(t)), repr(float(v))])
    return path
