"""Common AQM interface and the queue view it operates on.

Every AQM in this repository — the paper's PI2 and coupled PI+PI2, the PIE
baseline with all of its Linux heuristics, and the lineage algorithms (PI,
RED, CoDel, Curvy RED) — implements the small :class:`AQM` interface:

* :meth:`AQM.on_enqueue` is consulted for every arriving packet and returns
  a :class:`Decision` (pass / CE-mark / drop).  This mirrors the enqueue-
  side drop decision of the Linux ``sch_pie``/``sch_pi2`` qdiscs.
* :meth:`AQM.on_dequeue` observes departures, which PIE's departure-rate
  estimator and CoDel's sojourn logic need.
* :meth:`AQM.attach` wires the AQM to a simulator (for its periodic update
  timer — the PI family recomputes probability every ``T`` seconds) and to
  the :class:`QueueView` it controls.

The queue exposes only what a real qdisc can observe: byte/packet backlog
and a queue-delay estimate.  Two estimators are provided, selected by the
queue (see :mod:`repro.net.queue`): the exact backlog/capacity conversion,
and PIE's measured departure-rate estimator.
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Optional, Protocol

from repro.errors import ControllerDivergence
from repro.units import Bytes, Packets, Probability, Seconds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.net.packet import Packet
    from repro.sim.engine import Simulator


__all__ = [
    "Decision",
    "QueueView",
    "AQM",
    "AQMStats",
    "clamp_unit",
    "guard_finite",
    "is_unit_probability",
]


def clamp_unit(value: float, upper: Probability = 1.0) -> Probability:
    """Clamp ``value`` into ``[0, upper]`` (``upper`` defaults to 1).

    The single clamp used at every probability write in the AQM layer, so
    the ``p ∈ [0, 1]`` domain invariant (and ``p ≤ p_max`` caps) is
    enforced in one place.  ``min(max(...))`` ordering makes NaN propagate
    rather than silently saturate — non-finite candidates must be rejected
    *before* clamping (see :func:`guard_finite`).
    """
    return min(max(value, 0.0), upper)


def guard_finite(value: float, message: str, component: str, **context: object) -> float:
    """Return ``value`` unchanged, raising ``ControllerDivergence`` if it
    is not finite.

    Shared by the controllers (reject NaN/inf *inputs and candidates*
    before they are clamped into the drop probability) and anything else
    that needs the same divergence semantics.  ``context`` is attached to
    the raised error for diagnosis.
    """
    if not math.isfinite(value):
        raise ControllerDivergence(message, component=component, context=dict(context))
    return value


def is_unit_probability(value: float) -> bool:
    """True iff ``value`` is a finite probability in ``[0, 1]``.

    The read-side twin of :func:`clamp_unit`: the runtime invariant
    checker (:mod:`repro.sim.invariants`) uses it to verify that every
    probability an AQM exposes actually satisfies the domain the write
    side enforces.
    """
    return math.isfinite(value) and 0.0 <= value <= 1.0


class Decision(enum.Enum):
    """Outcome of the enqueue-time AQM decision for one packet."""

    PASS = "pass"
    MARK = "mark"
    DROP = "drop"


class QueueView(Protocol):
    """The slice of queue state visible to an AQM."""

    def byte_length(self) -> Bytes:
        """Current backlog in bytes."""
        ...

    def packet_length(self) -> Packets:
        """Current backlog in packets."""
        ...

    def queue_delay(self) -> Seconds:
        """Estimated queuing delay in seconds for a packet arriving now."""
        ...


class AQMStats:
    """Counters shared by every AQM implementation."""

    __slots__ = ("passed", "marked", "dropped", "decisions")

    def __init__(self) -> None:
        self.passed = 0
        self.marked = 0
        self.dropped = 0
        self.decisions = 0

    def record(self, decision: Decision) -> None:
        """Tally one enqueue-time decision."""
        self.decisions += 1
        if decision is Decision.PASS:
            self.passed += 1
        elif decision is Decision.MARK:
            self.marked += 1
        else:
            self.dropped += 1

    @property
    def signal_fraction(self) -> float:
        """Fraction of packets that received a congestion signal."""
        if self.decisions == 0:
            return 0.0
        return (self.marked + self.dropped) / self.decisions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AQMStats pass={self.passed} mark={self.marked} "
            f"drop={self.dropped}>"
        )


class AQM:
    """Base class for active queue management algorithms.

    Subclasses override :meth:`on_enqueue` and, when they are timer-driven
    (the whole PI family), :meth:`update`, which :meth:`attach` arranges to
    run every :attr:`update_interval` seconds of virtual time.

    The attribute :attr:`probability` exposes the algorithm's current
    *applied* congestion-signal probability for instrumentation — this is
    what Figure 17 plots.  For PI2 it is the squared value ``p = p'²``;
    the internal linear value is exposed as :attr:`raw_probability`.
    """

    #: Period of the PI update timer in seconds; None = no timer (e.g. RED).
    update_interval: Optional[Seconds] = None

    def __init__(self) -> None:
        self.stats = AQMStats()
        self.sim: Optional["Simulator"] = None
        self.queue: Optional[QueueView] = None
        self._timer = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, sim: "Simulator", queue: QueueView) -> None:
        """Bind to a simulator and queue; starts the update timer if any."""
        self.sim = sim
        self.queue = queue
        if self.update_interval is not None:
            self._timer = sim.every(self.update_interval, self.update)

    def detach(self) -> None:
        """Stop the update timer (used when tearing down an experiment)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def pause_updates(self) -> None:
        """Suspend the periodic update timer (fault injection: a stalled
        AQM task).  Idempotent; a no-op for timerless AQMs."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def resume_updates(self) -> None:
        """Restart the update timer after :meth:`pause_updates`.

        The controller state (``p``, previous delay) is preserved across
        the stall — exactly what a real qdisc whose update task was
        starved would exhibit on resumption.
        """
        if self._timer is None and self.sim is not None and self.update_interval:
            self._timer = self.sim.every(self.update_interval, self.update)

    @property
    def update_timer(self):
        """The live :class:`~repro.sim.engine.PeriodicTimer`, if any
        (fault injectors attach jitter to it)."""
        return self._timer

    # -- datapath hooks ---------------------------------------------------
    def decide(self, packet: "Packet") -> Decision:
        """Run :meth:`on_enqueue` and record the outcome in :attr:`stats`."""
        decision = self.on_enqueue(packet)
        self.stats.record(decision)
        return decision

    def on_enqueue(self, packet: "Packet") -> Decision:
        """Per-packet decision; override in subclasses."""
        return Decision.PASS

    def on_dequeue(self, packet: "Packet", now: Seconds) -> None:
        """Departure observation; override if the algorithm needs it."""

    def update(self) -> None:
        """Periodic probability recomputation; override in PI-family AQMs."""

    # -- instrumentation --------------------------------------------------
    @property
    def probability(self) -> Probability:
        """Currently applied congestion-signal probability (for plots)."""
        return 0.0

    @property
    def raw_probability(self) -> Probability:
        """Internal controller variable (``p'`` for PI2); defaults to
        :attr:`probability` for single-stage algorithms."""
        return self.probability

    def register_metrics(self, registry: object) -> None:
        """Register the AQM's counters under the ``aqm.`` prefix.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`
        (duck-typed; the AQM layer never imports the observability
        layer).  The provider is evaluated at snapshot time, so the
        exported values are end-of-run state.
        """
        registry.register_provider("aqm", self._metrics_snapshot)  # type: ignore[attr-defined]

    def _metrics_snapshot(self) -> dict:
        """Flat metric values: decision counters plus probabilities.

        PI-family subclasses contribute their controller state through
        ``PIController.state()`` when a ``controller`` attribute is
        present; coupled AQMs additionally expose their Classic-branch
        probability.
        """
        stats = self.stats
        out: dict = {
            "kind": type(self).__name__,
            "decisions": stats.decisions,
            "passed": stats.passed,
            "marked": stats.marked,
            "dropped": stats.dropped,
            "signal_fraction": stats.signal_fraction,
            "probability": self.probability,
            "raw_probability": self.raw_probability,
        }
        controller = getattr(self, "controller", None)
        if controller is not None and hasattr(controller, "state"):
            for key, value in controller.state().items():
                out[f"controller.{key}"] = value
        classic = getattr(self, "classic_probability", None)
        if classic is not None:
            out["classic_probability"] = classic
        return out
