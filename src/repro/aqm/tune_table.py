"""PIE's stepped auto-tune lookup table and its √(2p) interpretation.

PIE scales its gain factors α and β down when the drop probability is
small, using a stepped lookup table (RFC 8033 §5.2; originally only three
steps in the 2013 PIE paper, extended down to 0.0001 % during IETF review
after Briscoe's criticism [6]).  Section 4 of the PI2 paper shows this
table "broadly fits the equation √(2p)": the heuristic table was an
empirical approximation of the analytic square-root law that PI2 obtains
exactly by squaring its linear output.  Figure 5 plots the two together;
the :func:`tune` / :func:`sqrt2p` pair below regenerates it, and the
``KPIE ≈ 1/√2`` identification follows from the fit.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["TUNE_TABLE", "tune", "sqrt2p", "tune_table_rows", "K_PIE", "K_PI2"]

#: RFC 8033 auto-tune steps: (upper probability bound, divisor applied to Δp).
#: The scaling factor plotted in Figure 5 is ``1/divisor``.
TUNE_TABLE: List[Tuple[float, float]] = [
    (0.000001, 2048.0),
    (0.00001, 512.0),
    (0.0001, 128.0),
    (0.001, 32.0),
    (0.01, 8.0),
    (0.1, 2.0),
]

#: The implied scaling constant of PIE (Section 4): tune ≈ √(2p) ⇒ K ≈ 1/√2.
K_PIE = 1.0 / math.sqrt(2.0)

#: PI2's constant: 2.5× larger gains than PIE are stable (Section 4), so
#: K_PI2/K_PIE ≈ 2.5·√2 ≈ 3.5 (the paper's "5.5 dB" responsiveness gain).
K_PI2 = 2.5 * math.sqrt(2.0) * K_PIE


def tune(p: float) -> float:
    """PIE's stepped scaling factor applied to Δp at drop probability ``p``.

    Returns 1 for p ≥ 10 %, then halves/quarters/... down the RFC 8033
    table; this is the stepped curve of Figure 5.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1] (got {p})")
    for bound, divisor in TUNE_TABLE:
        if p < bound:
            return 1.0 / divisor
    return 1.0


def sqrt2p(p: float) -> float:
    """The analytic curve √(2p) that the tune table approximates (Fig 5)."""
    if p < 0:
        raise ValueError(f"probability must be non-negative (got {p})")
    return math.sqrt(2.0 * p)


def tune_table_rows(points_per_decade: int = 4) -> List[Tuple[float, float, float]]:
    """Sample (p, tune(p), √(2p)) across Figure 5's x-range [1e-7, 1].

    Used by the Figure 5 benchmark to print the stepped and analytic
    curves side by side and assert their ratio stays within one table step
    (a factor of 4) over the whole range the RFC covers.
    """
    rows = []
    decades = range(-7, 0)
    for decade in decades:
        for i in range(points_per_decade):
            # repro: allow[PROB] sweep sample point, bounded by the p > 1.0 break below
            p = 10.0 ** (decade + i / points_per_decade)
            if p > 1.0:
                break
            rows.append((p, tune(p), sqrt2p(p)))
    rows.append((1.0, tune(1.0), sqrt2p(1.0)))
    return rows
