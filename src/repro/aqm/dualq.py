"""DualQ Coupled AQM — the paper's stated deployment goal (extension).

The paper repeatedly emphasizes that the single-queue coupled PI+PI2
arrangement it evaluates "is only a step in the research process, not a
recommended deployment": the recommended structure puts Scalable traffic
in its own shallow-latency queue, *coupled* to the Classic queue's AQM
([12, 13]; later standardized as RFC 9332 'DualPI2').  This module
implements that DualQ structure so the repository also covers the paper's
forward pointer:

* two FIFOs behind one link — **L** (Scalable: ECT(1)/CE) and **C**
  (Classic: ECT(0)/Not-ECT);
* one PI controller on the **Classic** queue delay producing ``p'``;
  Classic packets are dropped/marked with ``p'²`` (PI2) and the coupled
  Scalable probability is ``p_CL = k·p'``;
* the L queue additionally applies an immediate shallow-threshold mark on
  its own sojourn time (the native L4S signal); the applied L probability
  is ``max(p_CL, native)``;
* a time-shifted priority scheduler: L is served first unless the Classic
  head-of-line packet has waited ``tshift`` longer than the L head, which
  bounds Classic starvation.

Because the DualQ owns two FIFOs and the scheduling decision, it
implements the *queue-side* interface (`enqueue` / `dequeue` /
`set_wakeup` / `byte_length`) that :class:`repro.net.link.Link` drains,
rather than the per-packet AQM hook.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Optional

from repro.aqm.base import clamp_unit
from repro.aqm.pi import PIController
from repro.core.coupling import K_DEPLOYED
from repro.net.packet import Packet
from repro.net.queue import CapacityDelayEstimator, QueueStats
from repro.sim.engine import Simulator
from repro.sim.random import default_stream

__all__ = ["DualQueueCoupledAqm"]


class DualQueueCoupledAqm:
    """Link-drainable dual queue with coupled PI2 AQM.

    Parameters
    ----------
    sim, capacity_bps, buffer_packets:
        As for :class:`repro.net.queue.AQMQueue` (the buffer limit is
        shared across both queues).
    alpha, beta, target_delay, update_interval:
        The Classic-side PI controller (PI2 gains).
    k:
        Coupling factor between Classic ``p'`` and L marking.
    l_threshold:
        Native L4S shallow marking threshold on L sojourn time (1 ms).
    tshift:
        Time-shift for the priority scheduler: the Classic head is served
        when it has waited this much longer than the L head.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_bps: float,
        buffer_packets: int = 40_000,
        alpha: float = 0.3125,
        beta: float = 3.125,
        target_delay: float = 0.020,
        update_interval: float = 0.032,
        k: float = K_DEPLOYED,
        l_threshold: float = 0.001,
        tshift: float = 0.040,
        rng: Optional[random.Random] = None,
        on_sojourn: Optional[Callable[[float, float, Packet], None]] = None,
    ):
        self.sim = sim
        self.buffer_packets = buffer_packets
        self.estimator = CapacityDelayEstimator(capacity_bps)
        self.controller = PIController(alpha, beta, target_delay, p_max=1.0)
        self.k = k
        self.l_threshold = l_threshold
        self.tshift = tshift
        self.rng = rng or default_stream()
        self.on_sojourn = on_sojourn
        self.stats = QueueStats()
        self.l_stats = QueueStats()
        self.c_stats = QueueStats()

        self._l: deque[Packet] = deque()
        self._c: deque[Packet] = deque()
        self._l_bytes = 0
        self._c_bytes = 0
        self._wakeup: Optional[Callable[[], None]] = None
        sim.every(update_interval, self._update)

    # ------------------------------------------------------------------
    # Controller
    # ------------------------------------------------------------------
    def _update(self) -> None:
        # PI acts on the Classic queue's delay (RFC 9332 structure).
        self.controller.update(self.estimator.delay(self._c_bytes))

    @property
    def probability(self) -> float:
        """Coupled L marking probability ``k·p'`` (clamped)."""
        return clamp_unit(self.k * self.controller.p)

    @property
    def classic_probability(self) -> float:
        """Classic drop/mark probability ``p'²``."""
        return clamp_unit(self.controller.p ** 2)

    # ------------------------------------------------------------------
    # Queue-side interface consumed by Link
    # ------------------------------------------------------------------
    def byte_length(self) -> int:
        """Combined L + C backlog in bytes."""
        return self._l_bytes + self._c_bytes

    def packet_length(self) -> int:
        """Combined L + C backlog in packets."""
        return len(self._l) + len(self._c)

    def queue_delay(self) -> float:
        """Estimated drain time of the combined backlog in seconds."""
        return self.estimator.delay(self.byte_length())

    def set_wakeup(self, fn: Callable[[], None]) -> None:
        """Register the link's wake-up callback (fires on enqueue)."""
        self._wakeup = fn

    def enqueue(self, packet: Packet) -> bool:
        """Classify, signal, and enqueue one arriving packet.

        Scalable (ECT(1)) packets join the L queue and are CE-marked at
        the coupled probability ``k·p'`` or above the native threshold;
        Classic packets join the C queue and face the squared law
        ``p'²``.  Returns False when the packet was dropped.
        """
        self.stats.arrived += 1
        self.stats.bytes_arrived += packet.size
        if self.packet_length() >= self.buffer_packets:
            self.stats.tail_dropped += 1
            return False

        p_prime = self.controller.p
        if packet.is_scalable:
            self.l_stats.arrived += 1
            p_l = clamp_unit(self.k * p_prime)
            native = self.estimator.delay(self._l_bytes) > self.l_threshold
            if native or (p_l > 0.0 and self.rng.random() < p_l):
                packet.mark_ce()
                self.stats.ce_marked += 1
                self.l_stats.ce_marked += 1
            packet.enqueue_time = self.sim.now
            self._l.append(packet)
            self._l_bytes += packet.size
            self.l_stats.enqueued += 1
        else:
            self.c_stats.arrived += 1
            if p_prime > 0.0 and max(self.rng.random(), self.rng.random()) < p_prime:
                if packet.ecn_capable:
                    packet.mark_ce()
                    self.stats.ce_marked += 1
                    self.c_stats.ce_marked += 1
                else:
                    self.stats.aqm_dropped += 1
                    self.c_stats.aqm_dropped += 1
                    return False
            packet.enqueue_time = self.sim.now
            self._c.append(packet)
            self._c_bytes += packet.size
            self.c_stats.enqueued += 1

        self.stats.enqueued += 1
        if self._wakeup is not None:
            self._wakeup()
        return True

    def dequeue(self) -> Optional[Packet]:
        """Serve the next packet under time-shifted L-before-C priority."""
        queue = self._pick_queue()
        if queue is None:
            return None
        packet = queue.popleft()
        if queue is self._l:
            self._l_bytes -= packet.size
            self.l_stats.dequeued += 1
        else:
            self._c_bytes -= packet.size
            self.c_stats.dequeued += 1
        now = self.sim.now
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        if self.on_sojourn is not None:
            self.on_sojourn(now, now - packet.enqueue_time, packet)
        return packet

    def _pick_queue(self) -> Optional[deque]:
        if not self._l and not self._c:
            return None
        if not self._l:
            return self._c
        if not self._c:
            return self._l
        now = self.sim.now
        l_wait = now - self._l[0].enqueue_time
        c_wait = now - self._c[0].enqueue_time
        # Time-shifted priority: L goes first unless C has waited tshift more.
        return self._c if c_wait > l_wait + self.tshift else self._l

    def __len__(self) -> int:
        return self.packet_length()
