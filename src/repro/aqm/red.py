"""Random Early Detection (Floyd & Jacobson), the PI lineage's ancestor.

Section 3 traces PIE's evolution to Hollot et al.'s control-theoretic
analysis of RED [19], which concluded that RED's approach — pushing back
against higher load with *both* higher queuing delay and higher loss — was
unnecessary and motivated the PI controller.  RED is included as the
lineage baseline so the examples and ablations can show the behavioural
difference: under RED the steady-state queue grows with load, whereas the
PI family pins it to the target.

Classic gentle-RED on the *average* queue delay (we use time-units like
the rest of the repository; classic RED used bytes, but the algorithm is
unchanged by the unit conversion):

* EWMA average queue delay ``avg``;
* no signal below ``min_th``; linear ramp of probability up to ``max_p``
  at ``max_th``; gentle region ramping to 1 at ``2·max_th``;
* optional count-based spreading of the drops (Floyd's uniformization).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.net.packet import Packet
from repro.sim.random import default_stream

__all__ = ["RedAqm"]


class RedAqm(AQM):
    """Gentle RED over queue delay.

    Parameters
    ----------
    min_th, max_th:
        Thresholds on the averaged queue delay, in seconds.
    max_p:
        Marking probability at ``max_th``.
    weight:
        EWMA weight for the average queue estimate.
    gentle:
        Ramp to probability 1 between ``max_th`` and ``2·max_th`` instead
        of dropping everything above ``max_th``.
    count_spread:
        Apply Floyd's 1/(1 − count·p) inter-drop spreading.
    """

    def __init__(
        self,
        min_th: float = 0.010,
        max_th: float = 0.030,
        max_p: float = 0.10,
        weight: float = 0.002,
        gentle: bool = True,
        ecn: bool = True,
        count_spread: bool = True,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if not 0 < min_th < max_th:
            raise ValueError(f"need 0 < min_th < max_th (got {min_th}, {max_th})")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p must be in (0,1] (got {max_p})")
        if not 0 < weight <= 1:
            raise ValueError(f"weight must be in (0,1] (got {weight})")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.gentle = gentle
        self.ecn = ecn
        self.count_spread = count_spread
        self.rng = rng or default_stream()
        self.avg = 0.0
        self._count = -1

    def _instant_probability(self) -> float:
        if self.avg < self.min_th:
            return 0.0
        if self.avg < self.max_th:
            return clamp_unit(
                self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
            )
        if self.gentle and self.avg < 2 * self.max_th:
            return clamp_unit(
                self.max_p + (1 - self.max_p) * (self.avg - self.max_th) / self.max_th
            )
        return 1.0

    def on_enqueue(self, packet: Packet) -> Decision:
        """RED verdict from the EWMA average (with count-spread option)."""
        # EWMA update on every arrival, as classic RED does.
        self.avg += self.weight * (self.queue.queue_delay() - self.avg)
        p = self._instant_probability()
        if p <= 0.0:
            self._count = -1
            return Decision.PASS
        self._count += 1
        if self.count_spread:
            denom = 1.0 - self._count * p
            pa = 1.0 if denom <= 0 else clamp_unit(p / denom)
        else:
            pa = p
        if self.rng.random() >= pa:
            return Decision.PASS
        self._count = -1
        if self.ecn and packet.ecn_capable and self.avg < self.max_th:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> float:
        """Instantaneous RED probability at the current EWMA average."""
        return self._instant_probability()
