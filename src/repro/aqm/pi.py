"""The basic Proportional Integral AQM (Hollot et al. [18]).

This is the core controller of the whole PIE/PI2 family (the paper's
Figure 2 / equation (4)): every update interval ``T``,

    p(t) = p(t−T) + α·(τ(t) − τ₀) + β·(τ(t) − τ(t−T)),

with τ the queuing delay, τ₀ the target, α the integral gain and β the
proportional gain (both in Hz), and p clamped to [0, 1].  The probability
is applied directly to packets — drop for Not-ECT, CE-mark for
ECN-capable traffic.

Two roles in the paper:

* With fixed Classic-scale gains and no squaring it is the **'pi' curve of
  Figure 6** — the demonstration that an un-tuned PI controller driving
  Classic TCP over-reacts at low load (p too small for fixed gains),
  causing underutilization and an oscillating queue.
* With the Scalable gains and applied to DCTCP it is the **'scal pi'
  configuration of Figure 7** and the Scalable branch of the coupled AQM:
  a Scalable control's window is linear in p (equation (11)), so the linear
  controller needs no output-stage correction.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit, guard_finite
from repro.net.packet import Packet
from repro.sim.random import default_stream
from repro.units import PerSecond, Probability, Seconds

__all__ = ["PIController", "PiAqm"]

#: Paper defaults (Figure 6 caption): PIE-scale gains without auto-tuning.
DEFAULT_ALPHA: PerSecond = 0.125
DEFAULT_BETA: PerSecond = 1.25
DEFAULT_TARGET: Seconds = 0.020
DEFAULT_T_UPDATE: Seconds = 0.032


class PIController:
    """The bare PI difference equation, shared by PI, PIE, PI2 and coupled.

    Keeps no opinion about what the output means (drop probability p for
    PI/PIE, pseudo-probability p' for PI2) — that is exactly the
    separation the paper introduces between the generic controller and the
    congestion-control-specific output stage (Figure 1).
    """

    def __init__(
        self,
        alpha: PerSecond,
        beta: PerSecond,
        target: Seconds,
        p_max: Probability = 1.0,
    ):
        if alpha <= 0 or beta <= 0:
            raise ValueError(f"gains must be positive (got alpha={alpha}, beta={beta})")
        if target <= 0:
            raise ValueError(f"target delay must be positive (got {target})")
        if not 0.0 < p_max <= 1.0:
            raise ValueError(f"p_max must be in (0,1] (got {p_max})")
        self.alpha = alpha
        self.beta = beta
        self.target = target
        self.p_max = p_max
        self.p: Probability = 0.0
        self.prev_delay: Seconds = 0.0

    def update(self, delay: Seconds, gain_scale: float = 1.0) -> Probability:
        """One controller step: equation (4), returning the new output.

        ``gain_scale`` multiplies Δp; PIE's auto-tune passes its stepped
        table value here, everyone else passes 1.

        A non-finite input or output raises
        :class:`~repro.errors.ControllerDivergence` instead of silently
        clamping garbage into the drop probability: a NaN delay estimate
        (e.g. a broken departure-rate measurement) would otherwise poison
        ``p`` and every later update while the run appears to succeed.
        """
        guard_finite(
            delay,
            f"queue-delay input to PI update is not finite: {delay!r}",
            component="PIController",
            p=self.p,
            prev_delay=self.prev_delay,
        )
        delta = (
            self.alpha * (delay - self.target)
            + self.beta * (delay - self.prev_delay)
        ) * gain_scale
        candidate = guard_finite(
            self.p + delta,
            f"PI update produced a non-finite probability: {self.p + delta!r}",
            component="PIController",
            p=self.p,
            delay=delay,
            delta=delta,
            gain_scale=gain_scale,
        )
        self.p = clamp_unit(candidate, self.p_max)
        self.prev_delay = delay
        return self.p

    def reset(self) -> None:
        """Zero the integrator state (``p`` and the previous delay sample)."""
        self.p = 0.0
        self.prev_delay = 0.0

    def state(self) -> dict:
        """Read-only snapshot of the controller for telemetry export.

        Feeds the ``aqm.controller.*`` metrics and the tracer's
        ``aqm_update`` fields; reading it never perturbs the difference
        equation.
        """
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "target": self.target,
            "p_max": self.p_max,
            "p": self.p,
            "prev_delay": self.prev_delay,
        }


class PiAqm(AQM):
    """Plain PI AQM applying its output probability directly.

    Parameters follow the paper's Figure 6 caption defaults.  ``rng``
    must be supplied for reproducible drop decisions (use a stream from
    :class:`repro.sim.RandomStreams`).
    """

    def __init__(
        self,
        alpha: PerSecond = DEFAULT_ALPHA,
        beta: PerSecond = DEFAULT_BETA,
        target_delay: Seconds = DEFAULT_TARGET,
        update_interval: Seconds = DEFAULT_T_UPDATE,
        p_max: Probability = 1.0,
        ecn: bool = True,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        self.controller = PIController(alpha, beta, target_delay, p_max)
        self.update_interval = update_interval
        self.ecn = ecn
        self.rng = rng or default_stream()

    def update(self) -> None:
        """Periodic PI step: recompute ``p`` from the current queue delay."""
        self.controller.update(self.queue.queue_delay())

    def on_enqueue(self, packet: Packet) -> Decision:
        """Signal the arriving packet with probability ``p`` (mark if ECT)."""
        p = self.controller.p
        if p <= 0.0 or self.rng.random() >= p:
            return Decision.PASS
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> Probability:
        """Currently applied drop/mark probability ``p``."""
        return self.controller.p
