"""CoDel (Nichols & Jacobson [27]) — the time-units lineage baseline.

Section 3 credits CoDel with teaching PIE to measure the queue in units of
time.  CoDel is dequeue-driven: it tracks the per-packet sojourn time and,
once the sojourn has stayed above ``target`` for an ``interval``, enters a
dropping state in which drops are spaced by ``interval/√count`` (the
control law that pressures Reno-like flows whose rate scales as 1/√p).

Our queue consults AQMs at *enqueue* time, so this implementation keeps
the canonical state machine but evaluates it against the head-of-line
sojourn observed at dequeue and applies the pending drop decision to the
next arrival.  For the long-running-flow scenarios in this repository the
behaviour matches dequeue-side CoDel closely; it is a comparison baseline,
not a reproduction target.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.net.packet import Packet

__all__ = ["CodelAqm"]


class CodelAqm(AQM):
    """CoDel with the standard 5 ms target / 100 ms interval defaults."""

    def __init__(
        self,
        target: float = 0.005,
        interval: float = 0.100,
        ecn: bool = True,
    ):
        super().__init__()
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.ecn = ecn
        self.dropping = False
        self.count = 0
        self.first_above_time: Optional[float] = None
        self.drop_next = 0.0
        self._signal_pending = False

    # ------------------------------------------------------------------
    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self.count)

    def on_dequeue(self, packet: Packet, now: float) -> None:
        """Run the CoDel state machine on the departing packet's sojourn."""
        sojourn = now - packet.enqueue_time
        if sojourn < self.target:
            self.first_above_time = None
            if self.dropping:
                self.dropping = False
            return
        if not self.dropping:
            if self.first_above_time is None:
                self.first_above_time = now + self.interval
            elif now >= self.first_above_time:
                self.dropping = True
                # Resume from the previous count if we re-enter quickly.
                if now - self.drop_next < 8 * self.interval and self.count > 2:
                    self.count -= 2
                else:
                    self.count = 1
                self.drop_next = self._control_law(now)
        elif now >= self.drop_next:
            self.count += 1
            self._signal_pending = True
            self.drop_next = self._control_law(self.drop_next)

    def on_enqueue(self, packet: Packet) -> Decision:
        """Deliver a pending dequeue-side signal to the next arrival.

        CoDel decides on dequeue but this simulator signals on enqueue
        (like ``sch_pie``), so the decision is carried over one packet.
        """
        if not self._signal_pending:
            return Decision.PASS
        self._signal_pending = False
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> float:
        """CoDel has no explicit probability; expose a rough equivalent.

        While dropping, signals are spaced ``interval/√count`` apart in
        time; dividing the spacing into an assumed per-interval packet
        budget would need the link rate, so we simply report
        ``min(1, √count · target/interval)`` as a monotone proxy used only
        for instrumentation plots.
        """
        if not self.dropping:
            return 0.0
        return clamp_unit(math.sqrt(self.count) * self.target / self.interval)
