"""Curvy RED — the coupled-AQM example from the DualQ IETF draft [13].

Section 3 notes that the dual-queue coupled AQM draft "is written
sufficiently generically that it covers the PI2 approach, but the example
AQM it gives is based on a RED-like AQM called Curvy RED".  It is included
as the alternative coupled output stage so benchmarks can compare the
PI-based coupling of this paper against the draft's RED-based one.

Curvy RED derives both probabilities directly from the instantaneous
queue delay ``q`` against a scaling constant: the Scalable branch is a
linear ramp and the Classic branch the *square* of a (half-slope) ramp —
the same ``pc = (ps/k)²`` coupling shape as equation (14), but driven by
queue position rather than by a PI controller, so it inherits RED's
push-back-with-delay behaviour instead of holding delay at a target:

    ps = clamp(q / (k_curvy · range)),       pc = clamp(q / (2·k_curvy·range))²
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.net.packet import Packet
from repro.sim.random import default_stream

__all__ = ["CurvyRedAqm"]


class CurvyRedAqm(AQM):
    """Curvy RED with ECN-based Scalable/Classic classification.

    Parameters
    ----------
    range_delay:
        Queue delay at which the Scalable ramp reaches 1 (with
        ``k_curvy = 1``); plays the role of RED's max threshold.
    k_curvy:
        Slope divisor; the Classic branch uses ``2·k_curvy`` and squares,
        giving the equation (14) relation between the two branches.
    """

    def __init__(
        self,
        range_delay: float = 0.040,
        k_curvy: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if range_delay <= 0:
            raise ValueError(f"range_delay must be positive (got {range_delay})")
        if k_curvy <= 0:
            raise ValueError(f"k_curvy must be positive (got {k_curvy})")
        self.range_delay = range_delay
        self.k_curvy = k_curvy
        self.rng = rng or default_stream()

    # ------------------------------------------------------------------
    def _ps(self) -> float:
        q = self.queue.queue_delay()
        return clamp_unit(q / (self.k_curvy * self.range_delay))

    def on_enqueue(self, packet: Packet) -> Decision:
        """Curvy RED verdict: linear ``ps`` for Scalable, squared for Classic."""
        ps = self._ps()
        if packet.is_scalable:
            if ps > 0.0 and self.rng.random() < ps:
                return Decision.MARK
            return Decision.PASS
        pc_prime = clamp_unit(ps / 2.0)
        if pc_prime > 0.0 and max(self.rng.random(), self.rng.random()) < pc_prime:
            return Decision.MARK if packet.ecn_capable else Decision.DROP
        return Decision.PASS

    @property
    def probability(self) -> float:
        """Scalable-branch marking probability ``ps``."""
        return self._ps()

    @property
    def classic_probability(self) -> float:
        """Classic-branch signal probability ``(ps/2)²`` (equation 14)."""
        return clamp_unit((self._ps() / 2.0) ** 2)
