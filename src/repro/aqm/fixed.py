"""Fixed-probability Bernoulli marker/dropper.

Appendix A's window laws assume "an idealized uniform ... marker, which
marks every 1/p packets" or its Bernoulli equivalent.  This AQM applies a
*constant* congestion-signal probability, making it the oracle the
integration tests use to measure each TCP model's steady-state window
against equations (5)–(12), and a convenient primitive for examples.

Two flavours:

* :class:`FixedProbabilityAqm` — i.i.d. Bernoulli(p) per packet.
* :class:`DeterministicMarker` — marks exactly every ``round(1/p)``-th
  packet, the literal "uniform deterministic marker" of Appendix A (less
  variance; DCTCP's law is derived against this).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.net.packet import Packet
from repro.sim.random import default_stream

__all__ = ["FixedProbabilityAqm", "DeterministicMarker"]


class FixedProbabilityAqm(AQM):
    """Signal each packet independently with constant probability ``p``."""

    def __init__(self, p: float, rng: Optional[random.Random] = None, ecn: bool = True):
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0,1] (got {p})")
        self.p = p
        self.rng = rng or default_stream()
        self.ecn = ecn

    def on_enqueue(self, packet: Packet) -> Decision:
        """Bernoulli(p) verdict: mark when ECT, drop otherwise."""
        if self.p <= 0.0 or self.rng.random() >= self.p:
            return Decision.PASS
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> float:
        """The constant configured probability ``p``."""
        return self.p


class DeterministicMarker(AQM):
    """Signal exactly every ``round(1/p)``-th packet (per-flow counters).

    Per-flow spacing matters: with several flows sharing the queue, a
    global counter would give each flow a *random* subset of marks, losing
    the determinism the idealized model assumes.
    """

    def __init__(self, p: float, ecn: bool = True):
        super().__init__()
        if not 0.0 < p <= 1.0:
            raise ValueError(f"probability must be in (0,1] (got {p})")
        self.p = p
        self.interval = max(1, round(1.0 / p))
        self.ecn = ecn
        self._counters: dict[int, int] = {}

    def on_enqueue(self, packet: Packet) -> Decision:
        """Signal the flow's every ``interval``-th packet, else pass."""
        count = self._counters.get(packet.flow_id, 0) + 1
        if count < self.interval:
            self._counters[packet.flow_id] = count
            return Decision.PASS
        self._counters[packet.flow_id] = 0
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> float:
        """Effective signal rate ``1/interval`` (p rounded to a spacing)."""
        return clamp_unit(1.0 / self.interval)
