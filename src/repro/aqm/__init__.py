"""AQM substrate: interface, PIE and its lineage, plus the DualQ extension.

The paper's own algorithms (PI2 and the coupled PI+PI2) live in
:mod:`repro.core`; this package holds everything they are compared with or
built from.
"""

from repro.aqm.adaptive import AdaptivePiAqm
from repro.aqm.base import AQM, AQMStats, Decision, QueueView
from repro.aqm.codel import CodelAqm
from repro.aqm.curvy_red import CurvyRedAqm
from repro.aqm.dualq import DualQueueCoupledAqm
from repro.aqm.fixed import DeterministicMarker, FixedProbabilityAqm
from repro.aqm.pi import PIController, PiAqm
from repro.aqm.pie import BarePieAqm, PieAqm
from repro.aqm.red import RedAqm
from repro.aqm.step import StepThresholdAqm
from repro.aqm.taildrop import TailDropAqm
from repro.aqm.tune_table import K_PI2, K_PIE, TUNE_TABLE, sqrt2p, tune

__all__ = [
    "AQM",
    "AQMStats",
    "Decision",
    "QueueView",
    "PIController",
    "PiAqm",
    "AdaptivePiAqm",
    "PieAqm",
    "BarePieAqm",
    "RedAqm",
    "CurvyRedAqm",
    "CodelAqm",
    "TailDropAqm",
    "DualQueueCoupledAqm",
    "FixedProbabilityAqm",
    "DeterministicMarker",
    "StepThresholdAqm",
    "tune",
    "sqrt2p",
    "TUNE_TABLE",
    "K_PIE",
    "K_PI2",
]
