"""Tail-drop (no AQM) — the bufferbloat control condition.

A queue with ``aqm=None`` already behaves as pure tail-drop; this explicit
class exists so experiments can name the condition and so the examples can
contrast 'no AQM' queue delay against the PI family (the bufferbloat
motivation of the paper's introduction).  Optionally a shallower
packet-count threshold than the physical buffer can be enforced here.
"""

from __future__ import annotations

from typing import Optional

from repro.aqm.base import AQM, Decision
from repro.net.packet import Packet

__all__ = ["TailDropAqm"]


class TailDropAqm(AQM):
    """Drop arrivals once the backlog exceeds ``limit_packets`` (if set)."""

    def __init__(self, limit_packets: Optional[int] = None):
        super().__init__()
        if limit_packets is not None and limit_packets <= 0:
            raise ValueError(f"limit must be positive (got {limit_packets})")
        self.limit_packets = limit_packets

    def on_enqueue(self, packet: Packet) -> Decision:
        """Drop when the configured packet threshold is reached, else pass."""
        if (
            self.limit_packets is not None
            and self.queue.packet_length() >= self.limit_packets
        ):
            return Decision.DROP
        return Decision.PASS
