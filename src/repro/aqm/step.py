"""Step-threshold (on-off) ECN marking — classic data-centre DCTCP style.

The original DCTCP deployment marks every ECN-capable packet while the
instantaneous queue exceeds a shallow threshold K and none below it.
Appendix A contrasts this marker with the PI-driven probabilistic one:

* against a step threshold DCTCP's window follows equation (12),
  ``W = 2/p²`` (on-off marking produces RTT-length mark trains);
* against a probabilistic marker it follows equation (11), ``W = 2/p`` —
  "This explains the same phenomenon found empirically in Irteza et
  al [22], when comparing a step threshold with a RED ramp."

The DualQ extension uses the same mechanism as its native L4S signal.
The threshold can be set in time (queue delay) or bytes; time units are
the default, consistent with the rest of the repository.
"""

from __future__ import annotations

from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.net.packet import Packet

__all__ = ["StepThresholdAqm"]


class StepThresholdAqm(AQM):
    """Mark all ECN-capable traffic while the queue exceeds a threshold.

    Parameters
    ----------
    threshold_delay:
        Queue-delay threshold K in seconds (e.g. 1 ms for L4S-style,
        ~20 µs-per-packet-scale for data-centre DCTCP at 10G).
    threshold_bytes:
        Alternative byte threshold; if given, it takes precedence.
    drop_not_ect:
        Whether Not-ECT packets are dropped above the threshold (off by
        default: the classic deployment assumes an all-ECN data centre,
        so Not-ECT traffic just passes to the tail-drop backstop).
    """

    def __init__(
        self,
        threshold_delay: float = 0.001,
        threshold_bytes: Optional[int] = None,
        drop_not_ect: bool = False,
    ):
        super().__init__()
        if threshold_delay <= 0:
            raise ValueError(f"threshold must be positive (got {threshold_delay})")
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError(f"byte threshold must be positive (got {threshold_bytes})")
        self.threshold_delay = threshold_delay
        self.threshold_bytes = threshold_bytes
        self.drop_not_ect = drop_not_ect
        self.marked = 0
        self.seen = 0

    def _above_threshold(self) -> bool:
        if self.threshold_bytes is not None:
            return self.queue.byte_length() > self.threshold_bytes
        return self.queue.queue_delay() > self.threshold_delay

    def on_enqueue(self, packet: Packet) -> Decision:
        """Mark every ECT arrival while the queue is above the threshold."""
        self.seen += 1
        if not self._above_threshold():
            return Decision.PASS
        if packet.ecn_capable:
            self.marked += 1
            return Decision.MARK
        if self.drop_not_ect:
            return Decision.DROP
        return Decision.PASS

    @property
    def probability(self) -> float:
        """Observed lifetime marking fraction (the p of equation (12))."""
        return clamp_unit(self.marked / self.seen) if self.seen else 0.0
