"""Continuously self-tuning PI — the analytic limit of PIE's step table.

Section 3 surveys self-tuning PI proposals (Hong et al. [21], Hong & Yang
[20]) that retune gains to hold a specified stability margin, and notes
implementations avoided them because they need estimates of N, C and R.
Section 4 then shows PIE's stepped 'tune' table is itself an implicit
self-tuner that "broadly fits √(2p)" — no traffic estimation required,
because for Reno the operating point is observable through p itself.

This AQM closes the circle: it scales the PI gains *continuously* by
``tune(p) = √(2p)`` (clamped to [tune_min, 1]), i.e. PIE with the table
replaced by the curve it approximates.  Section 4's expansion

    (p' + Kπ)² ≈ p + 2Kp'π = p + √(2p)·(√2·K)·π

says this is *equivalent to PI2 up to first order*: controlling p with
gains √2·K scaled by √(2p) is the same as controlling p' = √p with
constant gains K and squaring.  Hence the default gains here are √2 times
PI2's (0.3125, 3.125).  The equivalence test in the suite checks exactly
that — the two AQMs settle the same queue and probability.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.aqm.base import AQM, Decision
from repro.aqm.pi import PIController
from repro.net.packet import Packet
from repro.sim.random import default_stream

__all__ = ["AdaptivePiAqm"]


class AdaptivePiAqm(AQM):
    """PI on the drop probability with continuous √(2p) gain scaling.

    Parameters mirror :class:`~repro.aqm.pie.PieAqm` minus all heuristics;
    ``tuner`` can replace the √(2p) law (e.g. with PIE's stepped table for
    an exact-PIE-core comparison).
    ``tune_min`` bounds the scaling away from zero so the controller can
    move off p = 0 (the stepped table's smallest entry is 1/2048).
    """

    def __init__(
        self,
        alpha: float = 0.3125 * math.sqrt(2.0),
        beta: float = 3.125 * math.sqrt(2.0),
        target_delay: float = 0.020,
        update_interval: float = 0.032,
        tuner: Optional[Callable[[float], float]] = None,
        tune_min: float = 1.0 / 2048.0,
        ecn: bool = True,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if tune_min <= 0:
            raise ValueError(f"tune_min must be positive (got {tune_min})")
        self.controller = PIController(alpha, beta, target_delay)
        self.update_interval = update_interval
        self.tuner = tuner or (lambda p: math.sqrt(2.0 * p))
        self.tune_min = tune_min
        self.ecn = ecn
        self.rng = rng or default_stream()

    def update(self) -> None:
        """Recompute ``p`` with the gains scaled by ``tune(p)``."""
        scale = max(self.tune_min, min(1.0, self.tuner(self.controller.p)))
        self.controller.update(self.queue.queue_delay(), gain_scale=scale)

    def on_enqueue(self, packet: Packet) -> Decision:
        """Signal the arriving packet with probability ``p`` (mark if ECT)."""
        p = self.controller.p
        if p <= 0.0 or self.rng.random() >= p:
            return Decision.PASS
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> float:
        """Currently applied drop/mark probability ``p``."""
        return self.controller.p
