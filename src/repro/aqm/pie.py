"""PIE — Proportional Integral controller Enhanced (RFC 8033 / Linux).

The paper's primary comparison baseline.  PIE wraps the basic PI
controller of :mod:`repro.aqm.pi` with the enhancements and heuristics the
paper catalogues in Sections 3 and 5:

1. **Time-units queue** — queuing delay, not bytes, is controlled
   (provided by the queue's delay estimator; PIE's measured
   departure-rate estimator is in :mod:`repro.net.queue`).
2. **Auto-tuning** — α and β are scaled by the stepped lookup table of
   :mod:`repro.aqm.tune_table` depending on the magnitude of p.  This is
   the heuristic that PI2 replaces with output squaring.
3. **Burst allowance** — no drops for ``max_burst`` (100 ms) after the
   queue has been idle and control has released.
4. The further Linux heuristics the paper lists in Section 5, each
   individually switchable so that the paper's **bare-PIE** (all off; the
   paper found it indistinguishable from full PIE) and the ablation
   benchmarks can exercise them:

   * no drop while p < 20 % and the (old) queue delay < target/2;
   * ECN packets are dropped rather than marked once p exceeds 10 %;
   * Δp capped at 2 % once p exceeds 10 %;
   * Δp forced up by 2 % when queue delay exceeds 250 ms;
   * multiplicative decay of p when the queue is empty;
   * never drop when fewer than a couple of packets are queued.

Defaults follow Table 1: target 20 ms, burst 100 ms, α = 2/16, β = 20/16.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision
from repro.aqm.pi import PIController
from repro.aqm.tune_table import tune
from repro.net.packet import Packet
from repro.sim.random import default_stream
from repro.units import PerSecond, Probability, Seconds

__all__ = ["PieAqm", "BarePieAqm"]


class PieAqm(AQM):
    """Linux-style PIE with individually switchable heuristics.

    Parameters
    ----------
    alpha, beta:
        Base gain factors in Hz, scaled by the auto-tune table each update
        (Table 1 defaults 2/16 and 20/16).
    target_delay:
        τ₀, the queuing-delay reference (20 ms default).
    update_interval:
        T between controller updates (32 ms, the paper's analysis value).
    max_burst:
        Burst allowance in seconds (100 ms; 0 disables).
    auto_tune:
        Apply the stepped gain-scaling table.  Switching this off (with
        the other heuristics) yields the unstable fixed-gain PI the 'pi'
        curve of Figure 6 demonstrates.
    ecn_drop_threshold:
        Above this probability, ECN-capable packets are dropped rather
        than marked (Linux: 10 %).  ``None`` disables the rule — the
        paper's "reworked" configuration used for its PIE results.
    dp_cap_enabled / delay_kick_enabled / drop_early_suppress / decay_enabled:
        The remaining Section 5 heuristics.
    """

    def __init__(
        self,
        alpha: PerSecond = 2.0 / 16.0,
        beta: PerSecond = 20.0 / 16.0,
        target_delay: Seconds = Seconds(0.020),
        update_interval: Seconds = Seconds(0.032),
        max_burst: Seconds = Seconds(0.100),
        auto_tune: bool = True,
        ecn: bool = True,
        ecn_drop_threshold: Optional[Probability] = None,
        dp_cap_enabled: bool = True,
        delay_kick_enabled: bool = True,
        drop_early_suppress: bool = True,
        decay_enabled: bool = True,
        min_backlog_packets: int = 2,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        self.controller = PIController(alpha, beta, target_delay)
        self.update_interval = update_interval
        self.max_burst = max_burst
        self.auto_tune = auto_tune
        self.ecn = ecn
        self.ecn_drop_threshold = ecn_drop_threshold
        self.dp_cap_enabled = dp_cap_enabled
        self.delay_kick_enabled = delay_kick_enabled
        self.drop_early_suppress = drop_early_suppress
        self.decay_enabled = decay_enabled
        self.min_backlog_packets = min_backlog_packets
        self.rng = rng or default_stream()

        self.burst_allowance = max_burst
        self._qdelay: Seconds = 0.0
        self._qdelay_old: Seconds = 0.0

    # ------------------------------------------------------------------
    # Periodic probability recomputation
    # ------------------------------------------------------------------
    def update(self) -> None:
        """RFC 8033 periodic step: PI delta, auto-tune, caps, burst state."""
        self._qdelay = self.queue.queue_delay()
        ctl = self.controller
        p = ctl.p

        delta = ctl.alpha * (self._qdelay - ctl.target) + ctl.beta * (
            self._qdelay - self._qdelay_old
        )
        if self.auto_tune:
            delta *= tune(p)
        # Δp is capped at 2 % once p exceeds 10 % (Section 5 heuristic).
        if self.dp_cap_enabled and p >= 0.1 and delta > 0.02:
            delta = 0.02
        p += delta
        # Extreme-delay kick: force p up when delay exceeds 250 ms.
        if self.delay_kick_enabled and self._qdelay > 0.250:
            p += 0.02
        # Decay towards zero while the queue stays empty.
        if self.decay_enabled and self._qdelay == 0.0 and self._qdelay_old == 0.0:
            p *= 0.98
        ctl.p = min(max(p, 0.0), 1.0)

        # Burst allowance state machine (RFC 8033 §4.4).
        if self.max_burst > 0:
            if (
                ctl.p == 0.0
                and self._qdelay < ctl.target / 2
                and self._qdelay_old < ctl.target / 2
            ):
                self.burst_allowance = self.max_burst
            else:
                self.burst_allowance = max(
                    0.0, self.burst_allowance - self.update_interval
                )

        self._qdelay_old = self._qdelay
        ctl.prev_delay = self._qdelay

    # ------------------------------------------------------------------
    # Enqueue-time decision
    # ------------------------------------------------------------------
    def on_enqueue(self, packet: Packet) -> Decision:
        """Verdict after PIE's suppression heuristics, then Bernoulli(p)."""
        p = self.controller.p
        if self.max_burst > 0 and self.burst_allowance > 0:
            return Decision.PASS
        if (
            self.drop_early_suppress
            and p < 0.2
            and self._qdelay_old < self.controller.target / 2
        ):
            return Decision.PASS
        if self.queue is not None and (
            self.queue.packet_length() < self.min_backlog_packets
        ):
            return Decision.PASS
        if p <= 0.0 or self.rng.random() >= p:
            return Decision.PASS
        if self.ecn and packet.ecn_capable:
            if self.ecn_drop_threshold is not None and p > self.ecn_drop_threshold:
                return Decision.DROP
            return Decision.MARK
        return Decision.DROP

    @property
    def probability(self) -> Probability:
        """Currently applied drop/mark probability ``p``."""
        return self.controller.p


class BarePieAqm(PieAqm):
    """The paper's 'bare-PIE': PIE with every Section 5 heuristic disabled.

    Only the PI core plus the auto-tune gain scaling remain (the scaling
    *is* PIE's response-linearization, so removing it too would give plain
    PI).  The paper reports bare-PIE indistinguishable from full PIE in
    every experiment; the ablation bench re-checks this.
    """

    def __init__(self, **kwargs):
        kwargs.setdefault("max_burst", 0.0)
        kwargs.setdefault("ecn_drop_threshold", None)
        kwargs.setdefault("dp_cap_enabled", False)
        kwargs.setdefault("delay_kick_enabled", False)
        kwargs.setdefault("drop_early_suppress", False)
        kwargs.setdefault("decay_enabled", False)
        super().__init__(**kwargs)
