"""The paper's contribution: PI2 and the coupled PI+PI2 coexistence AQM."""

from repro.core.coupled import (
    DEFAULT_ALPHA_COUPLED,
    DEFAULT_BETA_COUPLED,
    CoupledPi2Aqm,
)
from repro.core.coupling import (
    K_ANALYTIC,
    K_DEPLOYED,
    classic_from_linear,
    classic_from_scalable,
    linear_from_classic,
    scalable_from_classic,
)
from repro.core.pi2 import DEFAULT_ALPHA_PI2, DEFAULT_BETA_PI2, Pi2Aqm

__all__ = [
    "Pi2Aqm",
    "CoupledPi2Aqm",
    "DEFAULT_ALPHA_PI2",
    "DEFAULT_BETA_PI2",
    "DEFAULT_ALPHA_COUPLED",
    "DEFAULT_BETA_COUPLED",
    "K_ANALYTIC",
    "K_DEPLOYED",
    "classic_from_scalable",
    "scalable_from_classic",
    "classic_from_linear",
    "linear_from_classic",
]
