"""PI2 — 'PI Improved with a square' (Sections 4 and 5, Figure 8).

The paper's central contribution for a single (Classic) traffic class.
The structure is Figure 1a:

* a **generic linear stage**: the unmodified PI controller of
  :class:`repro.aqm.pi.PIController` drives a pseudo-probability ``p'``
  that is by definition linearly proportional to load (for ACK-clocked
  sources, load ∝ 1/W and Classic TCP has W ∝ 1/√p, so √p — i.e. p' —
  is the linear signal);
* a **congestion-control-specific output stage**: the applied drop/mark
  probability is ``p = p'²``, which counterbalances the square root in
  the Classic window law.

Squaring flattens the Bode gain margin across the whole load range
(Figure 7), so constant gain factors 2.5× larger than PIE's base values
are stable everywhere — the paper's defaults α = 0.3125 Hz, β = 3.125 Hz
(Figure 6 caption) are exactly 2.5 × PIE's (0.125, 1.25).  All of PIE's
scaling and corrective heuristics are removed (Section 5 'Fewer
Heuristics'); the only operational guard retained is the overload cap:
the Classic probability is limited to 25 % (``p' ≤ 0.5``), beyond which
the queue is allowed to grow and tail-drop takes over.

The squared decision can be computed two ways (Section 5):

* ``"multiply"`` — compare one random variable against ``p'²`` (natural
  in software);
* ``"two-randoms"`` — signal when ``max(Y₁, Y₂) < p'``, i.e. both of two
  independent uniform variables fall below ``p'`` (natural in hardware,
  and needs only half-resolution random words).

Both produce a Bernoulli(p'²) signal; the unit tests check the
distributional equivalence.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.aqm.pi import PIController
from repro.net.packet import Packet
from repro.sim.random import default_stream
from repro.units import PerSecond, Probability, Seconds

__all__ = ["Pi2Aqm", "DEFAULT_ALPHA_PI2", "DEFAULT_BETA_PI2"]

#: PI2 gain defaults (Figure 6/7 captions): 2.5 × PIE's base gains.
DEFAULT_ALPHA_PI2: PerSecond = 0.3125
DEFAULT_BETA_PI2: PerSecond = 3.125


class Pi2Aqm(AQM):
    """Single-class PI2 AQM (drop for Not-ECT, classic CE-mark for ECT).

    Parameters
    ----------
    alpha, beta:
        Constant gain factors in Hz applied to the linear stage.
    target_delay, update_interval:
        τ₀ and T, as for PIE (20 ms / 32 ms defaults).
    classic_p_max:
        Overload cap on the applied (squared) probability; 25 % per
        Section 5.  The internal ``p'`` is clamped at its square root so
        the integrator cannot wind up beyond the achievable signal.
    decision_mode:
        ``"multiply"`` or ``"two-randoms"`` (see module docstring).
    ecn:
        Whether ECT packets are CE-marked instead of dropped (classic ECN
        semantics: mark probability equals drop probability).
    """

    def __init__(
        self,
        alpha: PerSecond = DEFAULT_ALPHA_PI2,
        beta: PerSecond = DEFAULT_BETA_PI2,
        target_delay: Seconds = Seconds(0.020),
        update_interval: Seconds = Seconds(0.032),
        classic_p_max: Probability = 0.25,
        decision_mode: str = "multiply",
        ecn: bool = True,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if decision_mode not in ("multiply", "two-randoms"):
            raise ValueError(
                f"decision_mode must be 'multiply' or 'two-randoms' (got {decision_mode!r})"
            )
        if not 0.0 < classic_p_max <= 1.0:
            raise ValueError(f"classic_p_max must be in (0,1] (got {classic_p_max})")
        self.controller = PIController(
            alpha, beta, target_delay, p_max=math.sqrt(classic_p_max)
        )
        self.update_interval = update_interval
        self.classic_p_max = classic_p_max
        self.decision_mode = decision_mode
        self.ecn = ecn
        self.rng = rng or default_stream()

    # ------------------------------------------------------------------
    def update(self) -> None:
        """One PI step on the *linear* pseudo-probability — no scaling,
        no auto-tune: this is the entire controller (Figure 8)."""
        self.controller.update(self.queue.queue_delay())

    def on_enqueue(self, packet: Packet) -> Decision:
        p_prime = self.controller.p
        if p_prime <= 0.0:
            return Decision.PASS
        if self.decision_mode == "multiply":
            signal = self.rng.random() < p_prime * p_prime
        else:
            # Think twice to drop: both random values must fall below p'.
            signal = max(self.rng.random(), self.rng.random()) < p_prime
        if not signal:
            return Decision.PASS
        if self.ecn and packet.ecn_capable:
            return Decision.MARK
        return Decision.DROP

    # ------------------------------------------------------------------
    @property
    def probability(self) -> Probability:
        """The applied Classic probability ``p = p'²`` (Figure 17's metric)."""
        return clamp_unit(self.controller.p ** 2)

    @property
    def raw_probability(self) -> Probability:
        """The internal linear pseudo-probability ``p'``."""
        return self.controller.p
