"""Probability coupling between Scalable and Classic congestion controls.

Appendix A of the paper derives the drop/mark probability relation that
equalizes the steady-state throughput of a DCTCP flow (equation (11),
``W = 2/p``) and a CReno flow (equation (7), ``W = 1.68/√p``):

    p_classic = (p_scalable / k)²            (equation 14)

with the analytic coupling factor ``k = 2/1.68 ≈ 1.19`` (equation 13/14).
The paper then *deploys* ``k = 2``, validated empirically, because k = 2
is also the optimal ratio between the Scalable and Classic gain factors
for stability, and because dividing by two is cheap in hardware.

These conversions are the congestion-control-specific output stage of
Figure 1: the PI controller operates on the linear pseudo-probability
``p'`` and this module encodes it into the probability each traffic class
must experience.
"""

from __future__ import annotations

import math

__all__ = [
    "K_ANALYTIC",
    "K_DEPLOYED",
    "classic_from_scalable",
    "scalable_from_classic",
    "classic_from_linear",
    "linear_from_classic",
]

#: Equation (14)'s analytically derived coupling factor 2/1.68 ≈ 1.19.
K_ANALYTIC = 2.0 / 1.68

#: The value the paper actually deploys and validates empirically.
K_DEPLOYED = 2.0


def classic_from_scalable(p_scalable: float, k: float = K_DEPLOYED) -> float:
    """Equation (14): classic drop/mark probability from the scalable one.

    ``p_classic = (p_scalable / k)²``, clamped to [0, 1].
    """
    if not 0.0 <= p_scalable <= 1.0:
        raise ValueError(f"probability must be in [0,1] (got {p_scalable})")
    if k <= 0:
        raise ValueError(f"coupling factor must be positive (got {k})")
    return min((p_scalable / k) ** 2, 1.0)


def scalable_from_classic(p_classic: float, k: float = K_DEPLOYED) -> float:
    """Inverse of equation (14): ``p_scalable = k·√p_classic`` (clamped)."""
    if not 0.0 <= p_classic <= 1.0:
        raise ValueError(f"probability must be in [0,1] (got {p_classic})")
    if k <= 0:
        raise ValueError(f"coupling factor must be positive (got {k})")
    return min(k * math.sqrt(p_classic), 1.0)


def classic_from_linear(p_prime: float) -> float:
    """PI2's output stage for Classic traffic: ``p = p'²`` (Section 4)."""
    if not 0.0 <= p_prime <= 1.0:
        raise ValueError(f"pseudo-probability must be in [0,1] (got {p_prime})")
    return p_prime * p_prime


def linear_from_classic(p: float) -> float:
    """Inverse output stage: ``p' = √p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1] (got {p})")
    return math.sqrt(p)
