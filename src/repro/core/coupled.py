"""Coupled PI + PI2 in a single queue (Section 5, Figure 9).

The coexistence AQM: one FIFO queue, one PI controller, two output stages
selected per packet by an ECN classifier.

* The PI controller (Scalable gains, Table 1: α = 10/16, β = 100/16)
  drives the Scalable marking probability ``ps`` directly — a Scalable
  control's window is linear in the signal (equation (11)), so no
  encoding is needed.
* **Classifier** (Figure 9): packets with ECT(1) *or CE* take the
  Scalable branch and are CE-marked when ``ps > Y``; ECT(0) and Not-ECT
  packets take the Classic branch and are marked (ECT(0)) or dropped
  (Not-ECT) when ``ps/k > max(Y₁, Y₂)`` — i.e. with probability
  ``pc = (ps/k)²``, equation (14)'s coupling with the squared output
  stage fused into one decision.
* ``k = 2`` by default (the deployed value; 1.19 is the analytic one —
  the k-factor ablation bench sweeps this).

Overload: ``ps`` saturates at 100 %, at which point the Classic
probability reaches its (ps_max/k)² = 25 % cap — the same limits
Section 5 describes; beyond that the queue grows and tail-drop takes
over.

"Think once to mark, think twice to drop."
"""

from __future__ import annotations

import random
from typing import Optional

from repro.aqm.base import AQM, Decision, clamp_unit
from repro.aqm.pi import PIController
from repro.core.coupling import K_DEPLOYED
from repro.net.packet import Packet
from repro.sim.random import default_stream
from repro.units import PerSecond, Probability, Seconds

__all__ = ["CoupledPi2Aqm", "DEFAULT_ALPHA_COUPLED", "DEFAULT_BETA_COUPLED"]

#: Scalable-branch gains (Table 1: 10/16 and 100/16) — 2× the Classic
#: PI2 gains, matching the paper's note that k = 2 is also the optimal
#: gain-factor ratio.
DEFAULT_ALPHA_COUPLED: PerSecond = 10.0 / 16.0
DEFAULT_BETA_COUPLED: PerSecond = 100.0 / 16.0


class CoupledPi2Aqm(AQM):
    """Single-queue coupled AQM for Classic + Scalable coexistence."""

    def __init__(
        self,
        alpha: PerSecond = DEFAULT_ALPHA_COUPLED,
        beta: PerSecond = DEFAULT_BETA_COUPLED,
        target_delay: Seconds = Seconds(0.020),
        update_interval: Seconds = Seconds(0.032),
        k: float = K_DEPLOYED,
        ps_max: Probability = 1.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__()
        if k <= 0:
            raise ValueError(f"coupling factor k must be positive (got {k})")
        self.controller = PIController(alpha, beta, target_delay, p_max=ps_max)
        self.update_interval = update_interval
        self.k = k
        self.rng = rng or default_stream()
        # Per-class signal accounting (Figure 17 plots these separately).
        self.scalable_marked = 0
        self.scalable_seen = 0
        self.classic_signalled = 0
        self.classic_seen = 0

    # ------------------------------------------------------------------
    def update(self) -> None:
        self.controller.update(self.queue.queue_delay())

    def on_enqueue(self, packet: Packet) -> Decision:
        ps = self.controller.p
        if packet.is_scalable:
            # Scalable branch: direct linear marking, think once.
            self.scalable_seen += 1
            if ps > 0.0 and self.rng.random() < ps:
                self.scalable_marked += 1
                return Decision.MARK
            return Decision.PASS
        # Classic branch: coupled and squared, think twice.
        self.classic_seen += 1
        pc_prime = clamp_unit(ps / self.k)
        if pc_prime > 0.0 and max(self.rng.random(), self.rng.random()) < pc_prime:
            self.classic_signalled += 1
            if packet.ecn_capable:
                return Decision.MARK  # ECT(0): classic ECN marking
            return Decision.DROP
        return Decision.PASS

    # ------------------------------------------------------------------
    @property
    def probability(self) -> Probability:
        """Scalable marking probability ``ps`` (the controller output)."""
        return self.controller.p

    @property
    def classic_probability(self) -> Probability:
        """Classic drop/mark probability ``pc = (ps/k)²`` (equation 14)."""
        return clamp_unit((self.controller.p / self.k) ** 2)

    @property
    def raw_probability(self) -> Probability:
        return self.controller.p
