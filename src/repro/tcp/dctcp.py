"""DCTCP — the paper's Scalable congestion control.

Implements the Data Center TCP of Alizadeh et al. [2] in the configuration
the paper uses (Section 5): the sender sets **ECT(1)** (the proposed
Scalable/L4S identifier) instead of ECT(0), and the receiver echoes CE
marks accurately per packet rather than with RFC 3168's latched ECE.

Sender algorithm:

* per ACK, count acked and CE-marked segments;
* once per window (RTT), update the marked-fraction EWMA
  ``α ← (1−g)·α + g·F`` with gain ``g = 1/16``;
* if any segment in the window was marked, reduce ``cwnd ← cwnd·(1−α/2)``
  (at most once per window).

Under a probabilistic (PI-driven) marker this yields the steady-state
window of equation (11), ``W = 2/p`` — linear in the signal, i.e. a
*Scalable* control with B = 1, which is exactly why the linear PI output
``p'`` can be applied to it directly without squaring.  Under a step
(threshold) marker the classic DCTCP-paper law (12), ``W = 2/p²``, applies
instead; :mod:`repro.analysis.steady_state` provides both.

On loss DCTCP falls back to Reno behaviour (halve the window).
"""

from __future__ import annotations

from repro.tcp.base import TcpSender

__all__ = ["DctcpSender", "DCTCP_GAIN"]

#: EWMA gain g for the marked-fraction estimate (DCTCP paper default).
DCTCP_GAIN = 1.0 / 16.0


class DctcpSender(TcpSender):
    """DCTCP sender with accurate ECN feedback and ECT(1) marking."""

    loss_beta = 0.5

    def __init__(self, *args, gain: float = DCTCP_GAIN, alpha0: float = 1.0, **kwargs):
        kwargs.setdefault("ecn_mode", "scalable")
        if kwargs["ecn_mode"] != "scalable":
            raise ValueError("DctcpSender requires ecn_mode='scalable'")
        super().__init__(*args, **kwargs)
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0,1] (got {gain})")
        #: EWMA of the fraction of marked segments; starts conservative at 1
        #: so a fresh flow reacts strongly to its first marks (Linux default).
        self.alpha = alpha0
        self.gain = gain
        self.marked_segments = 0
        self.acked_segments = 0

    def on_round_end(self, acked: int, marked: int) -> None:
        """Per-window α update and (at most one) window reduction."""
        if acked <= 0:
            return
        self.acked_segments += acked
        self.marked_segments += marked
        fraction = marked / acked
        self.alpha = (1.0 - self.gain) * self.alpha + self.gain * fraction
        if marked > 0 and not self.in_recovery:
            self.ecn_reductions += 1
            self.cwnd = max(self.min_cwnd, self.cwnd * (1.0 - self.alpha / 2.0))
            # Like any congestion response, the reduction ends slow start
            # (Linux DCTCP sets ssthresh via the CWR state machine).
            self.ssthresh = self.cwnd

    @property
    def observed_mark_probability(self) -> float:
        """Lifetime fraction of segments that carried a CE mark."""
        if self.acked_segments == 0:
            return 0.0
        return self.marked_segments / self.acked_segments
