"""ACK-clocked TCP sender base class.

This is the transport substrate standing in for the Linux kernel senders of
the paper's testbed.  It implements the mechanisms every congestion control
variant shares — slow start, congestion avoidance, NewReno-style fast
retransmit/recovery, retransmission timeout with exponential backoff, ECN
negotiation and the RFC 3168 ECE/CWR handshake — and delegates the three
things that differ between variants to overridable hooks:

* :meth:`TcpSender.ca_increase` — the additive-increase rule in congestion
  avoidance (Reno's ``+1/W`` per segment; Cubic's cubic/TCP-friendly
  target; DCTCP reuses Reno's).
* :meth:`TcpSender.reduction_factor` — the multiplicative-decrease factor
  for a congestion event (0.5 for Reno, 0.7 for Cubic/CReno, DCTCP's
  ``1 - α/2``).
* :meth:`TcpSender.on_round_end` — a once-per-window callback at the
  window boundary, used by DCTCP's marked-fraction EWMA.

The window laws these hooks produce are exactly the ones the paper's
Appendix A analyses: ``W = 1.22/√p`` (Reno), ``W = 1.68/√p`` (CReno),
``W = 1.17 R^¾ / p^¾`` (Cubic), ``W = 2/p`` (DCTCP under probabilistic
marking).  Sequence numbers are in segments (see :mod:`repro.net.packet`).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.net.packet import DEFAULT_MSS, ECN, HEADER_BYTES, Packet
from repro.sim.engine import Event, Simulator

__all__ = ["TcpSender", "ECNMode", "MIN_RTO", "INITIAL_RTO"]

#: Linux's minimum retransmission timeout (RTO) in seconds.
MIN_RTO = 0.2

#: RFC 6298 initial RTO before any RTT sample exists.
INITIAL_RTO = 1.0

#: How a sender negotiates and reacts to ECN.
ECNMode = str  # one of "off", "classic", "scalable"
_ECN_MODES = ("off", "classic", "scalable")


class TcpSender:
    """Window-based TCP sender with pluggable congestion control.

    Parameters
    ----------
    sim:
        The driving simulator.
    flow_id:
        Unique flow identifier stamped on every packet.
    transmit:
        Callback injecting a packet into the network (the dumbbell
        topology points this at the bottleneck queue).
    mss:
        Payload bytes per segment.
    ecn_mode:
        ``"off"`` — Not-ECT packets, congestion signalled by loss only;
        ``"classic"`` — ECT(0) packets, RFC 3168 ECE/CWR, one window
        reduction per RTT (what the paper's "ECN-Cubic" uses);
        ``"scalable"`` — ECT(1) packets, accurate per-packet echo (the
        paper's modified DCTCP, Section 5).
    flow_size:
        Number of segments to transfer, or ``None`` for a long-running
        (bulk) flow as in the paper's steady-state experiments.
    initial_window:
        Initial congestion window in segments (Linux IW10 default).
    sack:
        Use selective acknowledgements (the receiver must enable them
        too): the sender keeps a scoreboard of SACKed segments, fills
        holes directly during recovery, and accounts SACKed segments out
        of the flight size.  Off by default — the paper-facing benchmarks
        use NewReno, and the SACK ablation quantifies the difference.
    """

    #: Multiplicative-decrease factor applied on packet loss.
    loss_beta = 0.5
    #: Multiplicative-decrease factor applied on a classic ECN signal.
    ecn_beta = 0.5
    #: Congestion windows never shrink below this many segments.
    min_cwnd = 2.0

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        transmit: Callable[[Packet], None],
        mss: int = DEFAULT_MSS,
        ecn_mode: ECNMode = "off",
        flow_size: Optional[int] = None,
        initial_window: float = 10.0,
        on_complete: Optional[Callable[[float], None]] = None,
        sack: bool = False,
    ):
        if ecn_mode not in _ECN_MODES:
            raise ValueError(f"ecn_mode must be one of {_ECN_MODES} (got {ecn_mode!r})")
        if flow_size is not None and flow_size <= 0:
            raise ValueError(f"flow_size must be positive (got {flow_size})")
        self.sim = sim
        self.flow_id = flow_id
        self.transmit = transmit
        self.mss = mss
        self.ecn_mode = ecn_mode
        self.flow_size = flow_size
        self.on_complete = on_complete

        # --- window state ------------------------------------------------
        self.cwnd = float(initial_window)
        self.ssthresh = math.inf
        self.una = 0            # oldest unacknowledged segment
        self.next_seq = 0       # next segment to send

        # --- loss recovery ------------------------------------------------
        self.dupacks = 0
        self.in_recovery = False
        self.recover_point = 0
        # NewReno window inflation: each duplicate ACK during recovery
        # signals a packet has left the network, permitting one new send.
        self._inflation = 0
        # SACK scoreboard: segments ≥ una known to have been received.
        self.sack = sack
        self._sacked: set[int] = set()
        self._rtx_episode: set[int] = set()

        # --- ECN state -----------------------------------------------------
        self._cwr_pending = False       # set CWR on next data packet
        self._ecn_reaction_point = -1   # suppress ECE reactions until una passes

        # --- round (window) tracking for per-RTT hooks ----------------------
        self._round_end = 0
        self._round_acked = 0
        self._round_marked = 0

        # --- RTT estimation / RTO -------------------------------------------
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._rto_event: Optional[Event] = None
        self._rto_deadline: Optional[float] = None
        self._backoff = 1

        # --- accounting -------------------------------------------------------
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.ecn_reductions = 0
        self.loss_reductions = 0
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.started = False

    # ------------------------------------------------------------------
    # Congestion-control hooks (overridden by Reno/Cubic/DCTCP)
    # ------------------------------------------------------------------
    def ca_increase(self, acked: int) -> None:
        """Congestion-avoidance additive increase (default: Reno AIMD)."""
        self.cwnd += acked / self.cwnd

    def reduction_factor(self, kind: str) -> float:
        """Multiplicative-decrease factor for a congestion event.

        ``kind`` is ``"loss"``, ``"ecn"`` or ``"timeout"``.
        """
        return self.ecn_beta if kind == "ecn" else self.loss_beta

    def on_congestion_event(self, kind: str) -> None:
        """Extra bookkeeping on a congestion event (Cubic's epoch reset)."""

    def on_round_end(self, acked: int, marked: int) -> None:
        """Called once per window with that window's ACK/mark counts."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        """Begin transmitting at absolute time ``at``."""
        self.sim.at(at, self._start_now)

    def _start_now(self) -> None:
        self.started = True
        self.start_time = self.sim.now
        self._round_end = int(self.cwnd)
        self._maybe_send()

    def stop(self) -> None:
        """Cease transmitting (used by varying-traffic-intensity scenarios).

        In-flight data is abandoned; the retransmission timer is cancelled
        and the sender ignores further ACKs.
        """
        if not self.completed:
            self.completion_time = self.sim.now
        self._cancel_rto()

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def flight_size(self) -> int:
        return self.next_seq - self.una

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _data_ecn(self) -> ECN:
        if self.ecn_mode == "classic":
            return ECN.ECT0
        if self.ecn_mode == "scalable":
            return ECN.ECT1
        return ECN.NOT_ECT

    def _maybe_send(self) -> None:
        if self.sack:
            # SACKed segments have left the network; the scoreboard gives
            # exact pipe accounting, so no inflation heuristics are needed.
            budget = max(1, int(self.cwnd)) - (self.flight_size - len(self._sacked))
        else:
            # RFC 3042 limited transmit before recovery; NewReno inflation
            # during it.
            extra = self._inflation if self.in_recovery else min(self.dupacks, 2)
            budget = self.una + max(1, int(self.cwnd + extra)) - self.next_seq
        while budget > 0:
            if self.flow_size is not None and self.next_seq >= self.flow_size:
                break
            self._send_segment(self.next_seq)
            self.next_seq += 1
            budget -= 1

    def _send_segment(self, seq: int, retransmit: bool = False) -> None:
        pkt = Packet(
            flow_id=self.flow_id,
            size=self.mss + HEADER_BYTES,
            seq=seq,
            ecn=self._data_ecn(),
            cwr=self._cwr_pending,
            send_time=self.sim.now,
            is_retransmit=retransmit,
        )
        self._cwr_pending = False
        self.segments_sent += 1
        if retransmit:
            self.retransmits += 1
        # RFC 6298: start the timer only when it is not already running —
        # re-arming per transmission would let a steady trickle of sends
        # postpone the timeout of a lost retransmission indefinitely.
        if self._rto_deadline is None:
            self._arm_rto()
        self.transmit(pkt)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Sink interface: the reverse path delivers ACKs here."""
        if packet.is_ack:
            self._on_ack(packet)

    def _on_ack(self, ack: Packet) -> None:
        if self.completed:
            return
        self._rtt_sample(self.sim.now - ack.send_time)
        if self.sack:
            # Rebuild the scoreboard from the ACK's (start, end) blocks.
            sacked = set()
            for start, end in ack.sack:
                if end >= ack.ack:
                    sacked.update(range(max(start, ack.ack), end + 1))
            self._sacked = sacked

        if ack.ack > self.una:
            acked = ack.ack - self.una
            self.una = ack.ack
            # After an RTO rewound next_seq, a late ACK for the original
            # transmissions can overtake it; never send below una.
            if self.next_seq < self.una:
                self.next_seq = self.una
            self.dupacks = 0
            self._backoff = 1

            self._round_acked += acked
            if ack.ece:
                self._round_marked += acked

            if self.in_recovery:
                if self.una >= self.recover_point:
                    self.in_recovery = False
                    self._inflation = 0
                    self._rtx_episode.clear()
                    self.cwnd = max(self.min_cwnd, self.ssthresh)
                elif self.sack:
                    self._sack_retransmit()
                else:
                    # NewReno partial ACK: the next hole was also lost.
                    # Deflate by what the partial ACK removed from flight.
                    self._inflation = max(0, self._inflation - acked)
                    self._send_segment(self.una, retransmit=True)
            else:
                self._grow_window(acked)

            if self.ecn_mode == "classic" and ack.ece:
                self._ecn_reaction()
            if self.una >= self._round_end:
                self.on_round_end(self._round_acked, self._round_marked)
                self._round_acked = 0
                self._round_marked = 0
                self._round_end = self.next_seq

            if self.flow_size is not None and self.una >= self.flow_size:
                self._complete()
                return
            self._arm_rto() if self.flight_size > 0 else self._cancel_rto()
        else:
            self.dupacks += 1
            if self.in_recovery:
                self._inflation += 1
                if self.sack:
                    self._sack_retransmit()
            if self.ecn_mode == "classic" and ack.ece:
                self._ecn_reaction()
            if self.dupacks == 3 and not self.in_recovery:
                self._fast_retransmit()
        self._maybe_send()

    def _grow_window(self, acked: int) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start, switching to CA at ssthresh.
            grow = min(acked, max(0.0, self.ssthresh - self.cwnd))
            self.cwnd += grow
            rest = acked - grow
            if rest > 0:
                self.ca_increase(int(rest))
        else:
            self.ca_increase(acked)

    # ------------------------------------------------------------------
    # Congestion events
    # ------------------------------------------------------------------
    def _ecn_reaction(self) -> None:
        """Classic ECE: at most one window reduction per RTT (RFC 3168)."""
        if self.una <= self._ecn_reaction_point:
            return
        self._ecn_reaction_point = self.next_seq
        self.ecn_reductions += 1
        self._reduce("ecn")
        self._cwr_pending = True

    def _fast_retransmit(self) -> None:
        self.in_recovery = True
        self.recover_point = self.next_seq
        self.loss_reductions += 1
        self._inflation = 0
        self._rtx_episode.clear()
        self._reduce("loss")
        if self.sack:
            self._rtx_episode.add(self.una)
        self._send_segment(self.una, retransmit=True)

    def _sack_retransmit(self) -> None:
        """Fill the lowest un-SACKed, not-yet-retransmitted hole (one per
        ACK — packet-conservation pacing of the repair).

        Standard SACK loss inference: only segments *below* the highest
        SACKed segment are considered lost; anything above it may simply
        still be in flight and must not be retransmitted speculatively.
        """
        if not self._sacked:
            return
        ceiling = min(self.recover_point, max(self._sacked))
        seq = self.una
        while seq < ceiling:
            if seq not in self._sacked and seq not in self._rtx_episode:
                self._rtx_episode.add(seq)
                self._send_segment(seq, retransmit=True)
                return
            seq += 1

    def _reduce(self, kind: str) -> None:
        factor = self.reduction_factor(kind)
        self.on_congestion_event(kind)
        self.ssthresh = max(self.min_cwnd, self.cwnd * factor)
        self.cwnd = self.ssthresh

    # ------------------------------------------------------------------
    # RTT / RTO machinery (RFC 6298)
    # ------------------------------------------------------------------
    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = max(MIN_RTO, self.srtt + 4 * self.rttvar)

    def _arm_rto(self) -> None:
        """(Re)start the retransmission timer at ``now + rto * backoff``.

        The timer is *lazy*: re-arming only moves the deadline field, and
        the already-scheduled heap event re-checks it when it fires —
        rescheduling itself if the deadline moved out, doing nothing if
        the timer was disarmed.  This turns the per-ACK cancel + push
        churn (the single largest source of heap traffic in a steady
        transfer) into a plain attribute write; a real heap event is only
        created when none is pending, or in the rare case the new
        deadline is *earlier* than the pending event.
        """
        deadline = self.sim.now + self.rto * self._backoff
        self._rto_deadline = deadline
        ev = self._rto_event
        if ev is None:
            self._rto_event = self.sim.at(deadline, self._on_rto)
        elif ev.time > deadline:
            ev.cancel()
            self._rto_event = self.sim.at(deadline, self._on_rto)

    def _cancel_rto(self) -> None:
        # Lazy disarm: the pending event (if any) sees the cleared
        # deadline when it fires and drops itself.
        self._rto_deadline = None

    def _on_rto(self) -> None:
        self._rto_event = None
        deadline = self._rto_deadline
        if deadline is None:
            return  # disarmed since this wakeup was scheduled
        if self.sim.now < deadline:
            # Stale wakeup: ACKs pushed the deadline out; sleep again.
            self._rto_event = self.sim.at(deadline, self._on_rto)
            return
        self._rto_deadline = None
        if self.completed or self.flight_size == 0:
            return
        self.timeouts += 1
        self.on_congestion_event("timeout")
        self.ssthresh = max(self.min_cwnd, self.cwnd * self.reduction_factor("timeout"))
        self.cwnd = 1.0
        self.in_recovery = False
        self.dupacks = 0
        self._inflation = 0
        # Discard SACK state on timeout (a renege-safe restart, RFC 2018).
        self._sacked.clear()
        self._rtx_episode.clear()
        self._backoff = min(self._backoff * 2, 64)
        # Go back to the oldest hole; ACK clocking restarts from there.
        self.next_seq = self.una
        self._send_segment(self.una, retransmit=True)
        self.next_seq = self.una + 1

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete(self) -> None:
        self.completion_time = self.sim.now
        self._cancel_rto()
        if self.on_complete is not None:
            self.on_complete(self.sim.now - (self.start_time or 0.0))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} flow={self.flow_id} cwnd={self.cwnd:.1f} "
            f"una={self.una} next={self.next_seq}>"
        )
