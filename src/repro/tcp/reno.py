"""TCP Reno (NewReno loss recovery, AIMD 1/0.5).

The canonical 'Classic' congestion control of the paper: additive increase
of one segment per RTT, multiplicative decrease of one half.  Its
steady-state window follows equation (5), ``W = 1.22/√p`` — the square-root
law whose non-linearity PI2's output squaring counterbalances.
"""

from __future__ import annotations

from repro.tcp.base import TcpSender

__all__ = ["RenoSender"]


class RenoSender(TcpSender):
    """Plain TCP Reno.  All behaviour comes from :class:`TcpSender`."""

    loss_beta = 0.5
    ecn_beta = 0.5
