"""TCP Cubic with the Linux CReno (TCP-friendly) fallback.

Implements the congestion-avoidance window of Ha, Rhee & Xu [16]:

    W_cubic(t) = C·(t − K)³ + W_max,      K = ((W_max·(1−β))/C)^⅓

with the Linux constants C = 0.4 and β = 0.7, plus the *TCP-friendly
region*: per RTT the window also tracks the rate an AIMD(1, β) flow
would achieve,

    W_est(t) = W_max·β + t/RTT,

and uses whichever is larger.  At small rate·RTT products the estimate
always wins, so the flow behaves as "CReno" — Reno with β = 0.7, the mode
the paper's Appendix A gives equation (7) for (``W = 1.68/√p``) and whose
switch-over condition is equation (8), ``W·R^{3/2} < 3.5``.

``EcnCubicSender`` is the paper's "ECN-Cubic": identical except that ECN is
negotiated (ECT(0)) and an ECE echo triggers the same β = 0.7 reduction as
a loss.
"""

from __future__ import annotations

import math

from repro.tcp.base import TcpSender

__all__ = ["CubicSender", "EcnCubicSender", "CUBIC_C", "CUBIC_BETA"]

#: Cubic's scaling constant (Linux default, units: segments/s³).
CUBIC_C = 0.4

#: Cubic's multiplicative-decrease factor (Linux default).
CUBIC_BETA = 0.7


#: Additive increase per RTT in the TCP-friendly (CReno) region.  The paper
#: models Linux CReno as AIMD(1, 0.7) — one segment per RTT with decrease
#: factor 0.7 — which yields equation (7)'s W = 1.68/√p.  (RFC 8312's
#: 3(1−β)/(1+β) ≈ 0.53 would instead equalize to plain Reno's rate; Linux
#: counts ACKed segments and behaves like the paper's model.)
CRENO_AI = 1.0


class CubicSender(TcpSender):
    """TCP Cubic (loss-based unless subclassed for ECN)."""

    loss_beta = CUBIC_BETA
    ecn_beta = CUBIC_BETA

    def __init__(
        self,
        *args,
        fast_convergence: bool = True,
        friendly_ai: float = CRENO_AI,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if friendly_ai <= 0:
            raise ValueError(f"friendly_ai must be positive (got {friendly_ai})")
        self.friendly_ai = friendly_ai
        self.fast_convergence = fast_convergence
        self._w_max = 0.0
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._origin = 0.0
        #: True while the TCP-friendly estimate governs the window (CReno).
        self.in_creno_mode = False

    # ------------------------------------------------------------------
    # Congestion-control hooks
    # ------------------------------------------------------------------
    def on_congestion_event(self, kind: str) -> None:
        w = self.cwnd
        if self.fast_convergence and w < self._w_max:
            # Release bandwidth faster when a new flow is ramping up.
            self._w_max = w * (2.0 - CUBIC_BETA) / 2.0
        else:
            self._w_max = w
        self._epoch_start = -1.0

    def ca_increase(self, acked: int) -> None:
        now = self.sim.now
        rtt = self.srtt if self.srtt is not None else 0.1
        if self._epoch_start < 0:
            self._epoch_start = now
            if self.cwnd < self._w_max:
                self._origin = self._w_max
                self._k = ((self._w_max - self.cwnd) / CUBIC_C) ** (1.0 / 3.0)
            else:
                self._origin = self.cwnd
                self._k = 0.0
            self._creno_start_cwnd = self.cwnd
        # Aim one RTT ahead, as the Linux implementation does.
        t = now - self._epoch_start + rtt
        target = self._origin + CUBIC_C * (t - self._k) ** 3
        # TCP-friendly region: equation (7)'s CReno behaviour, AIMD(1, 0.7).
        w_est = self._w_max * CUBIC_BETA + self.friendly_ai * (t / rtt)
        self.in_creno_mode = w_est > target
        if self.in_creno_mode:
            target = w_est
        if target > self.cwnd:
            # Growth capped at 1.5 segments per ACKed segment (Linux's
            # delayed-ACK compensation bound).
            self.cwnd += min(acked * (target - self.cwnd) / self.cwnd, 1.5 * acked)
        else:
            # Minimal probing growth in the concave plateau.
            self.cwnd += acked * 0.01 / self.cwnd

    @staticmethod
    def switchover_is_creno(window: float, rtt: float) -> bool:
        """Equation (8): True when Cubic operates in its Reno (CReno) mode.

        ``window`` in segments, ``rtt`` in seconds.
        """
        return window * rtt ** 1.5 < 3.5


class EcnCubicSender(CubicSender):
    """Cubic with classic ECN enabled — the paper's 'ECN-Cubic' control."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("ecn_mode", "classic")
        if kwargs["ecn_mode"] != "classic":
            raise ValueError("EcnCubicSender requires ecn_mode='classic'")
        super().__init__(*args, **kwargs)


# Re-exported convenience: equation (8)'s threshold constant.
CRENO_SWITCHOVER = 3.5
assert math.isclose(CRENO_SWITCHOVER, 3.5)
