"""Transport substrate: window-based TCP models (Reno, Cubic, DCTCP)."""

from repro.tcp.base import INITIAL_RTO, MIN_RTO, TcpSender
from repro.tcp.cubic import CUBIC_BETA, CUBIC_C, CubicSender, EcnCubicSender
from repro.tcp.dctcp import DCTCP_GAIN, DctcpSender
from repro.tcp.receiver import DELACK_TIMEOUT, TcpReceiver
from repro.tcp.reno import RenoSender
from repro.tcp.scalable import STCP_A, STCP_B, RelentlessSender, ScalableTcpSender

__all__ = [
    "TcpSender",
    "RenoSender",
    "CubicSender",
    "EcnCubicSender",
    "DctcpSender",
    "RelentlessSender",
    "ScalableTcpSender",
    "STCP_A",
    "STCP_B",
    "TcpReceiver",
    "CUBIC_C",
    "CUBIC_BETA",
    "DCTCP_GAIN",
    "MIN_RTO",
    "INITIAL_RTO",
    "DELACK_TIMEOUT",
]

#: Registry mapping the names used in experiment configs to sender classes.
SENDERS = {
    "reno": RenoSender,
    "cubic": CubicSender,
    "ecn-cubic": EcnCubicSender,
    "dctcp": DctcpSender,
    "relentless": RelentlessSender,
    "scalable-tcp": ScalableTcpSender,
}
