"""TCP receiver: cumulative ACKs, delayed ACKing, ECN echo.

Two echo disciplines are implemented, selected by the sender's ECN mode:

* **Classic (RFC 3168)** — receiving a CE mark latches the ECE flag on
  every subsequent ACK until a data packet with CWR arrives.  This is the
  coarse one-signal-per-RTT feedback that Classic controls (Reno, Cubic,
  ECN-Cubic) respond to.
* **Accurate / DCTCP** — the ECE flag on each ACK reflects whether the
  segments it covers were CE-marked.  With delayed ACKs the DCTCP state
  machine is used: a change in CE state forces out an immediate ACK for
  the previous run, so every ACK covers a run of uniformly-(un)marked
  segments and the sender can reconstruct the exact marked fraction its
  ``α`` EWMA needs.

Out-of-order segments are buffered and trigger immediate duplicate ACKs so
the sender's fast-retransmit machinery works; this mirrors the mandatory
quickack-on-reordering behaviour of real stacks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import ACK_SIZE, Packet
from repro.sim.engine import Event, Simulator

__all__ = ["TcpReceiver", "DELACK_TIMEOUT"]

#: Delayed-ACK timer (Linux uses 40 ms by default).
DELACK_TIMEOUT = 0.040


class TcpReceiver:
    """Receives data segments and generates ACKs on the reverse path.

    Parameters
    ----------
    sim:
        The driving simulator.
    flow_id:
        Flow this receiver terminates.
    ack_out:
        Callback carrying ACK packets back towards the sender.
    ecn_mode:
        Must match the sender's: "off", "classic" or "scalable".
    delayed_acks:
        ACK every second in-order segment (with a 40 ms cap) instead of
        every segment.  Defaults on, as in Linux.
    on_data:
        Optional callback ``(now, packet)`` for goodput accounting — fired
        only for in-order (new) segments.
    sack:
        Advertise selective acknowledgements: each ACK carries the
        out-of-order data above the cumulative ACK as ``(start, end)``
        blocks (inclusive), which a SACK-enabled sender uses as its
        scoreboard.
    """

    #: Maximum SACK blocks advertised per ACK.  Real stacks fit ~3 in the
    #: TCP options; we allow more since each hole costs one block and the
    #: simulator has no option-space constraint, but still bound it.
    SACK_LIMIT = 16

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        ack_out: Callable[[Packet], None],
        ecn_mode: str = "off",
        delayed_acks: bool = True,
        on_data: Optional[Callable[[float, Packet], None]] = None,
        sack: bool = False,
    ):
        self.sack = sack
        self.sim = sim
        self.flow_id = flow_id
        self.ack_out = ack_out
        self.ecn_mode = ecn_mode
        self.delayed_acks = delayed_acks
        self.on_data = on_data

        self.rcv_next = 0
        self._ooo: set[int] = set()

        # Classic RFC 3168 echo state.
        self._ece_latched = False
        # DCTCP accurate-echo state.
        self._ce_state = False

        self._pending = 0               # in-order segments not yet ACKed
        self._pending_ts = 0.0          # timestamp to echo on the next ACK
        self._delack_event: Optional[Event] = None
        self._delack_deadline: Optional[float] = None

        self.segments_received = 0
        self.duplicates = 0
        self.ce_received = 0
        self.acks_sent = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        """Sink interface for the forward path."""
        if packet.is_ack:
            return
        self._on_data(packet)

    def _on_data(self, pkt: Packet) -> None:
        ce = pkt.ce_marked
        if ce:
            self.ce_received += 1
        if self.ecn_mode == "classic":
            if ce:
                self._ece_latched = True
            if pkt.cwr:
                self._ece_latched = False
        elif self.ecn_mode == "scalable" and ce != self._ce_state:
            # DCTCP state machine: flush the previous run immediately so
            # each ACK covers segments with uniform CE-ness.
            if self._pending > 0:
                self._send_ack()
            self._ce_state = ce

        if pkt.seq == self.rcv_next:
            # The arriving segment plus any buffered segments it releases
            # are all delivered to the application now.
            delivered = 1
            self.rcv_next += 1
            while self.rcv_next in self._ooo:
                self._ooo.remove(self.rcv_next)
                self.rcv_next += 1
                delivered += 1
            self.segments_received += delivered
            if self.on_data is not None:
                for _ in range(delivered):
                    self.on_data(self.sim.now, pkt)
            self._pending += 1
            self._pending_ts = pkt.send_time
            if self._ooo:
                # Filling a hole while more holes remain: ACK immediately.
                self._send_ack()
            elif not self.delayed_acks or self._pending >= 2:
                self._send_ack()
            else:
                self._arm_delack()
        elif pkt.seq > self.rcv_next:
            self._ooo.add(pkt.seq)
            self._pending_ts = pkt.send_time
            self._send_ack()  # immediate duplicate ACK
        else:
            self.duplicates += 1
            self._pending_ts = pkt.send_time
            self._send_ack()  # already have it; re-ACK

    # ------------------------------------------------------------------
    # ACK generation
    # ------------------------------------------------------------------
    def _ece_flag(self) -> bool:
        if self.ecn_mode == "classic":
            return self._ece_latched
        if self.ecn_mode == "scalable":
            return self._ce_state
        return False

    def _sack_blocks(self) -> tuple:
        """Contiguous runs of the out-of-order set as (start, end) blocks."""
        seqs = sorted(self._ooo)
        blocks = []
        start = prev = seqs[0]
        for s in seqs[1:]:
            if s == prev + 1:
                prev = s
                continue
            blocks.append((start, prev))
            if len(blocks) >= self.SACK_LIMIT:
                return tuple(blocks)
            start = prev = s
        blocks.append((start, prev))
        return tuple(blocks[: self.SACK_LIMIT])

    def _send_ack(self) -> None:
        self._cancel_delack()
        sack_info: tuple = ()
        if self.sack and self._ooo:
            sack_info = self._sack_blocks()
        ack = Packet(
            flow_id=self.flow_id,
            size=ACK_SIZE,
            ack=self.rcv_next,
            is_ack=True,
            ece=self._ece_flag(),
            sack=sack_info,
            send_time=self._pending_ts,
        )
        self._pending = 0
        self.acks_sent += 1
        self.ack_out(ack)

    def _arm_delack(self) -> None:
        """Start the delayed-ACK timer (lazy, like the sender's RTO).

        Arming writes a deadline; the heap event — one per receiver,
        created only when none is pending — re-checks that deadline when
        it fires, so the every-other-ACK cancel + reschedule cycle never
        touches the heap.
        """
        if self._delack_deadline is None:
            deadline = self.sim.now + DELACK_TIMEOUT
            self._delack_deadline = deadline
            if self._delack_event is None:
                self._delack_event = self.sim.at(deadline, self._on_delack)

    def _cancel_delack(self) -> None:
        # Lazy disarm: a pending event sees the cleared deadline and
        # drops itself (or re-sleeps if the timer was re-armed later).
        self._delack_deadline = None

    def _on_delack(self) -> None:
        self._delack_event = None
        deadline = self._delack_deadline
        if deadline is None:
            return  # disarmed since this wakeup was scheduled
        if self.sim.now < deadline:
            # Stale wakeup for an earlier arming; sleep until the live one.
            self._delack_event = self.sim.at(deadline, self._on_delack)
            return
        self._delack_deadline = None
        if self._pending > 0:
            self._send_ack()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TcpReceiver flow={self.flow_id} rcv_next={self.rcv_next}>"
