"""Other Scalable congestion controls — Relentless and Scalable TCP.

Section 5 lists the family the coupled AQM's Scalable branch supports:
"(DCTCP, Relentless, Scalable, ...)".  Both are implemented here so the
coexistence machinery can be exercised with more than one member:

* **Relentless TCP** (Mathis): congestion avoidance adds one segment per
  RTT; each congestion mark subtracts exactly one segment from the
  window (instead of a multiplicative cut).  Steady state balances
  1 = p·W per RTT, so ``W = 1/p`` — Scalable with B = 1 and signal rate
  c = p·W = 1 mark per RTT.
* **Scalable TCP** (Kelly): MIMD — each ACK adds ``a`` segments (0.01),
  each marked round cuts the window by factor ``b`` (0.125).  Steady
  state: a·W per RTT of growth vs p·W marks each costing ≈ b·W/(p·W)…
  integrated per RTT this balances at ``W = a/(b·p)`` = 0.08/p —
  Scalable with B = 1.

Both use the accurate (DCTCP-style) per-packet ECN echo and set ECT(1),
so the coupled AQM classifies them as Scalable.  Under drop (loss) they
fall back to a Reno-style halving for safety, like DCTCP.
"""

from __future__ import annotations

from repro.tcp.base import TcpSender

__all__ = ["RelentlessSender", "ScalableTcpSender", "STCP_A", "STCP_B"]

#: Scalable TCP's per-ACK additive gain and per-round decrease factor.
STCP_A = 0.01
STCP_B = 0.125


class RelentlessSender(TcpSender):
    """Relentless TCP: subtract one segment per CE mark."""

    loss_beta = 0.5

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("ecn_mode", "scalable")
        if kwargs["ecn_mode"] != "scalable":
            raise ValueError("RelentlessSender requires ecn_mode='scalable'")
        super().__init__(*args, **kwargs)

    def on_round_end(self, acked: int, marked: int) -> None:
        if marked > 0 and not self.in_recovery:
            self.ecn_reductions += 1
            self.cwnd = max(self.min_cwnd, self.cwnd - marked)
            self.ssthresh = self.cwnd


class ScalableTcpSender(TcpSender):
    """Scalable TCP (MIMD a = 0.01, b = 0.125), mark-driven."""

    loss_beta = 1.0 - STCP_B

    def __init__(self, *args, a: float = STCP_A, b: float = STCP_B, **kwargs):
        kwargs.setdefault("ecn_mode", "scalable")
        if kwargs["ecn_mode"] != "scalable":
            raise ValueError("ScalableTcpSender requires ecn_mode='scalable'")
        super().__init__(*args, **kwargs)
        if not 0 < a < 1 or not 0 < b < 1:
            raise ValueError(f"need 0 < a, b < 1 (got a={a}, b={b})")
        self.a = a
        self.b = b

    def ca_increase(self, acked: int) -> None:
        # MIMD: +a per ACKed segment (≈ a·W per RTT).
        self.cwnd += self.a * acked

    def on_round_end(self, acked: int, marked: int) -> None:
        if acked <= 0:
            return
        if marked > 0 and not self.in_recovery:
            self.ecn_reductions += 1
            # A factor (1−b) per mark: per round the window loses
            # ≈ b·m·W against MIMD growth a·W, balancing at m = a/b marks
            # per RTT, i.e. W = (a/b)/p.
            self.cwnd = max(
                self.min_cwnd, self.cwnd * (1.0 - self.b) ** marked
            )
            self.ssthresh = self.cwnd
