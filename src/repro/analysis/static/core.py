"""Core of the domain static-analysis framework (``repro check``).

The repository's headline guarantee — bit-exact parity between serial,
parallel, cached and batched/unbatched runs — rests on a handful of
coding disciplines: all randomness flows through seeded
:mod:`repro.sim.random` streams, no wall-clock reads feed simulation
state, probabilities stay in [0, 1] at every write, scheduling uses
virtual time, and everything crossing the process-pool seam pickles.
Runtime digest gates catch violations *after* a simulation has run; the
rules in :mod:`repro.analysis.static.rules` catch them at the AST level
before any simulation runs.

This module provides the framework those rules plug into:

* :class:`Rule` — the visitor interface a rule implements, registered via
  :func:`register` into the global :data:`RULES` catalogue;
* :class:`SourceFile` — one parsed file plus its package scope (``aqm``,
  ``sim``, ...) so rules can limit themselves to the paths where their
  invariant matters;
* :class:`Finding` — one diagnostic, with a stable JSON rendering;
* suppression comments — ``# repro: allow[RULE] justification`` on the
  offending line (or on a standalone comment line directly above it)
  silences a finding; the justification text is required by convention
  and surfaced in ``--format json`` output for review.

The orchestration (file walking, output formatting, CLI/CI entry points)
lives in :mod:`repro.analysis.static.runner`.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Severity",
    "Finding",
    "SourceFile",
    "Rule",
    "ProjectRule",
    "RULES",
    "register",
    "check_source",
    "parse_allow_comments",
]


class Severity(enum.Enum):
    """How seriously a finding should be taken by gates."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule at a source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-able rendering (the ``--format json`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format_human(self) -> str:
        """``path:line:col: severity RULE: message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule}: {self.message}"
        )


#: ``# repro: allow[DET]`` / ``# repro: allow[DET, PROB] because ...``
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[\s*([A-Za-z0-9_\s,]+?)\s*\]\s*(?P<why>.*)$"
)


def parse_allow_comments(
    lines: Sequence[str],
) -> Dict[int, Tuple[frozenset, str]]:
    """Map 1-based line number -> (allowed rule names, justification).

    An allow comment covers its own line.  When it sits on a standalone
    comment line (nothing but the comment), it also covers the next
    non-blank, non-comment line, so violations can be annotated without
    pushing the offending statement past the line-length limit.
    """
    allowed: Dict[int, Tuple[frozenset, str]] = {}
    pending: Optional[Tuple[frozenset, str]] = None
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        match = _ALLOW_RE.search(raw)
        if match:
            names = frozenset(
                name.strip().upper()
                for name in match.group(1).split(",")
                if name.strip()
            )
            why = match.group("why").strip()
            entry = (names, why)
            allowed[number] = entry
            if stripped.startswith("#"):
                # Standalone comment: carry over to the next code line.
                pending = entry
            else:
                pending = None
            continue
        if not stripped or stripped.startswith("#"):
            continue  # blank/comment lines keep a pending allow alive
        if pending is not None:
            names, why = pending
            if number in allowed:
                prior_names, prior_why = allowed[number]
                allowed[number] = (prior_names | names, prior_why or why)
            else:
                allowed[number] = pending
            pending = None
    return allowed


class SourceFile:
    """One Python file under analysis: text, AST and package scope.

    Parameters
    ----------
    path:
        Filesystem location (used for display and package inference).
    text:
        Source text; read from ``path`` when omitted.
    package:
        Package scope override (``"aqm"``, ``"sim"``, ...).  When None it
        is inferred from the path: the directory immediately below the
        last ``repro`` component (files directly inside ``repro/`` get
        ``""``).  Tests use the override to point fixture files at a rule
        without recreating the tree layout.
    display_path:
        Path string used in findings; defaults to ``path`` relativised to
        the current directory when possible.
    """

    def __init__(
        self,
        path: Path,
        text: Optional[str] = None,
        package: Optional[str] = None,
        display_path: Optional[str] = None,
    ):
        self.path = Path(path)
        self.text = self.path.read_text() if text is None else text
        self.lines = self.text.splitlines()
        if display_path is None:
            try:
                display_path = str(self.path.relative_to(Path.cwd()))
            except ValueError:
                display_path = str(self.path)
        self.display_path = display_path
        self.package = self._infer_package() if package is None else package
        self.allowed = parse_allow_comments(self.lines)
        self._tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None

    def _infer_package(self) -> str:
        parts = self.path.parts
        for index in range(len(parts) - 2, -1, -1):
            if parts[index] == "repro":
                return parts[index + 1] if index + 2 < len(parts) else ""
        return ""

    @property
    def tree(self) -> Optional[ast.Module]:
        """Parsed module, or None when the file does not parse."""
        if self._tree is None and self.syntax_error is None:
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:
                self.syntax_error = exc
        return self._tree

    def is_suppressed(self, rule: str, line: int) -> Tuple[bool, str]:
        """Whether ``rule`` is allowed on ``line``; returns (flag, why)."""
        entry = self.allowed.get(line)
        if entry is None:
            return False, ""
        names, why = entry
        return rule.upper() in names, why

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SourceFile {self.display_path} package={self.package!r}>"


class Rule:
    """Base class every lint rule extends.

    Subclasses set :attr:`name` (the suppression token), :attr:`severity`,
    a one-line :attr:`description` for ``--list-rules``, and optionally
    :attr:`packages` to scope the rule to specific sub-packages of
    ``repro`` (None applies everywhere).  :meth:`check` yields findings
    for one file; suppression filtering happens in the framework, not in
    the rule.
    """

    name: str = "RULE"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Sub-packages of ``repro`` the rule applies to (None = all files).
    packages: Optional[Tuple[str, ...]] = None

    def applies_to(self, source: SourceFile) -> bool:
        """Package-scope filter; override for finer-grained targeting."""
        return self.packages is None or source.package in self.packages

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield every violation found in ``source``.  Override."""
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        return Finding(
            rule=self.name,
            severity=self.severity.value,
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the *whole project* — pass 2 of the analyzer.

    Per-file rules see one AST at a time; a :class:`ProjectRule` is handed
    a :class:`~repro.analysis.static.graph.ProjectIndex` (symbol table +
    call graph over every file, built once per run) and can follow values
    across function and module boundaries.  Subclasses implement
    :meth:`check_project`; ``files`` restricts which files findings may
    be *emitted* for (the incremental runner passes the dirty set —
    summaries/annotations from clean files are still consulted).

    :meth:`check` keeps the per-file contract working — a project rule
    run over a single :class:`SourceFile` (fixture tests,
    :func:`check_source`) builds a one-file index on the fly — so
    fixture-based testing needs no special casing.
    """

    def check_project(
        self,
        index: "object",
        files: Optional[frozenset] = None,
    ) -> Iterator[Finding]:
        """Yield findings over the whole indexed project.  Override."""
        raise NotImplementedError

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Single-file fallback: index just this file and delegate."""
        from repro.analysis.static.graph import ProjectIndex

        index = ProjectIndex.build([source])
        yield from self.check_project(
            index, files=frozenset({source.display_path})
        )


#: Global rule catalogue, name -> instance, populated by :func:`register`.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule instance to :data:`RULES`."""
    rule = rule_cls()
    if rule.name in RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULES[rule.name] = rule
    return rule_cls


def check_source(
    source: SourceFile,
    rules: Optional[Iterable[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Run rules over one file; returns (findings, suppressed findings).

    A file that fails to parse yields a single ``SYNTAX`` error finding
    (whatever the rule selection) — a syntactically broken file can hide
    any violation.
    """
    selected = list(RULES.values()) if rules is None else list(rules)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    if source.tree is None:
        error = source.syntax_error
        findings.append(
            Finding(
                rule="SYNTAX",
                severity=Severity.ERROR.value,
                path=source.display_path,
                line=error.lineno or 1 if error else 1,
                col=(error.offset or 1) if error else 1,
                message=f"file does not parse: {error and error.msg}",
            )
        )
        return findings, suppressed
    for rule in selected:
        if not rule.applies_to(source):
            continue
        for finding in rule.check(source):
            hit, _why = source.is_suppressed(finding.rule, finding.line)
            (suppressed if hit else findings).append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, suppressed
