"""Orchestration for ``repro check``: two-pass analysis, ratchet, output.

Entry points:

* :func:`analyze_paths` — the programmatic API (also used by the perf
  harness to record rule/finding counts in ``BENCH_<date>.json``);
* :func:`run_check` — the CLI body behind ``repro check`` and
  ``tools/run_static_analysis.py``; returns a process exit code
  (0 = clean, 1 = findings/baseline violation, 2 = usage error).

Analysis is two-pass: pass 1 parses every file and builds the
:class:`~repro.analysis.static.graph.ProjectIndex` (symbol table + call
graph); pass 2 runs per-file rules file by file and hands the whole
index to each :class:`~repro.analysis.static.core.ProjectRule`
(``TAINT``, ``UNIT``).

**Incremental mode** (``--incremental``) keys a state file on each
file's content hash.  Only changed files *plus their reverse
call-graph/import dependents* are re-analyzed; findings for clean files
replay from the state cache.  The index itself is always rebuilt over
the full file set (parsing is the cheap part), so dirty-file findings
are computed against fresh cross-module facts — which is what makes the
incremental run agree finding-for-finding with a full run.

**Findings baseline** (``tools/findings_baseline.json``) generalizes the
mypy ratchet to every rule: per-rule ceilings; counts above a ceiling
fail, counts below auto-lower the ceiling in place (the ratchet only
tightens).  Without a baseline file the gate is the legacy strict mode:
any finding fails.

The JSON output schema (``--format json``) is versioned and locked by
``tests/analysis/test_static_analysis.py``::

    {
      "schema": 2,
      "files_checked": 63,
      "files_analyzed": 63,
      "rules": {"DET": "...", "ORD": "...", ...},
      "counts": {"DET": 0, ...},
      "findings": [{"rule", "severity", "path", "line", "col", "message"}],
      "suppressed": [... same shape ...]
    }

``--format sarif`` emits SARIF 2.1.0 for CI code-scanning annotations.
"""

from __future__ import annotations

import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import repro
from repro.analysis.static import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.static.core import (
    RULES,
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    check_source,
)
from repro.analysis.static.graph import ProjectIndex

__all__ = [
    "Report",
    "default_target",
    "iter_python_files",
    "analyze_paths",
    "run_check",
    "load_baseline",
    "apply_baseline",
    "to_sarif",
    "JSON_SCHEMA_VERSION",
    "STATE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_STATE_PATH",
]

JSON_SCHEMA_VERSION = 2
STATE_SCHEMA_VERSION = 1

#: Default ratchet location (relative to the invocation directory).
DEFAULT_BASELINE_PATH = Path("tools") / "findings_baseline.json"
#: Default incremental-state location (gitignored working file).
DEFAULT_STATE_PATH = Path(".repro-check-state.json")


@dataclass
class Report:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files actually (re-)analyzed this run; equals ``files_checked``
    #: for a full run, the dirty-set size for an incremental one.
    files_analyzed: int = 0
    rules: Dict[str, str] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        """Findings per rule (zero-filled for every selected rule)."""
        counts = {name: 0 for name in self.rules}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """The versioned ``--format json`` payload."""
        return {
            "schema": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "files_analyzed": self.files_analyzed,
            "rules": dict(sorted(self.rules.items())),
            "counts": dict(sorted(self.counts.items())),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    def format_human(self) -> str:
        """Readable report: one line per finding plus a summary line."""
        lines = [finding.format_human() for finding in self.findings]
        total = len(self.findings)
        noun = "finding" if total == 1 else "findings"
        scope = (
            f"{self.files_checked} files"
            if self.files_analyzed == self.files_checked
            else f"{self.files_checked} files "
            f"({self.files_analyzed} re-analyzed)"
        )
        summary = (
            f"{total} {noun} in {scope} "
            f"({len(self.rules)} rules, {len(self.suppressed)} suppressed)"
        )
        lines.append(summary if total else f"OK: {summary}")
        return "\n".join(lines)


def default_target() -> Path:
    """The installed ``repro`` package directory (what CI checks)."""
    return Path(repro.__file__).parent


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps report order (and the JSON payload) identical
    across filesystems — the checker holds itself to its own ORD rule.
    """
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen[candidate.resolve()] = candidate
    return [seen[key] for key in sorted(seen)]


def select_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rules`` tokens against the registry (case-insensitive)."""
    if not names:
        return list(RULES.values())
    selected = []
    for name in names:
        token = name.strip().upper()
        if not token:
            continue
        if token not in RULES:
            raise KeyError(
                f"unknown rule {name!r} (known: {', '.join(sorted(RULES))})"
            )
        selected.append(RULES[token])
    return selected


def _content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _load_state(state_path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(state_path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != STATE_SCHEMA_VERSION:
        return None
    return payload


def _finding_from_dict(entry: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(entry["rule"]),
        severity=str(entry["severity"]),
        path=str(entry["path"]),
        line=int(entry["line"]),
        col=int(entry["col"]),
        message=str(entry["message"]),
    )


def _run_rules(
    sources: List[SourceFile],
    analyze: Set[str],
    rules: List[Rule],
    index: ProjectIndex,
) -> Tuple[Dict[str, List[Finding]], Dict[str, List[Finding]]]:
    """Pass 2 over the dirty set: findings/suppressed keyed by file."""
    per_file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    by_path = {source.display_path: source for source in sources}
    findings: Dict[str, List[Finding]] = {path: [] for path in analyze}
    suppressed: Dict[str, List[Finding]] = {path: [] for path in analyze}

    for path in analyze:
        file_findings, file_suppressed = check_source(
            by_path[path], per_file_rules
        )
        findings[path].extend(file_findings)
        suppressed[path].extend(file_suppressed)

    for rule in project_rules:
        emit_for = frozenset(
            path
            for path in analyze
            if rule.applies_to(by_path[path])
            and by_path[path].tree is not None
        )
        if not emit_for:
            continue
        for finding in rule.check_project(index, files=emit_for):
            source = by_path.get(finding.path)
            if source is None:
                continue
            hit, _why = source.is_suppressed(finding.rule, finding.line)
            (suppressed if hit else findings)[finding.path].append(finding)
    return findings, suppressed


def analyze_paths(
    paths: Optional[Sequence[Path]] = None,
    rule_names: Optional[Sequence[str]] = None,
    incremental: bool = False,
    state_path: Optional[Path] = None,
) -> Report:
    """Run the selected rules over every Python file under ``paths``.

    ``incremental=True`` consults/updates ``state_path`` (default
    :data:`DEFAULT_STATE_PATH`): files whose content hash is unchanged —
    and none of whose dependencies changed — replay cached findings.
    """
    targets = [Path(p) for p in paths] if paths else [default_target()]
    rules = select_rules(rule_names)
    rule_names_sorted = sorted(rule.name for rule in rules)
    report = Report(rules={rule.name: rule.description for rule in rules})

    sources = [SourceFile(p) for p in iter_python_files(targets)]
    report.files_checked = len(sources)
    # Pass 1: project-wide symbol table + call graph (always full — the
    # dirty files must be analyzed against fresh cross-module facts).
    index = ProjectIndex.build(sources)

    all_paths = {source.display_path for source in sources}
    hashes = {source.display_path: _content_hash(source.text) for source in sources}

    state: Optional[Dict[str, object]] = None
    state_file = Path(state_path) if state_path is not None else DEFAULT_STATE_PATH
    if incremental:
        state = _load_state(state_file)
        if state is not None and state.get("rules") != rule_names_sorted:
            state = None  # rule selection changed: full re-analysis

    cached_files: Dict[str, Dict[str, object]] = {}
    if state is not None:
        raw_files = state.get("files")
        if isinstance(raw_files, dict):
            cached_files = raw_files

    changed = {
        path
        for path in all_paths
        if cached_files.get(path, {}).get("hash") != hashes[path]
    }
    if state is None:
        analyze = set(all_paths)
    else:
        analyze = index.dependents_of(changed) & all_paths

    findings_by_path, suppressed_by_path = _run_rules(
        sources, analyze, rules, index
    )
    report.files_analyzed = len(analyze)

    for path in sorted(all_paths):
        if path in analyze:
            report.findings.extend(findings_by_path[path])
            report.suppressed.extend(suppressed_by_path[path])
        else:
            cached = cached_files.get(path, {})
            report.findings.extend(
                _finding_from_dict(e) for e in cached.get("findings", [])
            )
            report.suppressed.extend(
                _finding_from_dict(e) for e in cached.get("suppressed", [])
            )

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if incremental:
        new_state: Dict[str, object] = {
            "schema": STATE_SCHEMA_VERSION,
            "rules": rule_names_sorted,
            "files": {},
        }
        files_out = new_state["files"]
        for path in sorted(all_paths):
            if path in analyze:
                entry = {
                    "hash": hashes[path],
                    "findings": [
                        f.to_dict() for f in findings_by_path[path]
                    ],
                    "suppressed": [
                        f.to_dict() for f in suppressed_by_path[path]
                    ],
                }
            else:
                entry = dict(cached_files[path])
                entry["hash"] = hashes[path]
            files_out[path] = entry
        try:
            state_file.write_text(
                json.dumps(new_state, indent=2, sort_keys=True) + "\n"
            )
        except OSError:
            pass  # read-only checkout: incremental just degrades to full
    return report


# -- findings baseline (the generalized ratchet) ---------------------------
def load_baseline(path: Path) -> Optional[Dict[str, int]]:
    """Per-rule ceilings from a baseline file, or None when absent/bad."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    ceilings = payload.get("max_findings")
    if not isinstance(ceilings, dict):
        return None
    return {
        str(rule): int(count)
        for rule, count in ceilings.items()
        if isinstance(count, int) and not isinstance(count, bool)
    }


def _write_baseline(path: Path, counts: Dict[str, int]) -> None:
    payload = {
        "_comment": (
            "Findings ratchet for `repro check` (all rules). Counts above "
            "a ceiling fail CI; counts below auto-lower it. Regenerate "
            "with `repro check --update-baseline` only when a rule "
            "legitimately gains findings that cannot yet be fixed."
        ),
        "max_findings": dict(sorted(counts.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    report: Report,
    baseline_path: Path,
    update: bool = False,
    require: bool = False,
    out=None,
) -> int:
    """Ratchet the report against the baseline; returns an exit code.

    * ``update=True`` rewrites the baseline to the current counts.
    * count > ceiling → failure (exit 1), listing the offending rules.
    * count < ceiling → the ceiling is lowered in place (ratchet).
    * no baseline file: ``require=True`` fails, otherwise legacy strict
      mode (any finding → exit 1).
    """
    out = out or sys.stdout
    counts = report.counts
    if update:
        _write_baseline(baseline_path, counts)
        print(f"repro check: baseline updated at {baseline_path}", file=out)
        return 0
    ceilings = load_baseline(baseline_path)
    if ceilings is None:
        if require:
            print(
                f"repro check: baseline required but not found at "
                f"{baseline_path} (run --update-baseline to create it)",
                file=out,
            )
            return 1
        return 1 if report.findings else 0
    failures = []
    lowered = {}
    merged = dict(ceilings)
    for rule, count in sorted(counts.items()):
        ceiling = ceilings.get(rule, 0)
        if count > ceiling:
            failures.append((rule, count, ceiling))
        elif count < ceiling:
            lowered[rule] = count
            merged[rule] = count
    for rule, ceiling in ceilings.items():
        # A rule not selected this run keeps its ceiling untouched.
        merged.setdefault(rule, ceiling)
    if failures:
        for rule, count, ceiling in failures:
            print(
                f"repro check: {rule}: {count} findings exceed the "
                f"baseline ceiling of {ceiling}",
                file=out,
            )
        return 1
    if lowered:
        _write_baseline(baseline_path, merged)
        pairs = ", ".join(f"{r}->{c}" for r, c in sorted(lowered.items()))
        print(f"repro check: baseline ratcheted down ({pairs})", file=out)
    return 0


# -- SARIF -----------------------------------------------------------------
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(report: Report) -> Dict[str, object]:
    """SARIF 2.1.0 rendering of a report (``--format sarif``)."""

    def result(finding: Finding) -> Dict[str, object]:
        return {
            "ruleId": finding.rule,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": [
                            {
                                "id": name,
                                "shortDescription": {
                                    "text": report.rules[name]
                                },
                            }
                            for name in sorted(report.rules)
                        ],
                    }
                },
                "results": [result(f) for f in report.findings],
            }
        ],
    }


def run_check(
    paths: Optional[Sequence[str]] = None,
    rule_names: Optional[Sequence[str]] = None,
    output_format: str = "human",
    list_rules: bool = False,
    incremental: bool = False,
    state_path: Optional[str] = None,
    baseline: Optional[str] = None,
    update_baseline: bool = False,
    require_baseline: bool = False,
    out=None,
) -> int:
    """CLI body for ``repro check``; returns a process exit code."""
    out = out or sys.stdout
    if list_rules:
        for name in sorted(RULES):
            print(f"{name:7s} {RULES[name].description}", file=out)
        return 0
    try:
        report = analyze_paths(
            [Path(p) for p in paths] if paths else None,
            rule_names,
            incremental=incremental,
            state_path=Path(state_path) if state_path else None,
        )
    except KeyError as exc:
        print(f"repro check: {exc.args[0]}", file=out)
        return 2
    if output_format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True), file=out)
    elif output_format == "sarif":
        print(json.dumps(to_sarif(report), indent=2, sort_keys=True), file=out)
    else:
        print(report.format_human(), file=out)
    use_baseline = (
        baseline is not None or update_baseline or require_baseline
    )
    if use_baseline:
        baseline_file = Path(baseline) if baseline else DEFAULT_BASELINE_PATH
        return apply_baseline(
            report,
            baseline_file,
            update=update_baseline,
            require=require_baseline,
            out=out,
        )
    return 1 if report.findings else 0
