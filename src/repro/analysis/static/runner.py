"""Orchestration for ``repro check``: walk files, run rules, render output.

Entry points:

* :func:`analyze_paths` — the programmatic API (also used by the perf
  harness to record rule/finding counts in ``BENCH_<date>.json``);
* :func:`run_check` — the CLI body behind ``repro check`` and
  ``tools/run_static_analysis.py``; returns a process exit code
  (0 = clean, 1 = findings, 2 = usage error).

The JSON output schema (``--format json``) is versioned and locked by
``tests/analysis/test_static_analysis.py``::

    {
      "schema": 1,
      "files_checked": 63,
      "rules": {"DET": "...", "ORD": "...", ...},
      "counts": {"DET": 0, ...},
      "findings": [{"rule", "severity", "path", "line", "col", "message"}],
      "suppressed": [... same shape ...]
    }
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import repro
from repro.analysis.static import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.static.core import RULES, Finding, Rule, SourceFile, check_source

__all__ = [
    "Report",
    "default_target",
    "iter_python_files",
    "analyze_paths",
    "run_check",
    "JSON_SCHEMA_VERSION",
]

JSON_SCHEMA_VERSION = 1


@dataclass
class Report:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: Dict[str, str] = field(default_factory=dict)

    @property
    def counts(self) -> Dict[str, int]:
        """Findings per rule (zero-filled for every selected rule)."""
        counts = {name: 0 for name in self.rules}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """The versioned ``--format json`` payload."""
        return {
            "schema": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "rules": dict(sorted(self.rules.items())),
            "counts": dict(sorted(self.counts.items())),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    def format_human(self) -> str:
        """Readable report: one line per finding plus a summary line."""
        lines = [finding.format_human() for finding in self.findings]
        total = len(self.findings)
        noun = "finding" if total == 1 else "findings"
        summary = (
            f"{total} {noun} in {self.files_checked} files "
            f"({len(self.rules)} rules, {len(self.suppressed)} suppressed)"
        )
        lines.append(summary if total else f"OK: {summary}")
        return "\n".join(lines)


def default_target() -> Path:
    """The installed ``repro`` package directory (what CI checks)."""
    return Path(repro.__file__).parent


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps report order (and the JSON payload) identical
    across filesystems — the checker holds itself to its own ORD rule.
    """
    seen = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            seen[candidate.resolve()] = candidate
    return [seen[key] for key in sorted(seen)]


def select_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rules`` tokens against the registry (case-insensitive)."""
    if not names:
        return list(RULES.values())
    selected = []
    for name in names:
        token = name.strip().upper()
        if not token:
            continue
        if token not in RULES:
            raise KeyError(
                f"unknown rule {name!r} (known: {', '.join(sorted(RULES))})"
            )
        selected.append(RULES[token])
    return selected


def analyze_paths(
    paths: Optional[Sequence[Path]] = None,
    rule_names: Optional[Sequence[str]] = None,
) -> Report:
    """Run the selected rules over every Python file under ``paths``."""
    targets = [Path(p) for p in paths] if paths else [default_target()]
    rules = select_rules(rule_names)
    report = Report(rules={rule.name: rule.description for rule in rules})
    for file_path in iter_python_files(targets):
        source = SourceFile(file_path)
        findings, suppressed = check_source(source, rules)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    return report


def run_check(
    paths: Optional[Sequence[str]] = None,
    rule_names: Optional[Sequence[str]] = None,
    output_format: str = "human",
    list_rules: bool = False,
    out=None,
) -> int:
    """CLI body for ``repro check``; returns a process exit code."""
    out = out or sys.stdout
    if list_rules:
        for name in sorted(RULES):
            print(f"{name:7s} {RULES[name].description}", file=out)
        return 0
    try:
        report = analyze_paths(
            [Path(p) for p in paths] if paths else None, rule_names
        )
    except KeyError as exc:
        print(f"repro check: {exc.args[0]}", file=out)
        return 2
    if output_format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True), file=out)
    else:
        print(report.format_human(), file=out)
    return 1 if report.findings else 0
