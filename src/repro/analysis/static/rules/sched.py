"""SCHED — scheduling expressions must be virtual-time derived.

Every event the engine dispatches comes from a ``schedule``/``at``/
``at_reserved``/``stream_schedule``/``every`` call; the time argument is
where wall-clock contamination or past-time bugs enter.  The engine
raises at runtime for past times, but only on the seed/path that happens
to reach the call — this rule rejects the two statically decidable bug
classes at every call site in the simulation packages:

* a **negative literal** time/delay argument (a past time by
  construction, on every path);
* a time expression containing a **wall-clock read** (``time.time()``,
  ``time.monotonic()``, ``datetime.now()``, ...) — host time must never
  be mixed into virtual-time arithmetic.  Correct expressions derive
  from ``self.now`` / ``sim.now``, event fields, or configured offsets.

The rule keys on method *names*, so any object exposing the engine's
scheduling interface (the simulator itself, facades, test doubles) is
covered.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register
from repro.analysis.static.rules.common import attr_chain
from repro.analysis.static.rules.det import _is_wall_clock

__all__ = ["SchedulingRule"]

#: Engine scheduling entry points (see repro.sim.engine.Simulator).
_SCHEDULING_METHODS = frozenset(
    {"schedule", "at", "at_reserved", "stream_schedule", "every", "advance_to"}
)


def _negative_literal(node: ast.AST) -> bool:
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return node.operand.value > 0
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and node.value < 0
    )


def _wall_clock_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            chain = attr_chain(sub.func)
            if chain is not None and _is_wall_clock(chain):
                yield sub


@register
class SchedulingRule(Rule):
    """Scheduling time arguments: no literal past times, no wall clock."""

    name = "SCHED"
    severity = Severity.ERROR
    description = (
        "schedule/at/at_reserved/stream_schedule/every time arguments "
        "must derive from virtual time — no negative literals, no "
        "wall-clock reads"
    )
    packages = ("sim", "net", "aqm", "tcp", "core", "harness", "traffic")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SCHEDULING_METHODS
            ):
                continue
            if not node.args:
                continue
            time_arg = node.args[0]
            if _negative_literal(time_arg):
                yield self.finding(
                    source,
                    time_arg,
                    f"{func.attr}() called with a negative literal time — "
                    "a past time on every execution path",
                )
            for clock_call in _wall_clock_calls(time_arg):
                chain = attr_chain(clock_call.func)
                yield self.finding(
                    source,
                    clock_call,
                    f"{func.attr}() time argument reads the host clock "
                    f"({'.'.join(chain or ())}); scheduling must use "
                    "virtual time (self.now / sim.now)",
                )
