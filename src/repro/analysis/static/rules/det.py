"""DET — determinism sources: seeded streams only, no wall clock.

A run must be a pure function of (scenario, seed).  Inside the simulation
packages (``sim``, ``net``, ``aqm``, ``tcp``, ``core``) that means:

* no module-level :mod:`random` calls (``random.random()``,
  ``random.uniform()``, ...) — they draw from the process-global,
  unseeded-by-default generator;
* no ad-hoc ``random.Random(...)`` construction — every stream must come
  from :mod:`repro.sim.random` (:class:`RandomStreams` or
  :func:`default_stream`), so seeds derive from the experiment's master
  seed and A/B runs stay variance-isolated;
* no ``numpy.random`` (same problem, different module);
* no wall-clock or entropy reads (``time.time()``, ``time.monotonic()``,
  ``datetime.now()``, ``os.urandom()``, ``uuid.uuid4()``, ...) — host
  time must never leak into simulation state.  Legitimate wall-clock
  uses (the engine's watchdog budget) carry ``# repro: allow[DET]``
  suppressions with a justification.

:mod:`repro.sim.random` itself is exempt from the ``random.Random``
check — it is the sanctioned construction site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register
from repro.analysis.static.rules.common import attr_chain

__all__ = ["DeterminismRule"]

#: (module, attribute) call targets that read the host clock or entropy.
WALL_CLOCK: frozenset = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("secrets", "token_bytes"),
        ("secrets", "token_hex"),
        ("secrets", "randbelow"),
    }
)

#: The sanctioned stream factory module (exempt from the Random check).
_SANCTIONED_SUFFIX = ("repro", "sim", "random.py")


def _is_wall_clock(chain: Tuple[str, ...]) -> bool:
    """Match ``time.time`` and also ``datetime.datetime.now`` style chains."""
    return len(chain) >= 2 and chain[-2:] in WALL_CLOCK or (
        len(chain) >= 2 and (chain[0], chain[-1]) in WALL_CLOCK
    )


@register
class DeterminismRule(Rule):
    """All randomness through :mod:`repro.sim.random`; no wall clock."""

    name = "DET"
    severity = Severity.ERROR
    description = (
        "no unseeded random / numpy.random, no ad-hoc random.Random(), "
        "no wall-clock or entropy reads in sim/net/aqm/tcp/core"
    )
    packages = ("sim", "net", "aqm", "tcp", "core")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        sanctioned = source.path.parts[-3:] == _SANCTIONED_SUFFIX
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, sanctioned)
            elif isinstance(node, ast.Assign):
                yield from self._check_alias(source, node)

    def _check_call(
        self, source: SourceFile, node: ast.Call, sanctioned: bool
    ) -> Iterator[Finding]:
        chain = attr_chain(node.func)
        if chain is None:
            return
        if chain[0] == "random" and len(chain) == 2:
            if chain[1] == "Random":
                if not sanctioned:
                    yield self.finding(
                        source,
                        node,
                        "ad-hoc random.Random() construction; derive streams "
                        "from repro.sim.random (RandomStreams.stream or "
                        "default_stream) so seeding follows the master seed",
                    )
            elif chain[1] != "seed":
                yield self.finding(
                    source,
                    node,
                    f"module-level random.{chain[1]}() draws from the "
                    "process-global unseeded generator; use a named stream "
                    "from repro.sim.random",
                )
            return
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            yield self.finding(
                source,
                node,
                f"numpy.random.{chain[-1]}() is process-global state; "
                "simulation randomness must come from repro.sim.random "
                "streams",
            )
            return
        if _is_wall_clock(chain):
            yield self.finding(
                source,
                node,
                f"wall-clock/entropy read {'.'.join(chain)}() inside a "
                "simulation package; use virtual time (sim.now) or a seeded "
                "stream",
            )

    def _check_alias(self, source: SourceFile, node: ast.Assign) -> Iterator[Finding]:
        """Flag ``x = time.monotonic`` style bindings of wall-clock reads.

        Hot loops bind clock functions to locals; the binding itself is
        the auditable site (the later bare-name calls are untraceable
        statically), so it carries the finding — and, when legitimate,
        the suppression.
        """
        chain = attr_chain(node.value)
        if chain is not None and _is_wall_clock(chain):
            yield self.finding(
                source,
                node,
                f"binds wall-clock function {'.'.join(chain)}; calls through "
                "this alias read host time inside a simulation package",
            )
