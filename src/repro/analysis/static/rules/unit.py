"""UNIT — annotation-driven dimensional analysis over the project index.

PI2's parameters carry units: the α/β gains are frequencies in 1/s
(Briscoe, "PI² Parameters"), the target delay τ₀ and the update interval
T are seconds, link capacities are bit/s, backlogs are packets/bytes and
the controller output is a dimensionless probability.  A
milliseconds-vs-seconds or packets-vs-bytes mixup produces a simulation
that *runs* — just quietly wrong by orders of magnitude.

Signatures across ``sim/``/``aqm/``/``net/``/``core/`` are annotated with
the transparent aliases from :mod:`repro.units` (``Seconds``,
``PerSecond``, ``Packets``, ``Bytes``, ``Bits``, ``BitsPerSecond``,
``Probability``).  This rule reads those annotations out of the
:class:`~repro.analysis.static.graph.ProjectIndex` — parameter and return
annotations, ``self.<attr>`` annotations resolved through the class MRO,
module-level constants resolved through imports — and checks, per
function:

* **cross-unit arithmetic** — ``+``/``-``/comparisons where both operand
  dimensions are known and differ (``Seconds + Packets``); ``*``/``/``
  compose dimension vectors, so ``Packets / PerSecond`` is fine and has
  dimension packets·s;
* **unit-less literals into unit-annotated parameters** — a bare numeric
  literal passed (positionally or by keyword) to a parameter annotated
  with a *dimensioned* unit must be wrapped at the call site
  (``Seconds(0.02)``), making the unit visible where the number is
  written;
* **cross-unit arguments** — an expression with known dimension passed
  to a parameter annotated with a different dimension.

``Probability`` is dimensionless, so literal probabilities (``0.25``)
stay silent — the PROB rule already polices their range.  Anything the
analysis cannot resolve has *unknown* dimension and is silent: the rule
errs toward missing a mixup rather than flagging correct code.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.static.core import (
    Finding,
    ProjectRule,
    Severity,
    SourceFile,
    register,
)
from repro.analysis.static.rules.common import attr_chain

__all__ = ["UnitRule", "UNIT_DIMS", "dim_name"]

#: Dimension vector for each alias in :mod:`repro.units`: base unit ->
#: integer exponent.  ``Probability`` is dimensionless but *tracked* so
#: Probability-vs-Seconds mixing is still caught.
UNIT_DIMS: Dict[str, Dict[str, int]] = {
    "Seconds": {"s": 1},
    "PerSecond": {"s": -1},
    "Packets": {"pkt": 1},
    "Bytes": {"byte": 1},
    "Bits": {"bit": 1},
    "BitsPerSecond": {"bit": 1, "s": -1},
    "Probability": {},
}

_Dim = FrozenSet[Tuple[str, int]]


def _dim(annotation: Optional[str]) -> Optional[_Dim]:
    """Dimension vector for an annotation name; None when unit-less."""
    if annotation is None or annotation not in UNIT_DIMS:
        return None
    return frozenset(UNIT_DIMS[annotation].items())


def dim_name(dim: _Dim) -> str:
    """Human rendering of a dimension vector (``s``, ``pkt·s⁻¹``, ``1``)."""
    for alias, vector in UNIT_DIMS.items():
        if frozenset(vector.items()) == dim:
            return alias
    if not dim:
        return "dimensionless"
    parts = []
    for unit, power in sorted(dim):
        parts.append(unit if power == 1 else f"{unit}^{power}")
    return "*".join(parts)


def _compose(a: _Dim, b: _Dim, sign: int) -> _Dim:
    out = dict(a)
    for unit, power in b:
        out[unit] = out.get(unit, 0) + sign * power
    return frozenset((u, p) for u, p in out.items() if p != 0)


def _is_numeric_literal(node: ast.AST) -> bool:
    """A bare numeric constant (possibly negated), excluding bool."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _is_zero_literal(node: ast.AST) -> bool:
    """Zero is unit-safe: 0 s == 0 of anything, so it needs no wrapping."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and node.value == 0


class _FunctionUnits:
    """Dimension check over one function body."""

    def __init__(self, rule: "UnitRule", index, info) -> None:
        self.rule = rule
        self.index = index
        self.info = info
        self.module = index.modules.get(info.module)
        self.findings: List[Finding] = []
        #: local/attr name -> dimension vector.
        self.env: Dict[str, _Dim] = {}
        self.call_map = {id(cs.node): cs.callee for cs in info.calls}
        for param, annot in info.param_annotations.items():
            dim = _dim(annot)
            if dim is not None:
                self.env[param] = dim

    def run(self) -> List[Finding]:
        self._walk(self.info.node.body)
        self._check_annotated_defaults()
        return self.findings

    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.info.source, node, message))

    # -- environment -------------------------------------------------------
    def _name_dim(self, key: str) -> Optional[_Dim]:
        if key in self.env:
            return self.env[key]
        # Module constants, resolved through imports.
        if self.module is not None:
            annot = self.module.constant_annotations.get(key)
            if annot is not None:
                return _dim(annot)
            target = self.module.imports.get(key)
            if target is not None:
                mod_name, _, const = target.rpartition(".")
                mod = self.index.modules.get(mod_name)
                if mod is not None:
                    return _dim(mod.constant_annotations.get(const))
        return None

    def _attr_dim(self, chain: Tuple[str, ...]) -> Optional[_Dim]:
        if len(chain) == 2 and chain[0] == "self" and self.info.class_name:
            key = f"self.{chain[1]}"
            if key in self.env:
                return self.env[key]
            class_qual = f"{self.info.module}.{self.info.class_name}"
            return _dim(self.index.attr_annotation(class_qual, chain[1]))
        return None

    # -- statements --------------------------------------------------------
    def _walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, dim)
        elif isinstance(stmt, ast.AnnAssign):
            declared = _dim(self._annotation_name(stmt.annotation))
            if stmt.value is not None:
                actual = self._eval(stmt.value)
                if (
                    declared is not None
                    and actual is not None
                    and declared != actual
                ):
                    self._report(
                        stmt,
                        f"assigning {dim_name(actual)} value to a "
                        f"{dim_name(declared)}-annotated target",
                    )
            self._bind(stmt.target, declared)
        elif isinstance(stmt, ast.AugAssign):
            left = self._target_dim(stmt.target)
            right = self._eval(stmt.value)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_additive(stmt, left, right, "augmented assignment")
            elif isinstance(stmt.op, (ast.Mult, ast.Div)) and left is not None:
                if right is not None:
                    sign = 1 if isinstance(stmt.op, ast.Mult) else -1
                    self._bind(stmt.target, _compose(left, right, sign))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                actual = self._eval(stmt.value)
                declared = _dim(self.info.return_annotation)
                if (
                    declared is not None
                    and actual is not None
                    and declared != actual
                ):
                    self._report(
                        stmt,
                        f"returning {dim_name(actual)} from a function "
                        f"annotated -> {dim_name(declared)}",
                    )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)

    @staticmethod
    def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
        from repro.analysis.static.graph import _annotation_name

        return _annotation_name(node)

    def _target_key(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        chain = attr_chain(target)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            return f"self.{chain[1]}"
        return None

    def _target_dim(self, target: ast.AST) -> Optional[_Dim]:
        if isinstance(target, ast.Name):
            return self._name_dim(target.id)
        chain = attr_chain(target)
        if chain is not None:
            return self._attr_dim(chain)
        return None

    def _bind(self, target: ast.AST, dim: Optional[_Dim]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            return  # unpacking: dimensions unknown per-element
        key = self._target_key(target)
        if key is None:
            return
        if dim is not None:
            self.env[key] = dim
        else:
            self.env.pop(key, None)

    # -- expressions -------------------------------------------------------
    def _eval(self, node: ast.AST) -> Optional[_Dim]:
        if isinstance(node, ast.Name):
            return self._name_dim(node.id)
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None:
                dim = self._attr_dim(chain)
                if dim is not None:
                    return dim
            self._eval(node.value)
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                self._check_additive(node, left, right, "arithmetic")
                return left if left is not None else right
            if isinstance(node.op, ast.Mult):
                if left is not None and right is not None:
                    return _compose(left, right, 1)
                return None
            if isinstance(node.op, (ast.Div, ast.FloorDiv)):
                if left is not None and right is not None:
                    return _compose(left, right, -1)
                return None
            if isinstance(node.op, ast.Mod):
                return left
            return None
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            left = self._eval(node.left)
            for comparator in node.comparators:
                right = self._eval(comparator)
                if (
                    left is not None
                    and right is not None
                    and left != right
                ):
                    self._report(
                        node,
                        f"comparing {dim_name(left)} against "
                        f"{dim_name(right)}",
                    )
                left = right
            return None
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            return body if body is not None else orelse
        if isinstance(node, ast.BoolOp):
            out: Optional[_Dim] = None
            for value in node.values:
                dim = self._eval(value)
                if out is None:
                    out = dim
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt)
            return None
        if isinstance(node, ast.Subscript):
            self._eval(node.value)
            return None
        return None

    def _check_additive(
        self,
        node: ast.AST,
        left: Optional[_Dim],
        right: Optional[_Dim],
        context: str,
    ) -> None:
        if left is not None and right is not None and left != right:
            self._report(
                node,
                f"{context} mixes {dim_name(left)} with {dim_name(right)}; "
                "convert explicitly so the unit change is visible",
            )

    def _eval_call(self, node: ast.Call) -> Optional[_Dim]:
        # Alias constructor: Seconds(x) declares x's unit.
        if isinstance(node.func, ast.Name) and node.func.id in UNIT_DIMS:
            for arg in node.args:
                self._eval(arg)
            return _dim(node.func.id)

        arg_dims = [self._eval(arg) for arg in node.args]
        kw_dims = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)

        callee = self.call_map.get(id(node))
        callee_info = (
            self.index.functions.get(callee) if callee is not None else None
        )
        if callee_info is not None:
            self._check_args(node, callee_info, arg_dims, kw_dims)
            return _dim(callee_info.return_annotation)

        # min/max/abs/round preserve the (common) dimension of their args.
        if isinstance(node.func, ast.Name) and node.func.id in (
            "abs", "min", "max", "round"
        ):
            known = [d for d in arg_dims if d is not None]
            if known and all(d == known[0] for d in known):
                return known[0]
        return None

    def _check_args(
        self,
        node: ast.Call,
        callee,
        arg_dims: List[Optional[_Dim]],
        kw_dims: Dict[str, Optional[_Dim]],
    ) -> None:
        short = callee.qualname.rsplit(".", 1)[-1]
        if callee.is_method and "." in callee.qualname:
            short = ".".join(callee.qualname.rsplit(".", 2)[-2:])

        def check_one(arg_node: ast.AST, param: str,
                      actual: Optional[_Dim]) -> None:
            annot = callee.param_annotations.get(param)
            expected = _dim(annot)
            if expected is None:
                return
            if actual is None:
                # Bare literal into a *dimensioned* parameter: the unit
                # must be visible at the call site.  Probability is
                # dimensionless (literal probabilities stay PROB's beat)
                # and zero is unit-safe.
                if (
                    _is_numeric_literal(arg_node)
                    and expected
                    and not _is_zero_literal(arg_node)
                ):
                    self._report(
                        arg_node,
                        f"unit-less literal flows into {annot}-annotated "
                        f"parameter {param!r} of {short}(); wrap it as "
                        f"{annot}(...) so the unit is explicit",
                    )
                return
            if actual != expected:
                self._report(
                    arg_node,
                    f"{dim_name(actual)} value passed to {annot}-annotated "
                    f"parameter {param!r} of {short}()",
                )

        for i, (arg, actual) in enumerate(zip(node.args, arg_dims)):
            if isinstance(arg, ast.Starred):
                continue
            param = callee.positional_param(i)
            if param is not None:
                check_one(arg, param, actual)
        for kw in node.keywords:
            if kw.arg is not None and (
                kw.arg in callee.param_annotations
            ):
                check_one(kw.value, kw.arg, kw_dims.get(kw.arg))

    def _check_annotated_defaults(self) -> None:
        """Unit-annotated parameters should not default to bare literals."""
        args = self.info.node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            self._check_default(arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_default(arg, default)

    def _check_default(self, arg: ast.arg, default: ast.AST) -> None:
        annot = self.info.param_annotations.get(arg.arg)
        expected = _dim(annot)
        if expected is None or not expected:
            return  # unannotated or dimensionless (Probability): silent
        if _is_numeric_literal(default):
            if _is_zero_literal(default):
                return
            self._report(
                default,
                f"unit-less literal default for {annot}-annotated "
                f"parameter {arg.arg!r}; wrap it as {annot}(...)",
            )
        elif isinstance(default, ast.Call) and isinstance(
            default.func, ast.Name
        ) and default.func.id in UNIT_DIMS:
            actual = _dim(default.func.id)
            if actual is not None and actual != expected:
                self._report(
                    default,
                    f"{default.func.id} default for {annot}-annotated "
                    f"parameter {arg.arg!r}",
                )


@register
class UnitRule(ProjectRule):
    """Dimensional analysis: units must not mix silently."""

    name = "UNIT"
    severity = Severity.ERROR
    description = (
        "unit-annotated quantities (Seconds, PerSecond, Packets, Bits, "
        "BitsPerSecond, Probability) must not mix dimensions in +/-/"
        "comparisons, and bare literals must be wrapped before flowing "
        "into unit-annotated parameters"
    )
    packages = ("sim", "net", "aqm", "tcp", "core", "harness", "traffic")

    def check_project(
        self, index, files: Optional[frozenset] = None
    ) -> Iterator[Finding]:
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            path = info.source.display_path
            if files is not None and path not in files:
                continue
            yield from _FunctionUnits(self, index, info).run()
