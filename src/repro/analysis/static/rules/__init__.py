"""Rule catalogue: importing this package registers every built-in rule.

The nine domain rules guard the properties the repository's
reproducibility story depends on — see docs/STATIC_ANALYSIS.md for the
full catalogue and docs on adding a rule:

========  ==============================================================
DET       randomness only via seeded repro.sim.random streams; no wall
          clock in sim/net/aqm/tcp/core
ORD       no iteration over sets or unsorted filesystem listings
FLOAT     no running float additions over unordered iterables in
          sim/aqm/metrics (IEEE-754 addition is order-dependent);
          no sum()/math.fsum() directly on sets, dict views or
          unsorted listings
PROB      probability writes/returns in aqm/core clamp-dominated
SCHED     scheduling time arguments derived from virtual time
PICKLE    process-pool task-spec seam stays picklable
OBS       tracers are write-only observers: no consumed tracer call
          results, no tracer expressions in scheduling arguments
TAINT     interprocedural: no wall-clock/environment/unseeded-RNG/
          hash-order value flows into scheduling delays, probability
          writes or digest inputs (pass 2, project-wide)
UNIT      interprocedural: unit-annotated quantities (Seconds, PerSecond,
          Packets, Bits, BitsPerSecond, Probability) must not mix
          dimensions, and literals into unit parameters must be wrapped
========  ==============================================================
"""

from repro.analysis.static.rules.det import DeterminismRule
from repro.analysis.static.rules.floats import FloatAccumulationRule
from repro.analysis.static.rules.obs import ObservabilityRule
from repro.analysis.static.rules.ordering import OrderingRule
from repro.analysis.static.rules.pickling import PicklabilityRule
from repro.analysis.static.rules.prob import ProbabilityDomainRule
from repro.analysis.static.rules.sched import SchedulingRule
from repro.analysis.static.rules.taint import TaintRule
from repro.analysis.static.rules.unit import UnitRule

__all__ = [
    "DeterminismRule",
    "FloatAccumulationRule",
    "ObservabilityRule",
    "OrderingRule",
    "PicklabilityRule",
    "ProbabilityDomainRule",
    "SchedulingRule",
    "TaintRule",
    "UnitRule",
]
