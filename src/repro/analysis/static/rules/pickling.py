"""PICKLE — everything crossing the process-pool seam must pickle.

Parallel sweeps ship whole task specs to worker processes
(:func:`repro.harness.parallel.execute_tasks`): the
:class:`~repro.harness.parallel.SweepTask`'s experiment, its
:class:`~repro.harness.factories.NamedAqmFactory`, and the returned
:class:`~repro.harness.frozen.FrozenResult`.  A lambda or
function-local class smuggled into that seam fails only at runtime —
and only when ``jobs > 1`` — deep inside the pool.  This rule rejects
the statically visible cases in ``harness/``:

* a ``lambda`` passed into ``NamedAqmFactory(...)``, ``SweepTask(...)``
  or ``Experiment(...)``, positionally or via an ``*factory*`` keyword;
* a class or function *defined inside a function body* referenced in a
  ``NamedAqmFactory(...)`` / ``SweepTask(...)`` construction — pickle
  resolves classes by module path, so only module-level definitions
  survive the trip;
* a seam class (``NamedAqmFactory``, ``FrozenResult``, ``SweepTask``)
  declaring ``__slots__`` without ``__getstate__``/``__setstate__`` and
  without a ``dataclass`` decorator — slots plus inheritance is exactly
  the combination where default reduction silently drops state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register

__all__ = ["PicklabilityRule"]

#: Constructors whose arguments travel through pickle to pool workers.
_SEAM_CONSTRUCTORS = frozenset({"NamedAqmFactory", "SweepTask", "Experiment"})

#: Classes that define the pickled seam and must stay __reduce__-safe.
_SEAM_CLASSES = frozenset({"NamedAqmFactory", "FrozenResult", "SweepTask"})


def _constructor_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _local_definitions(tree: ast.Module) -> Set[str]:
    """Names of classes/functions defined *inside* function bodies."""
    module_level: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module_level.add(node.name)
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    nested.add(sub.name)
    return nested - module_level


@register
class PicklabilityRule(Rule):
    """Task-spec seam stays picklable: module-level types, no lambdas."""

    name = "PICKLE"
    severity = Severity.ERROR
    description = (
        "no lambdas or function-local classes in NamedAqmFactory/"
        "SweepTask/Experiment task specs; seam classes with __slots__ "
        "need __getstate__/__setstate__"
    )
    packages = ("harness",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        nested_defs = _local_definitions(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_seam_call(source, node, nested_defs)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_seam_class(source, node)

    def _check_seam_call(
        self, source: SourceFile, node: ast.Call, nested_defs: Set[str]
    ) -> Iterator[Finding]:
        ctor = _constructor_name(node)
        if ctor not in _SEAM_CONSTRUCTORS:
            return
        arguments = [(None, arg) for arg in node.args] + [
            (kw.arg, kw.value) for kw in node.keywords
        ]
        for keyword, value in arguments:
            if isinstance(value, ast.Lambda):
                where = f"keyword {keyword!r}" if keyword else "a positional argument"
                yield self.finding(
                    source,
                    value,
                    f"lambda passed to {ctor}(...) as {where}; lambdas "
                    "cannot be pickled across the process-pool seam — use "
                    "a module-level factory (repro.harness.factories)",
                )
            elif (
                isinstance(value, ast.Name)
                and value.id in nested_defs
                and ctor in ("NamedAqmFactory", "SweepTask")
            ):
                yield self.finding(
                    source,
                    value,
                    f"{value.id!r} is defined inside a function body but "
                    f"handed to {ctor}(...); pickle resolves types by "
                    "module path, so task-spec types must be module-level",
                )

    def _check_seam_class(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if node.name not in _SEAM_CLASSES:
            return
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            )
            for stmt in node.body
        )
        if not has_slots:
            return
        if any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
            or (
                isinstance(dec, ast.Call)
                and isinstance(dec.func, (ast.Name, ast.Attribute))
                and (
                    getattr(dec.func, "id", None) == "dataclass"
                    or getattr(dec.func, "attr", None) == "dataclass"
                )
            )
            for dec in node.decorator_list
        ):
            return
        methods = {
            stmt.name for stmt in node.body if isinstance(stmt, ast.FunctionDef)
        }
        if not {"__getstate__", "__setstate__"} <= methods:
            yield self.finding(
                source,
                node,
                f"seam class {node.name!r} declares __slots__ without "
                "__getstate__/__setstate__; default reduction can drop "
                "slot state when the class evolves — define both",
            )
