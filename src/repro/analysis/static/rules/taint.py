"""TAINT — nondeterminism must not flow into scheduling, probability or digests.

``DET`` bans wall-clock reads *at the call site*; ``SCHED`` bans them
*inside a scheduling argument expression*.  Both are blind to a value
that crosses a function boundary in between::

    def _now_wall():                 # helper, maybe in another module
        return time.time()

    def _jitter(self):
        return _now_wall() * 1e-3    # hop 2

    sim.schedule(self._jitter(), fn) # invisible to DET and SCHED

This rule closes that gap with forward taint propagation over the
project call graph (pass 2 of the analyzer — see
:mod:`repro.analysis.static.graph`).

**Sources** (what makes a value tainted):

* wall-clock/entropy reads (the DET catalogue: ``time.time``,
  ``time.monotonic``, ``datetime.now``, ``os.urandom``, ``uuid.uuid4``,
  ``secrets.*``, …);
* environment reads (``os.environ[...]``, ``os.environ.get``,
  ``os.getenv``) — host configuration must not steer a simulation;
* unseeded randomness (module-level ``random.*`` draws, no-arg
  ``random.Random()``, ``numpy.random.*``);
* hash-order iteration (the loop variable of ``for x in <set>`` or an
  unsorted filesystem listing).

**Propagation**: through assignments (including ``self.attr`` within a
function), arithmetic/boolean/comparison expressions, tuple unpacking,
returns, and **call arguments/returns across functions** using
per-function summaries (which sources can reach a return; which
parameters flow to a return; which parameters reach a sink inside the
callee).  Summaries are memoised per function and the recursion is
bounded (:data:`MAX_DEPTH`), so whole-tree analysis stays linear-ish and
cycles terminate.

**Sanitizers**: a value laundered through ``clamp_unit``/``clamp*``
(domain re-established), ``default_stream`` (seeded stream construction)
or ``sorted`` (order re-established) stops being tainted.

**Sinks** (where tainted values are reported):

* the time/delay argument of every engine scheduling entry point
  (``schedule``, ``at``, ``call_later``, ``call_at``, ``at_reserved``,
  ``stream_schedule``, ``every``, ``advance_to``);
* assignments to probability-named targets (the PROB vocabulary) — the
  coupling law ``pc = (p')²`` is only meaningful for a reproducible p';
* digest inputs — arguments to ``hashlib`` constructors and to
  ``.update()`` on a hasher, and arguments to functions named
  ``digest``/``*_digest``/``digest_hex``.

A finding lands where the taint *meets the sink*: inside the function
containing the sink when the source is local or reached through callees,
or at the call site whose argument carries taint into a sink-reaching
parameter of the callee.  Unresolvable calls propagate nothing — the
rule errs toward silence, like every other rule in the suite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.static.core import (
    Finding,
    ProjectRule,
    Severity,
    SourceFile,
    register,
)
from repro.analysis.static.rules.common import attr_chain
from repro.analysis.static.rules.det import _is_wall_clock
from repro.analysis.static.rules.prob import _target_p_name

__all__ = ["TaintRule", "MAX_DEPTH"]

#: Bound on interprocedural summary recursion (hops through the call
#: graph); deeper chains are treated as unknown (silence, not hangs).
MAX_DEPTH = 12

#: Scheduling entry points whose first argument is a time/delay.
_SCHED_SINKS = frozenset(
    {
        "schedule",
        "at",
        "at_reserved",
        "stream_schedule",
        "every",
        "advance_to",
        "call_later",
        "call_at",
    }
)

#: Calls that re-establish a deterministic domain/order: taint stops.
_SANITIZERS = frozenset({"default_stream", "sorted"})

_HASHLIB_CTORS = frozenset(
    {"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s", "sha3_256"}
)


@dataclass(frozen=True)
class _Source:
    """One concrete nondeterminism source, with its interprocedural path."""

    desc: str
    via: Tuple[str, ...] = ()

    def hop(self, callee: str) -> "_Source":
        if len(self.via) >= MAX_DEPTH:
            return self
        return _Source(self.desc, self.via + (callee,))

    def render(self) -> str:
        if not self.via:
            return self.desc
        path = " -> ".join(reversed(self.via))
        return f"{self.desc} (via {path})"


#: Taint lattice element: concrete sources and/or parameter names.
_TaintSet = FrozenSet[Union[_Source, str]]
_EMPTY: _TaintSet = frozenset()

#: Methods that return a transformed view of their receiver's value:
#: taint on the receiver survives the call.
_PASSTHROUGH_METHODS = frozenset({
    "encode", "decode", "hex", "format", "strip", "lstrip", "rstrip",
    "lower", "upper", "copy",
})


def _params_of(taints: _TaintSet) -> Set[str]:
    return {t for t in taints if isinstance(t, str)}


def _concrete(taints: _TaintSet) -> List[_Source]:
    return sorted(
        (t for t in taints if isinstance(t, _Source)), key=lambda s: s.desc
    )


@dataclass
class Summary:
    """What a caller needs to know about one function, without its body."""

    #: Concrete sources that can reach a ``return`` value.
    returns: _TaintSet = _EMPTY
    #: Parameter names whose taint propagates to the return value.
    param_to_return: FrozenSet[str] = frozenset()
    #: Parameter name -> description of the sink it reaches inside.
    param_sinks: Dict[str, str] = field(default_factory=dict)
    #: (node, sink description, source) for taint meeting a sink locally.
    findings: List[Tuple[ast.AST, str, _Source]] = field(default_factory=list)


_EMPTY_SUMMARY = Summary()


def _simple_call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _source_of_call(chain: Optional[Tuple[str, ...]], node: ast.Call
                    ) -> Optional[_Source]:
    """Concrete taint source introduced by this call, if any."""
    if chain is None:
        return None
    dotted = ".".join(chain)
    if _is_wall_clock(chain):
        return _Source(f"wall-clock/entropy read {dotted}()")
    if len(chain) >= 2 and chain[-2:] == ("os", "getenv"):
        return _Source("environment read os.getenv()")
    if len(chain) >= 3 and chain[-3:-1] == ("os", "environ"):
        # os.environ.get(...) / os.environ.setdefault(...)
        return _Source(f"environment read os.environ.{chain[-1]}()")
    if chain[0] == "random" and len(chain) == 2:
        if chain[1] == "Random":
            if not node.args:
                return _Source("unseeded random.Random() construction")
            return None  # seeded ctor: DET's concern, value is deterministic
        if chain[1] != "seed":
            return _Source(f"unseeded module-level random.{chain[1]}()")
    if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
        return _Source(f"process-global numpy.random.{chain[-1]}()")
    return None


def _is_environ_read(node: ast.AST) -> bool:
    """``os.environ[...]`` subscripts (non-call environment reads)."""
    if isinstance(node, ast.Subscript):
        chain = attr_chain(node.value)
        return chain is not None and chain[-2:] == ("os", "environ")
    return False


def _unordered_iter(node: ast.AST) -> Optional[str]:
    """Why iterating this expression visits elements in unstable order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "hash-order iteration over a set"
    if isinstance(node, ast.Call):
        name = _simple_call_name(node)
        if name in ("set", "frozenset"):
            return f"hash-order iteration over a {name}()"
        if name in ("glob", "iglob", "listdir", "scandir", "iterdir", "rglob"):
            return f"filesystem-order iteration over {name}()"
    return None


class _FunctionAnalysis:
    """Single forward pass over one function body, building its summary."""

    def __init__(self, engine: "_TaintEngine", info) -> None:
        self.engine = engine
        self.info = info
        self.env: Dict[str, _TaintSet] = {}
        self.hashers: Set[str] = set()
        self.summary = Summary(
            returns=_EMPTY, param_to_return=frozenset(), param_sinks={},
            findings=[],
        )
        self._returns: Set[Union[_Source, str]] = set()
        self._param_to_return: Set[str] = set()
        self.call_map = {id(cs.node): cs.callee for cs in info.calls}

    def run(self) -> Summary:
        params = self.info.params
        if self.info.is_method and not self.info.is_static and params:
            params = params[1:]
        for name in list(params) + list(self.info.kwonly):
            self.env[name] = frozenset({name})
        self._walk(self.info.node.body)
        self.summary.returns = frozenset(
            t for t in self._returns if isinstance(t, _Source)
        )
        self.summary.param_to_return = frozenset(
            t for t in self._returns if isinstance(t, str)
        )
        return self.summary

    # -- statements --------------------------------------------------------
    def _walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value) | self._read_target(stmt.target)
            self._assign(stmt.target, taints, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._returns.update(self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            why = _unordered_iter(stmt.iter)
            iter_taints = self._eval(stmt.iter)
            if why is not None:
                iter_taints = iter_taints | frozenset({_Source(why)})
            self._assign(stmt.target, iter_taints, stmt, sink_check=False)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, stmt,
                                 sink_check=False)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        # Nested function/class definitions are indexed and summarised in
        # their own right (or not at all); no body descent here.

    def _target_key(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                return f"self.{chain[1]}"
        return None

    def _read_target(self, target: ast.AST) -> _TaintSet:
        key = self._target_key(target)
        return self.env.get(key, _EMPTY) if key is not None else _EMPTY

    def _assign(self, target: ast.AST, taints: _TaintSet, stmt: ast.AST,
                sink_check: bool = True) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taints, stmt, sink_check=sink_check)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, taints, stmt, sink_check=sink_check)
            return
        key = self._target_key(target)
        if key is not None:
            if taints:
                self.env[key] = taints
            else:
                self.env.pop(key, None)
            # Track hashlib hasher objects for the .update() sink.
            value = getattr(stmt, "value", None)
            if isinstance(value, ast.Call):
                chain = attr_chain(value.func)
                if chain is not None and (
                    (len(chain) >= 2 and chain[0] == "hashlib")
                    or chain[-1] in _HASHLIB_CTORS
                ):
                    self.hashers.add(key)
        if sink_check:
            p_name = _target_p_name(target)
            if p_name is not None and taints:
                self._report_sink(
                    stmt, f"probability write to {p_name!r}", taints
                )

    # -- expressions -------------------------------------------------------
    def _eval(self, node: ast.AST) -> _TaintSet:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                return self.env.get(f"self.{chain[1]}", _EMPTY)
            if chain is not None and chain[-2:] == ("os", "environ"):
                return frozenset({_Source("environment read os.environ")})
            return self._eval(node.value)
        if _is_environ_read(node):
            self._eval(node.value)
            return frozenset({_Source("environment read os.environ[...]")})
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: _TaintSet = _EMPTY
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out = out | self._eval(comparator)
            return out
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                out = out | self._eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self._eval(key)
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._eval(value.value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            out = _EMPTY
            for generator in node.generators:
                out = out | self._eval(generator.iter)
                why = _unordered_iter(generator.iter)
                if why is not None:
                    out = out | frozenset({_Source(why)})
            return out
        return _EMPTY

    def _eval_call(self, node: ast.Call) -> _TaintSet:
        arg_taints = [self._eval(arg) for arg in node.args]
        kw_taints = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs: evaluate, can't map
                self._eval(kw.value)

        chain = attr_chain(node.func)
        name = _simple_call_name(node)

        # Sink: scheduling time/delay argument.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCHED_SINKS
            and node.args
        ):
            self._check_sink(
                node.args[0],
                arg_taints[0],
                f"time/delay argument of {node.func.attr}()",
            )

        # Sink: digest inputs.
        self._check_digest_sink(node, chain, arg_taints)

        # Sanitizers wash taint out of the returned value.
        if name is not None and (
            name in _SANITIZERS or name.startswith("clamp")
        ):
            return _EMPTY

        # Concrete source calls.
        source = _source_of_call(chain, node)
        if source is not None:
            return frozenset({source})

        # Resolved callee: consult its summary.
        callee = self.call_map.get(id(node))
        if callee is not None:
            return self._apply_summary(node, callee, arg_taints, kw_taints)

        # Identity-ish builtins pass taint through.
        if isinstance(node.func, ast.Name) and node.func.id in (
            "float", "int", "abs", "min", "max", "round", "sum", "len", "str"
        ):
            out: _TaintSet = _EMPTY
            for taints in arg_taints:
                out = out | taints
            return out

        # Value-preserving methods keep the receiver's taint (so e.g.
        # str(random.random()).encode() still reaches a digest sink).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PASSTHROUGH_METHODS
        ):
            out = self._eval(node.func.value)
            for taints in arg_taints:
                out = out | taints
            return out
        return _EMPTY

    def _apply_summary(
        self,
        node: ast.Call,
        callee: str,
        arg_taints: List[_TaintSet],
        kw_taints: Dict[str, _TaintSet],
    ) -> _TaintSet:
        engine = self.engine
        callee_info = engine.index.functions.get(callee)
        if callee_info is None:
            return _EMPTY
        summary = engine.summarize(callee)
        short = callee.rsplit(".", 1)[-1]
        if callee_info.is_method and "." in callee:
            short = ".".join(callee.rsplit(".", 2)[-2:])

        # Map argument taints onto callee parameter names.
        by_param: Dict[str, _TaintSet] = {}
        for i, taints in enumerate(arg_taints):
            param = callee_info.positional_param(i)
            if param is not None:
                by_param[param] = by_param.get(param, _EMPTY) | taints
        for kw, taints in kw_taints.items():
            by_param[kw] = by_param.get(kw, _EMPTY) | taints

        # Tainted arguments flowing into sink-reaching parameters.
        for param, sink_desc in summary.param_sinks.items():
            taints = by_param.get(param)
            if taints:
                self._check_sink(
                    node, taints, f"{sink_desc} inside {short}()"
                )

        # Return taint: callee-internal sources + propagated arguments.
        out: Set[Union[_Source, str]] = {
            s.hop(short) for s in _concrete(summary.returns)
        }
        for param in summary.param_to_return:
            for taint in by_param.get(param, _EMPTY):
                if isinstance(taint, _Source):
                    out.add(taint.hop(short))
                else:
                    out.add(taint)
        return frozenset(out)

    def _check_digest_sink(
        self,
        node: ast.Call,
        chain: Optional[Tuple[str, ...]],
        arg_taints: List[_TaintSet],
    ) -> None:
        is_sink = False
        desc = ""
        if chain is not None and len(chain) >= 2 and chain[0] == "hashlib":
            is_sink, desc = True, f"digest input to {'.'.join(chain)}()"
        elif isinstance(node.func, ast.Name) and node.func.id in _HASHLIB_CTORS:
            is_sink, desc = True, f"digest input to {node.func.id}()"
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "update":
            receiver = self._target_key(node.func.value)
            receiver_name = receiver or ""
            if receiver in self.hashers or any(
                token in receiver_name.lower()
                for token in ("hash", "digest", "sha")
            ):
                is_sink, desc = True, f"digest input to {receiver_name}.update()"
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr == "digest"
            or node.func.attr.endswith("_digest")
            or node.func.attr == "digest_hex"
        ):
            if node.args:
                is_sink, desc = True, f"digest input to {node.func.attr}()"
        if not is_sink:
            return
        for arg, taints in zip(node.args, arg_taints):
            if taints:
                self._check_sink(arg, taints, desc)

    def _check_sink(self, node: ast.AST, taints: _TaintSet, desc: str) -> None:
        for source in _concrete(taints):
            self.summary.findings.append((node, desc, source))
            break  # one finding per sink occurrence, first source wins
        for param in sorted(_params_of(taints)):
            self.summary.param_sinks.setdefault(param, desc)

    def _report_sink(self, node: ast.AST, desc: str, taints: _TaintSet) -> None:
        self._check_sink(node, taints, desc)


class _TaintEngine:
    """Summary cache + recursion bound over one :class:`ProjectIndex`."""

    def __init__(self, index) -> None:
        self.index = index
        self.cache: Dict[str, Summary] = {}
        self._in_progress: Set[str] = set()
        self._depth = 0

    def summarize(self, qualname: str) -> Summary:
        cached = self.cache.get(qualname)
        if cached is not None:
            return cached
        if qualname in self._in_progress or self._depth >= MAX_DEPTH:
            return _EMPTY_SUMMARY  # cycle/deep chain: unknown, stay silent
        info = self.index.functions.get(qualname)
        if info is None:
            return _EMPTY_SUMMARY
        self._in_progress.add(qualname)
        self._depth += 1
        try:
            summary = _FunctionAnalysis(self, info).run()
        finally:
            self._depth -= 1
            self._in_progress.discard(qualname)
        self.cache[qualname] = summary
        return summary


@register
class TaintRule(ProjectRule):
    """Forward taint: nondeterminism sources must not reach domain sinks."""

    name = "TAINT"
    severity = Severity.ERROR
    description = (
        "no wall-clock/environment/unseeded-RNG/hash-order value may "
        "flow — across assignments, returns and call boundaries — into "
        "scheduling time arguments, probability writes or digest inputs"
    )
    packages = (
        "sim", "net", "aqm", "tcp", "core", "harness", "traffic",
        "metrics", "obs",
    )

    def check_project(
        self, index, files: Optional[frozenset] = None
    ) -> Iterator[Finding]:
        engine = _TaintEngine(index)
        seen: Set[Tuple[str, int, int, str]] = set()
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            path = info.source.display_path
            if files is not None and path not in files:
                continue
            summary = engine.summarize(qualname)
            for node, sink_desc, source in summary.findings:
                message = (
                    f"{source.render()} flows into {sink_desc}; "
                    "derive the value from virtual time / seeded streams, "
                    "or sanitize it (clamp_unit/default_stream/sorted) "
                    "before it reaches the sink"
                )
                key = (
                    path,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0),
                    message,
                )
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(info.source, node, message)
