"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Optional, Tuple

__all__ = ["dotted_name", "attr_chain", "call_name", "is_name_call"]


def attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None when the chain has non-names.

    Only resolves pure Name/Attribute chains — ``obj().x`` or
    ``d["k"].x`` return None, which every caller treats as "unknown,
    don't flag" (the rules prefer false negatives over noise).
    """
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` rendered as ``"a.b.c"``, or None (see :func:`attr_chain`)."""
    chain = attr_chain(node)
    return ".".join(chain) if chain else None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's target, or None when it is dynamic."""
    return dotted_name(node.func)


def is_name_call(node: ast.AST, name: str) -> bool:
    """True when ``node`` is a call to the bare name ``name``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == name
    )
