"""PROB — probabilities must be clamped into [0, 1] where they are produced.

The coupling law ``p = (p'/k)²`` and its relatives are only probabilities
while they stay in the unit interval; under extreme gains or ``k < 1``
the raw arithmetic exceeds 1 and every ``rng.random() < p`` comparison
silently saturates while plots and digests record impossible values.
The invariant checker catches this at runtime (when ``validate`` is on);
this rule requires the *write sites* to be dominated by a clamp so the
domain can never be left in the first place.

Within ``aqm/`` and ``core/`` the rule inspects:

* assignments to probability-named targets (``p``, ``ps``, ``pc``,
  ``p_prime``, ``pc_prime``, ``p_l``, ``pa``, ``prob*`` — attributes
  like ``self.p`` / ``ctl.p`` and locals alike);
* ``return`` statements of probability-named functions and properties
  (``probability``, ``classic_probability``, ``_ps``, ...).

An expression counts as **clamped** when it is

* a numeric literal in [0, 1];
* a call to the shared helper :func:`repro.aqm.base.clamp_unit` (or any
  ``clamp*``-named function) — the sanctioned spelling;
* a ``min(max(...), ...)`` / ``max(min(...), ...)`` combination (both
  bounds present);
* a plain read of a name/attribute, or a call to another function (the
  producer is then the checked site);
* a conditional expression whose branches are all clamped.

Bare arithmetic (``ps / k``, ``p ** 2``, ``min(...)`` alone — one-sided)
is flagged.  Local accumulator augmented assignments (``p += delta``)
are tolerated because the final store back to the attribute is checked;
augmented assignment *to an attribute* is flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register

__all__ = ["ProbabilityDomainRule"]

#: Probability-valued identifiers (after stripping leading underscores).
_P_NAME = re.compile(r"^(p|ps|pc|pa|pp|p_[a-z0-9_]+|pc_[a-z0-9_]*|prob[a-z0-9_]*)$")

#: Identifiers that look probability-ish but are not probabilities.
_P_NAME_EXEMPT = frozenset(
    {
        "p_max",          # configuration bound, validated at construction
        "p_good_to_bad",  # Markov transition parameters, ctor-validated
        "p_bad_to_good",
    }
)

_CLAMP_FUNCS = re.compile(r"^clamp")


def _is_p_name(identifier: str) -> bool:
    name = identifier.lstrip("_")
    if name in _P_NAME_EXEMPT:
        return False
    return bool(_P_NAME.match(name)) or "probability" in name


def _target_p_name(target: ast.AST) -> Optional[str]:
    """Probability-ish identifier a store targets, or None."""
    if isinstance(target, ast.Name) and _is_p_name(target.id):
        return target.id
    if isinstance(target, ast.Attribute) and _is_p_name(target.attr):
        return target.attr
    return None


def _call_simple_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_predicate(func: ast.FunctionDef) -> bool:
    """Probability-named functions returning ``bool`` are range *checks*
    (``is_unit_probability``), not probability producers — skip them."""
    returns = func.returns
    return (
        isinstance(returns, ast.Name)
        and returns.id == "bool"
        or func.name.lstrip("_").startswith(("is_", "has_"))
    )


def _is_clamped(node: ast.AST) -> bool:
    """Does the expression provably stay within a clamp (see module doc)?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and 0.0 <= node.value <= 1.0
    if isinstance(node, (ast.Name, ast.Attribute)):
        return True  # plain read; the producing site is the checked one
    if isinstance(node, ast.IfExp):
        return _is_clamped(node.body) and _is_clamped(node.orelse)
    if isinstance(node, ast.Call):
        name = _call_simple_name(node)
        if name is None:
            return True  # dynamic call; can't see inside, don't flag
        if _CLAMP_FUNCS.match(name):
            return True
        if name in ("min", "max"):
            opposite = "max" if name == "min" else "min"
            return any(
                isinstance(arg, ast.Call)
                and _call_simple_name(arg) in (opposite,)
                or (
                    isinstance(arg, ast.Call)
                    and (_call_simple_name(arg) or "").startswith("clamp")
                )
                for arg in node.args
            )
        return True  # some other producer function: checked at its returns
    return False  # arithmetic, comparisons, subscripts, ...


@register
class ProbabilityDomainRule(Rule):
    """Writes/returns of probabilities must be clamp-dominated."""

    name = "PROB"
    severity = Severity.ERROR
    description = (
        "probability assignments and probability-function returns in "
        "aqm/ and core/ must be dominated by a [0,1] clamp "
        "(repro.aqm.base.clamp_unit)"
    )
    packages = ("aqm", "core")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_store(source, target, node.value, node)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                yield from self._check_store(source, node.target, node.value, node)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_aug(source, node)
            elif (
                isinstance(node, ast.FunctionDef)
                and _is_p_name(node.name)
                and not _is_predicate(node)
            ):
                yield from self._check_returns(source, node)

    def _check_store(
        self, source: SourceFile, target: ast.AST, value: ast.AST, node: ast.AST
    ) -> Iterator[Finding]:
        name = _target_p_name(target)
        if name is None or _is_clamped(value):
            return
        yield self.finding(
            source,
            node,
            f"probability {name!r} assigned from unclamped arithmetic; "
            "wrap the expression in repro.aqm.base.clamp_unit(...) (or "
            "min(max(...), ...)) so it cannot leave [0, 1]",
        )

    def _check_aug(self, source: SourceFile, node: ast.AugAssign) -> Iterator[Finding]:
        name = _target_p_name(node.target)
        if name is None or isinstance(node.target, ast.Name):
            return  # local accumulators are clamped at the attribute store
        yield self.finding(
            source,
            node,
            f"augmented assignment accumulates into probability {name!r} "
            "without a clamp; accumulate in a local and store through "
            "clamp_unit(...)",
        )

    def _check_returns(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if not _is_clamped(node.value):
                    yield self.finding(
                        source,
                        node,
                        f"probability function {func.name!r} returns "
                        "unclamped arithmetic; wrap in clamp_unit(...)",
                    )
