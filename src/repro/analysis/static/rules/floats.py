"""FLOAT — float accumulation must not depend on an unordered iteration.

IEEE-754 addition is not associative: ``(a + b) + c`` and ``a + (b + c)``
round differently, so a running ``total += x`` over an iterable whose
order is not reproducible (a set, a frozenset, an unsorted directory
listing) yields run-to-run different sums even when the *elements* are
identical.  In this repository every float that reaches a digest must be
bit-stable — the serial/parallel/cache parity gates and the golden
digest tests all hash raw float sums — so an order-dependent
accumulation is a reproducibility bug even when the drift only shows in
the last ulp.

Within ``sim/``, ``aqm/`` and ``metrics/`` the rule flags ``for`` loops
that both

* iterate a provably unordered source — a set or frozenset (literal,
  constructor call, or set comprehension) or an unsorted filesystem
  listing (``glob``/``iglob``/``listdir``/``scandir``/``iterdir``); and
* accumulate with ``+=`` (or the spelled-out ``acc = acc + ...``)
  anywhere in the loop body.

The sanctioned spellings make the order explicit before any addition
happens::

    total = sum(sorted(values))        # one canonical order
    total = math.fsum(sorted(values))  # and exactly rounded, if it matters

The rule also flags the one-liner form of the same bug: ``sum(...)`` or
``math.fsum(...)`` called *directly* on a set expression, a dict view
(``.values()``/``.keys()``/``.items()``), or an unsorted filesystem
listing.  ``fsum`` is exactly rounded and therefore order-*independent*
for the sum itself, but the sanctioned spelling is uniform —
``sorted(...)`` inside the reduction — because the same iterable
routinely feeds order-sensitive consumers next to the sum.  Dict views
are flagged *here* (and not by ORD, which deliberately trusts insertion
order) because insertion order of a dict populated from an unordered
upstream is exactly as unstable as the upstream.

Iteration over lists, tuples, ranges and dict views is not flagged —
those have a deterministic (insertion or index) order — and unordered
iteration *without* accumulation stays ORD's concern, not FLOAT's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register

__all__ = ["FloatAccumulationRule"]

#: Constructors producing unordered collections.
_SET_CALLS = frozenset({"set", "frozenset"})

#: Filesystem listings whose order is platform/inode dependent.
_UNSORTED_LISTING_CALLS = frozenset(
    {"glob", "iglob", "listdir", "scandir", "iterdir"}
)


def _call_simple_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _unordered_source(node: ast.AST) -> Optional[str]:
    """A human-readable description of why the iterable is unordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        name = _call_simple_name(node)
        if name in _SET_CALLS:
            return f"a {name}()"
        if name in _UNSORTED_LISTING_CALLS:
            return f"an unsorted {name}() listing"
        if name == "sorted":
            return None  # explicitly ordered — the sanctioned fix
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` etc. between sets; only worth naming when a side is
        # provably a set, otherwise assume ordinary arithmetic.
        for side in (node.left, node.right):
            if _unordered_source(side) is not None:
                return "a set expression"
    return None


#: Dict views: ordered per-dict, but only as ordered as their producer.
_DICT_VIEW_CALLS = frozenset({"values", "keys", "items"})


def _reduction_operand_problem(node: ast.AST) -> Optional[str]:
    """Why summing this operand directly is order-unstable, if it is."""
    why = _unordered_source(node)
    if why is not None:
        return why
    if isinstance(node, ast.Call):
        name = _call_simple_name(node)
        if (
            name in _DICT_VIEW_CALLS
            and isinstance(node.func, ast.Attribute)
            and not node.args
        ):
            return f"a dict .{name}() view"
    return None


def _is_sum_call(node: ast.Call) -> Optional[str]:
    """``sum``/``math.fsum`` spelling when the call is a reduction."""
    if isinstance(node.func, ast.Name) and node.func.id == "sum":
        return "sum"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "fsum"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "math"
    ):
        return "math.fsum"
    if isinstance(node.func, ast.Name) and node.func.id == "fsum":
        return "fsum"
    return None


def _accumulates(body: list) -> Optional[ast.AST]:
    """First order-sensitive accumulation statement in the loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return node
            # The spelled-out form: acc = acc + x  /  acc = x + acc
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Add)
            ):
                target = node.targets[0].id
                for side in (node.value.left, node.value.right):
                    if isinstance(side, ast.Name) and side.id == target:
                        return node
    return None


@register
class FloatAccumulationRule(Rule):
    """``+=`` over unordered iterables makes float sums order-dependent."""

    name = "FLOAT"
    severity = Severity.ERROR
    description = (
        "running additions over sets or unsorted listings in sim/, aqm/ "
        "and metrics/ are order-dependent; sum a sorted sequence "
        "(sum(sorted(...)) or math.fsum(sorted(...))) instead"
    )
    packages = ("sim", "aqm", "metrics")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                why = _unordered_source(node.iter)
                if why is None:
                    continue
                hit = _accumulates(node.body)
                if hit is None:
                    continue
                yield self.finding(
                    source,
                    hit,
                    f"float accumulation inside a loop over {why}: "
                    "IEEE-754 addition is order-dependent, so the sum is "
                    "not reproducible; iterate sorted(...) (or collect "
                    "and math.fsum a sorted sequence) before accumulating",
                )
            elif isinstance(node, ast.Call):
                spelling = _is_sum_call(node)
                if spelling is None or not node.args:
                    continue
                why = _reduction_operand_problem(node.args[0])
                if why is None:
                    continue
                yield self.finding(
                    source,
                    node,
                    f"{spelling}() called directly on {why}: the "
                    "reduction order (and any per-element side effects) "
                    f"follows an unstable iteration; use "
                    f"{spelling}(sorted(...)) instead",
                )
