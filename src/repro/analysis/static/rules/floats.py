"""FLOAT — float accumulation must not depend on an unordered iteration.

IEEE-754 addition is not associative: ``(a + b) + c`` and ``a + (b + c)``
round differently, so a running ``total += x`` over an iterable whose
order is not reproducible (a set, a frozenset, an unsorted directory
listing) yields run-to-run different sums even when the *elements* are
identical.  In this repository every float that reaches a digest must be
bit-stable — the serial/parallel/cache parity gates and the golden
digest tests all hash raw float sums — so an order-dependent
accumulation is a reproducibility bug even when the drift only shows in
the last ulp.

Within ``sim/``, ``aqm/`` and ``metrics/`` the rule flags ``for`` loops
that both

* iterate a provably unordered source — a set or frozenset (literal,
  constructor call, or set comprehension) or an unsorted filesystem
  listing (``glob``/``iglob``/``listdir``/``scandir``/``iterdir``); and
* accumulate with ``+=`` (or the spelled-out ``acc = acc + ...``)
  anywhere in the loop body.

The sanctioned spellings make the order explicit before any addition
happens::

    total = sum(sorted(values))        # one canonical order
    total = math.fsum(sorted(values))  # and exactly rounded, if it matters

Iteration over lists, tuples, ranges and dict views is not flagged —
those have a deterministic (insertion or index) order — and unordered
iteration *without* accumulation stays ORD's concern, not FLOAT's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register

__all__ = ["FloatAccumulationRule"]

#: Constructors producing unordered collections.
_SET_CALLS = frozenset({"set", "frozenset"})

#: Filesystem listings whose order is platform/inode dependent.
_UNSORTED_LISTING_CALLS = frozenset(
    {"glob", "iglob", "listdir", "scandir", "iterdir"}
)


def _call_simple_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _unordered_source(node: ast.AST) -> Optional[str]:
    """A human-readable description of why the iterable is unordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        name = _call_simple_name(node)
        if name in _SET_CALLS:
            return f"a {name}()"
        if name in _UNSORTED_LISTING_CALLS:
            return f"an unsorted {name}() listing"
        if name == "sorted":
            return None  # explicitly ordered — the sanctioned fix
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` etc. between sets; only worth naming when a side is
        # provably a set, otherwise assume ordinary arithmetic.
        for side in (node.left, node.right):
            if _unordered_source(side) is not None:
                return "a set expression"
    return None


def _accumulates(body: list) -> Optional[ast.AST]:
    """First order-sensitive accumulation statement in the loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return node
            # The spelled-out form: acc = acc + x  /  acc = x + acc
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Add)
            ):
                target = node.targets[0].id
                for side in (node.value.left, node.value.right):
                    if isinstance(side, ast.Name) and side.id == target:
                        return node
    return None


@register
class FloatAccumulationRule(Rule):
    """``+=`` over unordered iterables makes float sums order-dependent."""

    name = "FLOAT"
    severity = Severity.ERROR
    description = (
        "running additions over sets or unsorted listings in sim/, aqm/ "
        "and metrics/ are order-dependent; sum a sorted sequence "
        "(sum(sorted(...)) or math.fsum(sorted(...))) instead"
    )
    packages = ("sim", "aqm", "metrics")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            why = _unordered_source(node.iter)
            if why is None:
                continue
            hit = _accumulates(node.body)
            if hit is None:
                continue
            yield self.finding(
                source,
                hit,
                f"float accumulation inside a loop over {why}: IEEE-754 "
                "addition is order-dependent, so the sum is not "
                "reproducible; iterate sorted(...) (or collect and "
                "math.fsum a sorted sequence) before accumulating",
            )
