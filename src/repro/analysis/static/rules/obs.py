"""OBS — tracers observe the simulation; they never steer it.

The observability layer's core guarantee is that a run with a tracer
attached is bit-identical to a run without one (``repro bench`` gates
this dynamically via ``matches_untraced``).  That only holds if
instrumented code treats the tracer as a write-only sink: events flow
*into* it, nothing flows back out into simulation state.  This rule
rejects the two statically decidable ways the arrow can reverse inside
the simulation packages:

* a **tracer call whose result is used** — assigned, returned, passed
  as an argument, or tested in a condition.  ``tracer.emit(...)`` as a
  bare statement is the only sanctioned shape; anything consuming a
  tracer call's value creates a channel from the observer back into the
  observed.  (Capability checks like ``tracer.wants(...)`` belong in
  :mod:`repro.obs.trace` helpers such as ``engine_tracer`` /
  ``install_aqm_tracer``, which this rule does not scan.)
* a **tracer expression inside a scheduling call** — a tracer (or any
  attribute of one) appearing among the arguments of ``schedule`` /
  ``at`` / ``at_reserved`` / ``stream_schedule`` / ``every`` /
  ``advance_to`` would let the observer inject events or timing into
  the engine.

The rule keys on name *segments*: any pure attribute chain containing a
``tracer`` or ``_tracer`` component is treated as a tracer reference,
so ``self._tracer.emit``, a local ``tracer``, and ``foo.tracer.bar``
are all covered.  Dynamic shapes (``get_tracer().emit``) resolve to no
chain and are skipped — as everywhere in this suite, false negatives
beat noise.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register
from repro.analysis.static.rules.common import attr_chain
from repro.analysis.static.rules.sched import _SCHEDULING_METHODS

__all__ = ["ObservabilityRule"]

#: Attribute-chain segments that mark an expression as a tracer reference.
_TRACER_SEGMENTS = frozenset({"tracer", "_tracer"})


def _is_tracer_chain(chain: Optional[Tuple[str, ...]]) -> bool:
    """True when a resolved attribute chain references a tracer."""
    return chain is not None and any(
        segment in _TRACER_SEGMENTS for segment in chain
    )


def _tracer_reference(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """First tracer-referencing chain found anywhere inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Attribute, ast.Name)):
            chain = attr_chain(sub)
            if _is_tracer_chain(chain):
                return chain
    return None


@register
class ObservabilityRule(Rule):
    """Tracer calls are write-only; tracers never reach the scheduler."""

    name = "OBS"
    severity = Severity.ERROR
    description = (
        "tracers observe, never steer: tracer call results must not be "
        "consumed, and tracer expressions must not appear in scheduling "
        "arguments"
    )
    packages = ("sim", "net", "aqm", "tcp", "core", "harness", "traffic")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        tree = source.tree
        assert tree is not None  # framework guarantees a parsed module
        # Calls appearing as bare expression statements — the sanctioned
        # fire-and-forget shape whose result is provably discarded.
        bare_statements = {
            id(stmt.value)
            for stmt in ast.walk(tree)
            if isinstance(stmt, ast.Expr)
        }
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if _is_tracer_chain(chain) and id(node) not in bare_statements:
                yield self.finding(
                    source,
                    node,
                    f"result of tracer call {'.'.join(chain or ())}() is "
                    "consumed — tracers are write-only observers; emit as "
                    "a bare statement and keep capability checks inside "
                    "repro.obs",
                )
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULING_METHODS
            ):
                arguments = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
                for argument in arguments:
                    reference = _tracer_reference(argument)
                    if reference is not None:
                        yield self.finding(
                            source,
                            argument,
                            f"tracer expression {'.'.join(reference)} "
                            f"passed into {node.func.attr}() — observers "
                            "must never schedule or alter engine timing",
                        )
