"""ORD — iteration order must be deterministic.

Two classes of silent reproducibility breakage:

* **Set iteration** — ``for x in some_set`` (or a comprehension over
  one) visits elements in hash-table order, which depends on the exact
  insertion/deletion history and, for strings, on ``PYTHONHASHSEED``.
  If anything order-sensitive (event scheduling, probability draws,
  report rows) happens inside the loop, two runs of the same seed can
  diverge.  Order-insensitive reductions (``len``/``sum``/``min``/
  ``max``/membership) are fine and not flagged; iteration must go
  through ``sorted(...)``.
* **Filesystem listings** — ``os.listdir``, ``glob``, ``Path.glob`` /
  ``rglob`` / ``iterdir`` and ``os.scandir`` return entries in
  filesystem order, which differs across machines and runs.  Iterating
  them unsorted makes cache scans and sweep discovery
  platform-dependent.

Dict iteration is deliberately *not* flagged: Python dicts are
insertion-ordered, so a dict filled deterministically iterates
deterministically (see docs/STATIC_ANALYSIS.md).

Set-typedness is established within the file: set literals, ``set()`` /
``frozenset()`` calls, set comprehensions, and names or ``self.``
attributes annotated or assigned as sets anywhere in the module.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.static.core import Finding, Rule, Severity, SourceFile, register
from repro.analysis.static.rules.common import attr_chain, is_name_call

__all__ = ["OrderingRule"]

_LISTING_BARE = frozenset(
    {("os", "listdir"), ("os", "scandir"), ("glob", "glob"), ("glob", "iglob")}
)
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Is this expression statically known to be a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        chain = attr_chain(node)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            return f"self.{chain[1]}" in set_names
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    """``set[...]`` / ``Set[...]`` / ``frozenset[...]`` annotations."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet")
    return False


def _collect_set_names(tree: ast.Module) -> Set[str]:
    """Names/attributes assigned or annotated as sets anywhere in the file."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
            target = node.target
        elif isinstance(node, ast.Assign) and _is_set_expr(node.value, set()):
            if len(node.targets) == 1:
                target = node.targets[0]
        if target is None:
            continue
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                names.add(f"self.{chain[1]}")
    return names


def _is_listing_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attr_chain(node.func)
    if chain is None:
        # e.g. Path('.').iterdir() — the receiver is itself a call, so no
        # pure name chain exists; the method name alone is distinctive.
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
        )
    if len(chain) >= 2 and chain[-2:] in _LISTING_BARE:
        return True
    return len(chain) >= 2 and chain[-1] in _LISTING_METHODS


@register
class OrderingRule(Rule):
    """No iteration over sets or unsorted filesystem listings."""

    name = "ORD"
    severity = Severity.ERROR
    description = (
        "no for-loops/comprehensions over sets or unsorted "
        "os.listdir/glob/iterdir results; wrap in sorted(...)"
    )
    packages = ("sim", "net", "aqm", "tcp", "core", "harness", "traffic", "metrics")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        set_names = _collect_set_names(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(source, node.iter, set_names)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iter(source, generator.iter, set_names)
            elif isinstance(node, ast.Call):
                yield from self._check_set_pop(source, node, set_names)

    def _check_iter(
        self, source: SourceFile, iter_node: ast.AST, set_names: Set[str]
    ) -> Iterator[Finding]:
        if is_name_call(iter_node, "sorted"):
            return
        if _is_set_expr(iter_node, set_names):
            yield self.finding(
                source,
                iter_node,
                "iteration over a set visits elements in hash order; wrap "
                "in sorted(...) (order-insensitive reductions like len/min/"
                "max/membership are fine without iteration)",
            )
        elif _is_listing_call(iter_node):
            chain = attr_chain(iter_node.func)
            name = ".".join(chain) if chain else "listing"
            yield self.finding(
                source,
                iter_node,
                f"{name}() yields entries in filesystem order, which varies "
                "across hosts/runs; wrap the call in sorted(...)",
            )

    def _check_set_pop(
        self, source: SourceFile, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        """``known_set.pop()`` removes an arbitrary (hash-order) element."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and _is_set_expr(func.value, set_names)
        ):
            yield self.finding(
                source,
                node,
                "set.pop() removes an arbitrary element (hash order); "
                "compute the element deterministically (e.g. min/max) and "
                "use .remove()",
            )
