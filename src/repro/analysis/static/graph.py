"""Pass 1 of the two-pass analyzer: project symbol table and call graph.

The original seven lint rules see one file and one expression at a time,
so a wall-clock value or a unit mixup that crosses a function boundary
before reaching ``schedule()`` or a probability write is invisible to
them.  This module builds the project-wide picture the interprocedural
rules (``TAINT``, ``UNIT``) run over:

* :class:`ModuleInfo` — one module's import table, top-level functions
  and classes;
* :class:`FunctionInfo` — one function/method: parameters, annotation
  strings, decorators and the resolved call sites inside its body;
* :class:`ClassInfo` — one class: bases, methods, attribute annotations
  and the inferred classes of ``self.<attr>`` instances, with linearised
  method resolution over the known hierarchy (``Simulator``, ``AQM``,
  ``Link``, …);
* :class:`ProjectIndex` — the whole project: qualified-name lookup,
  call-site resolution (bare names, import aliases, ``self.`` methods,
  annotated-parameter receivers, ``self.<attr>.<method>`` through
  inferred attribute classes), the caller→callee call graph and its
  reverse, and the file-level dependency closure the incremental runner
  uses to decide which files a change can affect.

Resolution is deliberately *best-effort and sound-for-silence*: a call
the index cannot resolve statically maps to ``None`` and the rules treat
it as "unknown, don't flag" — the same convention the per-file rules
follow.  Cycles (mutually recursive calls, or even cyclic class bases in
broken input) terminate: every recursive walk carries a visited set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.static.core import SourceFile
from repro.analysis.static.rules.common import attr_chain

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
]


def module_name_for(source: SourceFile) -> str:
    """Dotted module name for a file (``repro.aqm.pi``).

    Inferred from the last ``repro`` path component, mirroring
    :meth:`SourceFile._infer_package`; files outside any ``repro`` tree
    (single-file fixtures) use their stem so they still index cleanly.
    """
    parts = source.path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            tail = [p for p in parts[index + 1:]]
            if not tail:
                return "repro"
            tail[-1] = tail[-1][:-3] if tail[-1].endswith(".py") else tail[-1]
            if tail[-1] == "__init__":
                tail = tail[:-1]
            return ".".join(["repro"] + tail)
    stem = source.path.stem
    return stem if stem != "__init__" else source.path.parent.name


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Resolved callee qualname (``repro.aqm.pi.PIController.update``) or
    #: None when the target is dynamic/unknown.
    callee: Optional[str]


class FunctionInfo:
    """One function or method and what pass-2 rules need to know about it."""

    def __init__(
        self,
        qualname: str,
        module: str,
        node: ast.AST,
        source: SourceFile,
        class_name: Optional[str] = None,
    ):
        self.qualname = qualname
        self.module = module
        self.node = node
        self.source = source
        self.class_name = class_name
        args = node.args
        self.params: List[str] = [a.arg for a in args.posonlyargs + args.args]
        self.kwonly: List[str] = [a.arg for a in args.kwonlyargs]
        self.param_annotations: Dict[str, str] = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            name = _annotation_name(a.annotation)
            if name is not None:
                self.param_annotations[a.arg] = name
        self.return_annotation: Optional[str] = _annotation_name(node.returns)
        self.decorators: List[str] = [
            name for name in (_decorator_name(d) for d in node.decorator_list)
            if name is not None
        ]
        self.is_method = class_name is not None
        self.is_property = "property" in self.decorators or any(
            d.endswith(".setter") or d.endswith(".getter") for d in self.decorators
        )
        self.is_static = "staticmethod" in self.decorators
        #: Filled by :meth:`ProjectIndex._resolve_calls` (pass 1b).
        self.calls: List[CallSite] = []

    def positional_param(self, index: int) -> Optional[str]:
        """Name of positional parameter ``index`` as a *caller* counts them
        (``self``/``cls`` excluded for bound methods)."""
        params = self.params
        if self.is_method and not self.is_static and params:
            params = params[1:]
        return params[index] if 0 <= index < len(params) else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.qualname} calls={len(self.calls)}>"


class ClassInfo:
    """One class: bases, methods and attribute typing/annotation facts."""

    def __init__(self, qualname: str, module: str, node: ast.ClassDef,
                 source: SourceFile):
        self.qualname = qualname
        self.name = node.name
        self.module = module
        self.node = node
        self.source = source
        #: Raw base expressions as dotted strings (unresolved).
        self.bases: List[str] = [
            ".".join(chain) for chain in
            (attr_chain(b) for b in node.bases) if chain is not None
        ]
        self.methods: Dict[str, FunctionInfo] = {}
        #: ``attr name -> annotation name`` from class-body/``__init__``
        #: ``AnnAssign`` statements (``self.x: Seconds = ...``).
        self.attr_annotations: Dict[str, str] = {}
        #: ``attr name -> class qualname`` inferred from ``self.x = Ctor(...)``
        #: in ``__init__`` — filled by :meth:`ProjectIndex._infer_attr_classes`.
        self.attr_classes: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.qualname} bases={self.bases}>"


class ModuleInfo:
    """One module: imports, top-level functions, classes."""

    def __init__(self, name: str, source: SourceFile):
        self.name = name
        self.source = source
        #: local alias -> dotted target ("eng" -> "repro.sim.engine",
        #: "clamp_unit" -> "repro.aqm.base.clamp_unit").
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Module-level ``NAME: Unit = ...`` annotations.
        self.constant_annotations: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ModuleInfo {self.name}>"


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Flat name of an annotation expression (``Seconds``, ``"Simulator"``).

    Strips ``Optional[X]`` / quoted forward references down to the bare
    name; anything more structured returns None ("unknown").
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base in ("Optional",):
            return _annotation_name(node.slice)
        return base
    return None


def _decorator_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    chain = attr_chain(node)
    return ".".join(chain) if chain else None


class ProjectIndex:
    """Symbol table + call graph over a set of :class:`SourceFile`\\ s."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> set of resolved callee qualnames.
        self.call_graph: Dict[str, Set[str]] = {}
        #: callee qualname -> set of caller qualnames.
        self.reverse_call_graph: Dict[str, Set[str]] = {}
        #: module -> modules it imports or calls into.
        self.module_deps: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "ProjectIndex":
        """Two sub-passes: collect defs/imports, then resolve call sites."""
        index = cls()
        ordered = [s for s in sources if s.tree is not None]
        for source in ordered:
            index._collect_module(source)
        for module in index.modules.values():
            index._infer_attr_classes(module)
        for module in index.modules.values():
            index._resolve_calls(module)
        return index

    def _collect_module(self, source: SourceFile) -> None:
        module = ModuleInfo(module_name_for(source), source)
        # Last writer wins on duplicate module names (fixture trees); the
        # real tree has unique names.
        self.modules[module.name] = module
        for stmt in source.tree.body:
            self._collect_stmt(module, stmt)

    def _collect_stmt(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = self._import_base(module, stmt)
            if base is not None:
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                f"{module.name}.{stmt.name}", module.name, stmt, module.source
            )
            module.functions[stmt.name] = info
            self.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            self._collect_class(module, stmt)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = _annotation_name(stmt.annotation)
            if name is not None:
                module.constant_annotations[stmt.target.id] = name
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and optional-import try blocks still
            # contribute imports/defs.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._collect_stmt(module, sub)

    @staticmethod
    def _import_base(module: ModuleInfo, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        # Relative import: resolve against the importing module's package.
        parts = module.name.split(".")
        if stmt.level > len(parts):
            return None
        base_parts = parts[: len(parts) - stmt.level]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts) if base_parts else None

    def _collect_class(self, module: ModuleInfo, stmt: ast.ClassDef) -> None:
        info = ClassInfo(
            f"{module.name}.{stmt.name}", module.name, stmt, module.source
        )
        module.classes[stmt.name] = info
        self.classes[info.qualname] = info
        for item in stmt.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    f"{info.qualname}.{item.name}",
                    module.name,
                    item,
                    module.source,
                    class_name=stmt.name,
                )
                info.methods[item.name] = method
                self.functions[method.qualname] = method
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                name = _annotation_name(item.annotation)
                if name is not None:
                    info.attr_annotations[item.target.id] = name
        # ``self.x: Unit = ...`` / ``self.x = <param>`` facts from __init__.
        init = info.methods.get("__init__")
        if init is not None:
            for node in ast.walk(init.node):
                if isinstance(node, ast.AnnAssign):
                    chain = attr_chain(node.target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        name = _annotation_name(node.annotation)
                        if name is not None:
                            info.attr_annotations.setdefault(chain[1], name)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    chain = attr_chain(node.targets[0])
                    if (
                        chain
                        and len(chain) == 2
                        and chain[0] == "self"
                        and isinstance(node.value, ast.Name)
                    ):
                        # self.x = <param annotated with a unit>
                        annot = init.param_annotations.get(node.value.id)
                        if annot is not None:
                            info.attr_annotations.setdefault(chain[1], annot)

    def _infer_attr_classes(self, module: ModuleInfo) -> None:
        """``self.x = Ctor(...)`` in ``__init__`` types ``self.x`` as Ctor."""
        for cls in module.classes.values():
            init = cls.methods.get("__init__")
            if init is None:
                continue
            for node in ast.walk(init.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                chain = attr_chain(node.targets[0])
                if not (chain and len(chain) == 2 and chain[0] == "self"):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                target = self._resolve_chain(module, attr_chain(node.value.func))
                if target is not None and target in self.classes:
                    cls.attr_classes.setdefault(chain[1], target)

    # -- resolution --------------------------------------------------------
    def _resolve_chain(
        self, module: ModuleInfo, chain: Optional[Tuple[str, ...]]
    ) -> Optional[str]:
        """Resolve a dotted name in module scope to a known qualname."""
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        candidates = []
        if head in module.imports:
            candidates.append(".".join((module.imports[head],) + rest))
        if head in module.functions or head in module.classes:
            candidates.append(".".join((f"{module.name}.{head}",) + rest))
        candidates.append(".".join(chain))  # already fully qualified?
        for candidate in candidates:
            resolved = self._lookup(candidate)
            if resolved is not None:
                return resolved
        return None

    def _lookup(self, qualname: str) -> Optional[str]:
        """Exact qualname lookup, following one re-export hop."""
        if qualname in self.functions or qualname in self.classes:
            return qualname
        # ``from repro.aqm.pi import PIController`` re-exported through a
        # package __init__: "repro.aqm.PIController" -> follow the
        # package module's own import table once.
        head, _, tail = qualname.rpartition(".")
        package = self.modules.get(head)
        if package is not None and tail in package.imports:
            target = package.imports[tail]
            if target != qualname and (
                target in self.functions or target in self.classes
            ):
                return target
        return None

    def resolve_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Find ``method`` on a class or its bases (left-to-right, DFS)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method].qualname
            module = self.modules.get(cls.module)
            for base in cls.bases:
                resolved = (
                    self._resolve_chain(module, tuple(base.split(".")))
                    if module is not None
                    else None
                )
                if resolved is not None:
                    stack.append(resolved)
        return None

    def mro(self, class_qualname: str) -> List[str]:
        """Known ancestors of a class (itself first; cycle-safe)."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            out.append(current)
            module = self.modules.get(cls.module)
            for base in cls.bases:
                resolved = (
                    self._resolve_chain(module, tuple(base.split(".")))
                    if module is not None
                    else None
                )
                if resolved is not None:
                    stack.append(resolved)
        return out

    def attr_annotation(self, class_qualname: str, attr: str) -> Optional[str]:
        """Annotation recorded for ``self.<attr>`` anywhere in the MRO."""
        for ancestor in self.mro(class_qualname):
            cls = self.classes[ancestor]
            if attr in cls.attr_annotations:
                return cls.attr_annotations[attr]
        return None

    def attr_class(self, class_qualname: str, attr: str) -> Optional[str]:
        """Inferred class of ``self.<attr>`` anywhere in the MRO."""
        for ancestor in self.mro(class_qualname):
            cls = self.classes[ancestor]
            if attr in cls.attr_classes:
                return cls.attr_classes[attr]
        return None

    def _resolve_calls(self, module: ModuleInfo) -> None:
        for func in list(module.functions.values()):
            self._resolve_function_calls(module, func, enclosing_class=None)
        for cls in module.classes.values():
            for method in cls.methods.values():
                self._resolve_function_calls(module, method, enclosing_class=cls)

    def _resolve_function_calls(
        self,
        module: ModuleInfo,
        func: FunctionInfo,
        enclosing_class: Optional[ClassInfo],
    ) -> None:
        # Local variable -> class qualname, from ``x = Ctor(...)`` and
        # from class-annotated parameters (``def f(sim: Simulator)``).
        local_classes: Dict[str, str] = {}
        for param, annot in func.param_annotations.items():
            resolved = self._resolve_chain(module, (annot,))
            if resolved is not None and resolved in self.classes:
                local_classes[param] = resolved
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Call
                ):
                    resolved = self._resolve_chain(
                        module, attr_chain(node.value.func)
                    )
                    if resolved is not None and resolved in self.classes:
                        local_classes[target.id] = resolved
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                callee = self._resolve_call(
                    module, func, enclosing_class, local_classes, node
                )
                func.calls.append(CallSite(node=node, callee=callee))
                if callee is not None:
                    self.call_graph.setdefault(func.qualname, set()).add(callee)
                    self.reverse_call_graph.setdefault(callee, set()).add(
                        func.qualname
                    )
                    callee_info = self.functions.get(callee) or self.classes.get(
                        callee
                    )
                    if callee_info is not None:
                        self.module_deps.setdefault(module.name, set()).add(
                            callee_info.module
                        )
        # Imports are dependencies even without a resolved call.
        deps = self.module_deps.setdefault(module.name, set())
        for target in module.imports.values():
            dep = target
            while dep:
                if dep in self.modules:
                    deps.add(dep)
                    break
                dep, _, _ = dep.rpartition(".")

    def _resolve_call(
        self,
        module: ModuleInfo,
        func: FunctionInfo,
        enclosing_class: Optional[ClassInfo],
        local_classes: Dict[str, str],
        node: ast.Call,
    ) -> Optional[str]:
        chain = attr_chain(node.func)
        if chain is None:
            # ``Ctor(...).method(...)`` — resolve through the ctor's class.
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Call
            ):
                inner = self._resolve_chain(
                    module, attr_chain(node.func.value.func)
                )
                if inner is not None and inner in self.classes:
                    return self.resolve_method(inner, node.func.attr)
            return None
        if len(chain) == 1:
            resolved = self._resolve_chain(module, chain)
            if resolved in self.classes:
                # A constructor call: resolve to __init__ when known.
                init = self.resolve_method(resolved, "__init__")
                return init or resolved
            return resolved
        head = chain[0]
        receiver_class: Optional[str] = None
        if head == "self" and enclosing_class is not None:
            if len(chain) == 2:
                return self.resolve_method(enclosing_class.qualname, chain[1])
            # self.<attr>.<method>: type the attribute, then resolve.
            attr_cls = self.attr_class(enclosing_class.qualname, chain[1])
            if attr_cls is not None and len(chain) == 3:
                return self.resolve_method(attr_cls, chain[2])
            return None
        if head in local_classes:
            receiver_class = local_classes[head]
        if receiver_class is not None and len(chain) == 2:
            return self.resolve_method(receiver_class, chain[1])
        return self._resolve_chain(module, chain)

    # -- file-level dependency view ---------------------------------------
    def file_of_module(self, module: str) -> Optional[str]:
        info = self.modules.get(module)
        return info.source.display_path if info is not None else None

    def dependents_of(self, display_paths: Iterable[str]) -> Set[str]:
        """Transitive closure of files whose analysis a change can affect.

        ``A`` depends on ``B`` when ``A`` imports ``B`` or calls into it;
        the closure of *reverse* dependencies of the changed files is
        exactly the set whose TAINT/UNIT findings can change (their
        callee summaries or annotations may differ).  The changed files
        themselves are included.
        """
        path_to_module = {
            info.source.display_path: name for name, info in self.modules.items()
        }
        reverse: Dict[str, Set[str]] = {}
        for mod, deps in self.module_deps.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(mod)
        dirty_modules: Set[str] = set()
        queue = [
            path_to_module[p] for p in display_paths if p in path_to_module
        ]
        while queue:
            mod = queue.pop()
            if mod in dirty_modules:
                continue
            dirty_modules.add(mod)
            queue.extend(reverse.get(mod, ()))
        out = set(display_paths)
        for mod in dirty_modules:
            path = self.file_of_module(mod)
            if path is not None:
                out.add(path)
        return out

    def functions_in(self, display_path: str) -> List[FunctionInfo]:
        """Every indexed function whose body lives in ``display_path``."""
        return [
            info
            for info in self.functions.values()
            if info.source.display_path == display_path
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ProjectIndex modules={len(self.modules)} "
            f"functions={len(self.functions)} classes={len(self.classes)}>"
        )
