"""Domain-aware static analysis (``repro check``).

AST-level lints for the invariants the reproduction's bit-exact
determinism rests on — seeded randomness (DET), deterministic iteration
(ORD), probability domain safety (PROB), virtual-time scheduling
(SCHED) and process-pool picklability (PICKLE) — plus the framework to
write more.  See docs/STATIC_ANALYSIS.md for the rule catalogue,
suppression syntax (``# repro: allow[RULE] justification``) and the
guide to adding a rule.
"""

from repro.analysis.static.core import (
    RULES,
    Finding,
    Rule,
    Severity,
    SourceFile,
    check_source,
    register,
)
from repro.analysis.static.runner import (
    JSON_SCHEMA_VERSION,
    Report,
    analyze_paths,
    default_target,
    run_check,
)

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "Severity",
    "SourceFile",
    "check_source",
    "register",
    "JSON_SCHEMA_VERSION",
    "Report",
    "analyze_paths",
    "default_target",
    "run_check",
]
