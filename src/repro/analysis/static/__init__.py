"""Domain-aware static analysis (``repro check``).

AST-level lints for the invariants the reproduction's bit-exact
determinism rests on — seeded randomness (DET), deterministic iteration
(ORD), probability domain safety (PROB), virtual-time scheduling
(SCHED), process-pool picklability (PICKLE), order-stable float sums
(FLOAT) and write-only tracers (OBS) — plus two *project-wide* pass-2
rules over the symbol table/call graph in
:mod:`repro.analysis.static.graph`: interprocedural nondeterminism
taint (TAINT) and annotation-driven dimensional analysis (UNIT).  See
docs/STATIC_ANALYSIS.md for the rule catalogue, suppression syntax
(``# repro: allow[RULE] justification``), the findings-baseline ratchet
and the guide to adding a rule.
"""

from repro.analysis.static.core import (
    RULES,
    Finding,
    ProjectRule,
    Rule,
    Severity,
    SourceFile,
    check_source,
    register,
)
from repro.analysis.static.graph import ProjectIndex
from repro.analysis.static.runner import (
    JSON_SCHEMA_VERSION,
    Report,
    analyze_paths,
    apply_baseline,
    default_target,
    load_baseline,
    run_check,
    to_sarif,
)

__all__ = [
    "RULES",
    "Finding",
    "ProjectRule",
    "Rule",
    "Severity",
    "SourceFile",
    "check_source",
    "register",
    "ProjectIndex",
    "JSON_SCHEMA_VERSION",
    "Report",
    "analyze_paths",
    "apply_baseline",
    "default_target",
    "load_baseline",
    "run_check",
    "to_sarif",
]
