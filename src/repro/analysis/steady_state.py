"""Steady-state throughput laws — Appendix A, equations (1)–(14).

These closed forms are both an analysis tool and a test oracle: the
integration tests drive the packet-level TCP models against a fixed
marking probability and check the measured windows against these laws.

Notation: ``W`` is the steady-state window in segments, ``p`` the
congestion-signal (drop or mark) probability, ``R`` the RTT in seconds.
"""

from __future__ import annotations

import math

__all__ = [
    "signals_per_rtt",
    "scalability_exponent",
    "is_scalable",
    "B_RENO",
    "B_CRENO",
    "B_CUBIC",
    "B_DCTCP_PROB",
    "B_DCTCP_STEP",
    "window_reno",
    "window_creno",
    "window_cubic",
    "window_dctcp",
    "window_dctcp_step",
    "p_for_window_reno",
    "p_for_window_creno",
    "p_for_window_dctcp",
    "cubic_operates_as_creno",
    "coupled_classic_probability",
    "k_analytic",
    "throughput_bps",
    "window_for_rate",
]

# --------------------------------------------------------------------------
# Scalability (Section 2, equations (1)–(3))
# --------------------------------------------------------------------------

#: Characteristic exponents B of W ∝ 1/p^B (equation (2) / Appendix A).
B_RENO = 0.5
B_CRENO = 0.5
B_CUBIC = 0.75
B_DCTCP_PROB = 1.0
B_DCTCP_STEP = 2.0


def signals_per_rtt(window: float, p: float) -> float:
    """Equation (1): congestion signals per round trip, c = p·W."""
    if window <= 0:
        raise ValueError(f"window must be positive (got {window})")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0,1] (got {p})")
    return p * window


def scalability_exponent(b: float) -> float:
    """Equation (3)'s exponent: c ∝ W^(1−1/B)."""
    if b <= 0:
        raise ValueError(f"B must be positive (got {b})")
    return 1.0 - 1.0 / b


def is_scalable(b: float) -> bool:
    """Section 2's criterion: scalable iff B ≥ 1 (signals per RTT do not
    shrink as the flow rate scales up)."""
    return b >= 1.0


# --------------------------------------------------------------------------
# Window laws (equations (5)–(12))
# --------------------------------------------------------------------------

def _check_p(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ValueError(f"probability must be in (0,1] (got {p})")


def window_reno(p: float) -> float:
    """Equation (5): W = 1.22/√p (Mathis et al. [25])."""
    _check_p(p)
    return 1.22 / math.sqrt(p)


def window_creno(p: float) -> float:
    """Equation (7): W = 1.68/√p — Cubic in its Reno mode (β = 0.7).

    The constant follows from AIMD analysis with decrease factor β:
    W = sqrt( (1+β)/(2(1−β)) · 2 ) /√p ⇒ 1.68 for β = 0.7.
    """
    _check_p(p)
    return 1.68 / math.sqrt(p)


def window_cubic(p: float, rtt: float) -> float:
    """Equation (6): W = 1.17·R^¾ / p^¾ (pure Cubic region, Ha et al. [16])."""
    _check_p(p)
    if rtt <= 0:
        raise ValueError(f"RTT must be positive (got {rtt})")
    return 1.17 * rtt ** 0.75 / p ** 0.75


def window_dctcp(p: float) -> float:
    """Equation (11): W = 2/p — DCTCP under *probabilistic* marking.

    Derived in Appendix A from the per-RTT balance: increase of one
    segment per RTT versus decrease W·(p/2) per RTT.
    """
    _check_p(p)
    return 2.0 / p


def window_dctcp_step(p: float) -> float:
    """Equation (12): W = 2/p² — DCTCP against a *step* (on-off) marker,
    the law the original DCTCP paper [2] derives."""
    _check_p(p)
    return 2.0 / (p * p)


# --------------------------------------------------------------------------
# Inverses (signal probability required for a given window)
# --------------------------------------------------------------------------

def _check_w(window: float) -> None:
    if window <= 0:
        raise ValueError(f"window must be positive (got {window})")


def p_for_window_reno(window: float) -> float:
    _check_w(window)
    return (1.22 / window) ** 2


def p_for_window_creno(window: float) -> float:
    _check_w(window)
    return (1.68 / window) ** 2


def p_for_window_dctcp(window: float) -> float:
    _check_w(window)
    return 2.0 / window


# --------------------------------------------------------------------------
# Cubic's CReno switch-over (equation (8))
# --------------------------------------------------------------------------

def cubic_operates_as_creno(window: float, rtt: float) -> bool:
    """Equation (8): Cubic behaves as CReno while W·R^{3/2} < 3.5.

    ``rtt`` in seconds.  Above the threshold the pure-cubic window (6)
    takes over.
    """
    _check_w(window)
    if rtt <= 0:
        raise ValueError(f"RTT must be positive (got {rtt})")
    return window * rtt ** 1.5 < 3.5


# --------------------------------------------------------------------------
# Coupling for equal steady-state rate (equations (13)–(14))
# --------------------------------------------------------------------------

def k_analytic() -> float:
    """Equation (14)'s analytic coupling factor k = 2/1.68 ≈ 1.19."""
    return 2.0 / 1.68


def coupled_classic_probability(p_dctcp: float, k: float | None = None) -> float:
    """Equation (14): p_creno = (p_dctcp / k)² for equal flow rates.

    Defaults to the analytic k ≈ 1.19; the paper deploys k = 2.
    """
    _check_p(p_dctcp)
    k = k_analytic() if k is None else k
    if k <= 0:
        raise ValueError(f"k must be positive (got {k})")
    return (p_dctcp / k) ** 2


# --------------------------------------------------------------------------
# Rates
# --------------------------------------------------------------------------

def throughput_bps(window: float, rtt: float, mss_bytes: int = 1448) -> float:
    """Flow throughput for a steady window: W·MSS·8/R bits per second."""
    _check_w(window)
    if rtt <= 0:
        raise ValueError(f"RTT must be positive (got {rtt})")
    return window * mss_bytes * 8.0 / rtt


def window_for_rate(rate_bps: float, rtt: float, mss_bytes: int = 1448) -> float:
    """Window needed to sustain ``rate_bps`` at RTT ``rtt``."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive (got {rate_bps})")
    if rtt <= 0:
        raise ValueError(f"RTT must be positive (got {rtt})")
    return rate_bps * rtt / (mss_bytes * 8.0)
