"""Control-theoretic substrate: Appendix A laws and Appendix B fluid model."""

from repro.analysis.bode import (
    Margins,
    margin_sweep,
    margins_from_loop,
    margins_reno_pi,
    margins_reno_pi2,
    margins_reno_pie,
    margins_scal_pi,
)
from repro.analysis.fluid import (
    PAPER_PI2_GAINS,
    PAPER_PIE_GAINS,
    PAPER_SCAL_GAINS,
    AqmTransfer,
    PiGains,
    loop_reno_p,
    loop_reno_p2,
    loop_scal_p,
)
from repro.analysis import steady_state
from repro.analysis.timedomain import FluidResult, FluidScenario, simulate_fluid

__all__ = [
    "steady_state",
    "FluidScenario",
    "FluidResult",
    "simulate_fluid",
    "PiGains",
    "AqmTransfer",
    "loop_reno_p",
    "loop_reno_p2",
    "loop_scal_p",
    "PAPER_PIE_GAINS",
    "PAPER_PI2_GAINS",
    "PAPER_SCAL_GAINS",
    "Margins",
    "margins_from_loop",
    "margins_reno_pie",
    "margins_reno_pi",
    "margins_reno_pi2",
    "margins_scal_pi",
    "margin_sweep",
]
