"""Fluid-model transfer functions — Appendix B, equations (15)–(37).

Implements the linearized loop transfer functions of the paper's stability
analysis (following Misra et al. [26] and Hollot et al. [19]) for the three
controller/plant combinations:

* ``loop_reno_p``   — Reno controlled by a *direct* probability p
  (equation (35)); with PIE's auto-tuned gains this gives the 'reno pie'
  margins of Figure 7 and, with fixed gains, the diagonal margins of
  Figure 4.
* ``loop_reno_p2``  — Reno controlled by a squared pseudo-probability
  p = p'² (equation (36)); the 'reno pi2' curves.
* ``loop_scal_p``   — a Scalable control (half-packet reduction per mark)
  on the linear PI output (equation (37)); the 'scal pi' curves.

The AQM (PI controller + queue) transfer function is equation (31):

    A(s) = κ_A (s/z_A + 1) / (W₀ s (s/s_A + 1)),
    κ_A = αR₀/T,  z_A = α/(T(β+α/2)),  s_A = 1/R₀,

and the plant gains/poles (below equation (34)):

    κ_S = 1/p₀′,  s_S = p₀′/(2R₀),  κ_R = κ_S/2 = 1/(2p₀),
    s_R = √2·p₀′/R₀ = √(2p₀)/R₀ = √8·s_S.

W₀ cancels between plant and AQM, so the loop depends only on
(p₀ or p₀′, R₀, α, β, T).  All functions take ``s`` as a complex scalar or
numpy array and vectorize transparently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PiGains",
    "AqmTransfer",
    "loop_reno_p",
    "loop_reno_p2",
    "loop_scal_p",
    "PAPER_PIE_GAINS",
    "PAPER_PI2_GAINS",
    "PAPER_SCAL_GAINS",
]


@dataclass(frozen=True)
class PiGains:
    """PI controller parameters: gains in Hz and update interval T in s."""

    alpha: float
    beta: float
    t_update: float = 0.032

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(
                f"gains must be positive (got alpha={self.alpha}, beta={self.beta})"
            )
        if self.t_update <= 0:
            raise ValueError(f"T must be positive (got {self.t_update})")

    def scaled(self, factor: float) -> "PiGains":
        """Gains multiplied by ``factor`` (PIE's tune scaling)."""
        return PiGains(self.alpha * factor, self.beta * factor, self.t_update)


#: The paper's parameter sets (Figure 7 caption).
PAPER_PIE_GAINS = PiGains(alpha=0.125, beta=1.25)
PAPER_PI2_GAINS = PiGains(alpha=0.3125, beta=3.125)
PAPER_SCAL_GAINS = PiGains(alpha=0.625, beta=6.25)


@dataclass(frozen=True)
class AqmTransfer:
    """Equation (31)'s AQM block, sans the 1/W₀ that cancels in the loop."""

    gains: PiGains
    r0: float

    def __post_init__(self) -> None:
        if self.r0 <= 0:
            raise ValueError(f"R0 must be positive (got {self.r0})")

    @property
    def kappa_a(self) -> float:
        return self.gains.alpha * self.r0 / self.gains.t_update

    @property
    def z_a(self) -> float:
        g = self.gains
        return g.alpha / (g.t_update * (g.beta + g.alpha / 2.0))

    @property
    def s_a(self) -> float:
        return 1.0 / self.r0

    def numerator(self, s: np.ndarray) -> np.ndarray:
        """κ_A (s/z_A + 1) — shared by all three loop functions."""
        return self.kappa_a * (s / self.z_a + 1.0)

    def pole_terms(self, s: np.ndarray) -> np.ndarray:
        """(s/s_A + 1)·s — the AQM denominator shared by the loops."""
        return (s / self.s_a + 1.0) * s


def _plant_constants(p_prime: float, r0: float) -> tuple[float, float, float, float]:
    """κ_S, s_S, κ_R, s_R from a scalable-space operating point p₀′."""
    if not 0.0 < p_prime <= 1.0:
        raise ValueError(f"operating point p' must be in (0,1] (got {p_prime})")
    if r0 <= 0:
        raise ValueError(f"R0 must be positive (got {r0})")
    kappa_s = 1.0 / p_prime
    s_s = p_prime / (2.0 * r0)
    kappa_r = kappa_s / 2.0
    s_r = math.sqrt(2.0) * p_prime / r0
    return kappa_s, s_s, kappa_r, s_r


def loop_reno_p(s: np.ndarray, p0: float, r0: float, gains: PiGains) -> np.ndarray:
    """Equation (35): Reno driven directly by probability p (PI / PIE).

    ``p0`` is the operating-point *classic* probability; internally the
    equivalent p₀′ = √p₀ parameterizes the shared plant constants
    (κ_R = 1/(2p₀), s_R = √(2p₀)/R₀).
    """
    if not 0.0 < p0 <= 1.0:
        raise ValueError(f"operating point p must be in (0,1] (got {p0})")
    # κ_R = 1/(2p₀) in *classic* probability; s_R = √(2p₀)/R₀ (the pole is
    # the same as the squared loop's at the matched point p₀ = p₀′²).
    kappa_r = 1.0 / (2.0 * p0)
    s_r = math.sqrt(2.0 * p0) / r0
    aqm = AqmTransfer(gains, r0)
    delay = np.exp(-s * r0)
    den = (s / s_r + (1.0 + delay) / 2.0) * aqm.pole_terms(s)
    return kappa_r * aqm.numerator(s) * delay / den


def loop_reno_p2(s: np.ndarray, p_prime: float, r0: float, gains: PiGains) -> np.ndarray:
    """Equation (36): Reno driven by the squared pseudo-probability (PI2).

    Identical to (35) except the plant gain is κ_S = 1/p₀′ = 2κ_R: the
    squaring doubles the small-signal sensitivity but, crucially, makes it
    *linear* in p₀′, flattening the gain margin across load (Figure 7).
    """
    kappa_s, _, _, s_r = _plant_constants(p_prime, r0)
    aqm = AqmTransfer(gains, r0)
    delay = np.exp(-s * r0)
    den = (s / s_r + (1.0 + delay) / 2.0) * aqm.pole_terms(s)
    return kappa_s * aqm.numerator(s) * delay / den


def loop_scal_p(s: np.ndarray, p_prime: float, r0: float, gains: PiGains) -> np.ndarray:
    """Equation (37): a Scalable control (−½ packet per mark) on linear PI."""
    kappa_s, s_s, _, _ = _plant_constants(p_prime, r0)
    aqm = AqmTransfer(gains, r0)
    delay = np.exp(-s * r0)
    den = (s / s_s + delay) * aqm.pole_terms(s)
    return kappa_s * aqm.numerator(s) * delay / den
