"""Time-domain integration of the Appendix B fluid model.

The Bode analysis in :mod:`repro.analysis.bode` works on the *linearized*
loop; this module integrates the underlying **nonlinear delay-differential
equations** (15)–(18)/(22) + (16) directly, giving a second, independent
reproduction path for the dynamic experiments (Figures 6, 12, 13): the
same AQM code-paths can be exercised against the fluid plant instead of
the packet-level simulator, and the two substrates cross-validated.

Model (per Misra et al. [26] / Hollot et al. [19], paper equations):

    Reno windows:      dW/dt = 1/R(t) − b·W(t)·W(t−R)/R(t−R) · P(t−R)
    Scalable windows:  dW/dt = 1/R(t) − ½·W(t−R)/R(t−R) · P(t−R)
    queue:             dq/dt = N·W(t)/R(t) − C      (floored at q = 0)
    RTT:               R(t)  = q(t)/C + Tp

where ``P`` is the congestion-signal probability the AQM applies:
``p'²`` for PI2 on Reno (equation (18)), ``p`` for PIE/PI on Reno
(equation (15)), and ``p'`` for Scalable on PI (equation (22)).
The PI controller updates every ``t_update`` seconds exactly as the
packet-level implementations do.

Integration is explicit Euler with a fixed step and ring-buffer history
for the delayed terms — simple, deterministic, and accurate enough at
``dt ≤ 1 ms`` for the paper's 10–100 ms RTT regimes (the integration
tests check equilibrium against the closed forms of equation (19)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["FluidScenario", "FluidResult", "simulate_fluid"]


@dataclass
class FluidScenario:
    """Configuration of one fluid-model run.

    ``flows(t)`` and ``capacity(t)`` may vary over time to express the
    paper's varying-intensity and varying-capacity experiments.
    """

    capacity_pps: float                  # link capacity in packets/second
    n_flows: float                       # number of flows (may be overridden)
    base_rtt: float                      # two-way propagation delay Tp [s]
    alpha: float                         # PI integral gain [Hz]
    beta: float                          # PI proportional gain [Hz]
    target_delay: float = 0.020          # τ0 [s]
    t_update: float = 0.032              # controller period T [s]
    #: Plant/controller pairing: "reno_pi2", "reno_pi" or "scal_pi".
    kind: str = "reno_pi2"
    #: Reno's multiplicative-decrease coefficient b (0.5 Reno, 0.7 CReno).
    decrease: float = 0.5
    duration: float = 30.0
    dt: float = 0.0005
    w0: float = 1.0
    flows: Optional[Callable[[float], float]] = None
    capacity: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("reno_pi2", "reno_pi", "scal_pi"):
            raise ValueError(f"unknown kind {self.kind!r}")
        if self.capacity_pps <= 0 or self.n_flows <= 0 or self.base_rtt <= 0:
            raise ValueError("capacity, flows and base RTT must be positive")
        if self.dt <= 0 or self.duration <= 0:
            raise ValueError("dt and duration must be positive")
        if self.dt > self.base_rtt / 4:
            raise ValueError(
                f"dt={self.dt} too coarse for base RTT {self.base_rtt}"
            )


@dataclass
class FluidResult:
    """Trajectories sampled every ``sample_dt`` seconds."""

    times: List[float] = field(default_factory=list)
    window: List[float] = field(default_factory=list)
    queue_delay: List[float] = field(default_factory=list)
    p_prime: List[float] = field(default_factory=list)
    applied_p: List[float] = field(default_factory=list)

    def tail_mean(self, attr: str, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of a trajectory (steady state)."""
        data = getattr(self, attr)
        n = max(1, int(len(data) * fraction))
        return sum(data[-n:]) / n

    def peak(self, attr: str, t_from: float = 0.0) -> float:
        data = getattr(self, attr)
        return max(
            v for t, v in zip(self.times, data) if t >= t_from
        )


def simulate_fluid(scenario: FluidScenario, sample_dt: float = 0.01) -> FluidResult:
    """Integrate the fluid model; returns sampled trajectories."""
    dt = scenario.dt
    steps = int(round(scenario.duration / dt))
    flows_at = scenario.flows or (lambda t: scenario.n_flows)
    capacity_at = scenario.capacity or (lambda t: scenario.capacity_pps)

    # History ring for (W, R, P) so the delayed terms can be looked up.
    max_delay = scenario.base_rtt + 1.0  # generous bound on R(t)
    hist_len = int(math.ceil(max_delay / dt)) + 2
    w_hist = [scenario.w0] * hist_len
    r_hist = [scenario.base_rtt] * hist_len
    p_hist = [0.0] * hist_len

    w = scenario.w0
    q = 0.0
    p_prime = 0.0
    prev_delay = 0.0
    next_update = scenario.t_update
    next_sample = 0.0

    result = FluidResult()
    is_scalable = scenario.kind == "scal_pi"
    squares = scenario.kind == "reno_pi2"

    for step in range(steps):
        t = step * dt
        capacity = capacity_at(t)
        n = flows_at(t)
        r = q / capacity + scenario.base_rtt

        # Delayed values from one RTT ago.
        lag = min(hist_len - 1, max(1, int(round(r / dt))))
        idx = (step - lag) % hist_len
        w_delayed = w_hist[idx]
        r_delayed = r_hist[idx]
        p_delayed = p_hist[idx]

        if is_scalable:
            shrink = 0.5 * w_delayed / r_delayed * p_delayed
        else:
            applied = p_delayed * p_delayed if squares else p_delayed
            shrink = scenario.decrease * w * w_delayed / r_delayed * applied
        dw = 1.0 / r - shrink
        dq = n * w / r - capacity

        w = max(1.0, w + dw * dt)
        q = max(0.0, q + dq * dt)

        # PI controller update on its own clock.
        if t >= next_update:
            delay = q / capacity
            delta = (
                scenario.alpha * (delay - scenario.target_delay)
                + scenario.beta * (delay - prev_delay)
            )
            p_prime = min(1.0, max(0.0, p_prime + delta))
            prev_delay = delay
            next_update += scenario.t_update

        cur = step % hist_len
        w_hist[cur] = w
        r_hist[cur] = r
        p_hist[cur] = p_prime

        if t >= next_sample:
            result.times.append(t)
            result.window.append(w)
            result.queue_delay.append(q / capacity)
            result.p_prime.append(p_prime)
            if is_scalable:
                result.applied_p.append(p_prime)
            else:
                result.applied_p.append(p_prime ** 2 if squares else p_prime)
            next_sample += sample_dt

    return result
