"""Bode gain and phase margins for the Appendix-B loop transfer functions.

Regenerates the margin plots of Figures 4 and 7:

* **Gain margin** — at the first phase crossover ω_pc (unwrapped phase
  falling through −180°), GM = −20·log₁₀|L(jω_pc)| dB.  Positive GM means
  the loop tolerates that much extra gain before instability; the paper's
  claim is that squaring flattens GM across the whole load range, leaving
  room to raise the gains ×2.5.
* **Phase margin** — at the gain crossover ω_gc (|L| falling through 1),
  PM = 180° + ∠L(jω_gc).

Both are computed numerically on a dense logarithmic frequency grid with
linear interpolation at the crossings, which is accurate to well under a
tenth of a dB/degree at the default resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.analysis.fluid import PiGains, loop_reno_p, loop_reno_p2, loop_scal_p
from repro.aqm.tune_table import tune

__all__ = [
    "Margins",
    "margins_from_loop",
    "margins_reno_pie",
    "margins_reno_pi",
    "margins_reno_pi2",
    "margins_scal_pi",
    "margin_sweep",
    "max_stable_gain",
]


@dataclass(frozen=True)
class Margins:
    """Gain margin (dB) and phase margin (degrees) with their frequencies.

    A margin is ``None`` when the corresponding crossover does not occur
    within the evaluated frequency range (e.g. the phase never reaches
    −180° for very sluggish loops).
    """

    gain_margin_db: Optional[float]
    phase_margin_deg: Optional[float]
    phase_crossover_hz: Optional[float] = None
    gain_crossover_hz: Optional[float] = None

    @property
    def stable(self) -> bool:
        """Both margins positive (or absent), the usual stability read-out."""
        gm_ok = self.gain_margin_db is None or self.gain_margin_db > 0
        pm_ok = self.phase_margin_deg is None or self.phase_margin_deg > 0
        return gm_ok and pm_ok


def _first_downward_crossing(
    x: np.ndarray, y: np.ndarray, level: float
) -> Optional[int]:
    """Index i such that y[i] >= level > y[i+1], or None."""
    above = y >= level
    hits = np.nonzero(above[:-1] & ~above[1:])[0]
    return int(hits[0]) if hits.size else None


def margins_from_loop(
    loop: Callable[[np.ndarray], np.ndarray],
    omega_min: float = 1e-4,
    omega_max: float = 1e4,
    points: int = 20_000,
) -> Margins:
    """Compute margins of ``loop(s)`` evaluated at ``s = jω``."""
    omega = np.logspace(math.log10(omega_min), math.log10(omega_max), points)
    response = loop(1j * omega)
    mag = np.abs(response)
    phase = np.degrees(np.unwrap(np.angle(response)))

    gm_db = pm_deg = w_pc = w_gc = None

    i = _first_downward_crossing(omega, phase, -180.0)
    if i is not None:
        # Linear interpolation in log-frequency for the crossing point.
        f = (phase[i] - (-180.0)) / (phase[i] - phase[i + 1])
        log_w = np.log10(omega[i]) + f * (np.log10(omega[i + 1]) - np.log10(omega[i]))
        w_pc = 10 ** log_w
        mag_pc = 10 ** (
            np.log10(mag[i]) + f * (np.log10(mag[i + 1]) - np.log10(mag[i]))
        )
        gm_db = -20.0 * math.log10(mag_pc)

    j = _first_downward_crossing(omega, mag, 1.0)
    if j is not None:
        f = (mag[j] - 1.0) / (mag[j] - mag[j + 1])
        log_w = np.log10(omega[j]) + f * (np.log10(omega[j + 1]) - np.log10(omega[j]))
        w_gc = 10 ** log_w
        phase_gc = phase[j] + f * (phase[j + 1] - phase[j])
        pm_deg = 180.0 + phase_gc

    return Margins(
        gain_margin_db=gm_db,
        phase_margin_deg=pm_deg,
        phase_crossover_hz=None if w_pc is None else w_pc / (2 * math.pi),
        gain_crossover_hz=None if w_gc is None else w_gc / (2 * math.pi),
    )


# --------------------------------------------------------------------------
# The paper's four configurations
# --------------------------------------------------------------------------

def margins_reno_pie(p0: float, r0: float, gains: PiGains) -> Margins:
    """'reno pie' / Figure 4 'tune=auto': PIE with table-scaled gains at p₀."""
    scaled = gains.scaled(tune(p0))
    return margins_from_loop(lambda s: loop_reno_p(s, p0, r0, scaled))


def margins_reno_pi(p0: float, r0: float, gains: PiGains, tune_factor: float = 1.0) -> Margins:
    """Figure 4's fixed-tune curves: PI on Reno with constant gain scaling."""
    scaled = gains.scaled(tune_factor)
    return margins_from_loop(lambda s: loop_reno_p(s, p0, r0, scaled))


def margins_reno_pi2(p_prime: float, r0: float, gains: PiGains) -> Margins:
    """'reno pi2': the squared output stage, evaluated at p₀′."""
    return margins_from_loop(lambda s: loop_reno_p2(s, p_prime, r0, gains))


def margins_scal_pi(p_prime: float, r0: float, gains: PiGains) -> Margins:
    """'scal pi': a Scalable control on the linear PI output, at p₀′."""
    return margins_from_loop(lambda s: loop_scal_p(s, p_prime, r0, gains))


def max_stable_gain(
    kind: str,
    p: float,
    r0: float,
    gains: PiGains,
    upper: float = 64.0,
    tolerance: float = 0.01,
) -> float:
    """Largest factor by which the gains can be multiplied before the
    gain margin reaches zero at operating point ``p``.

    This quantifies the paper's headroom argument directly: squaring the
    output lets PI2 run gains "×2.5 without the gain margin dipping below
    zero anywhere over the full load range".  Computed by bisection on a
    uniform gain multiplier (which shifts |L| without moving its phase,
    so the answer is exactly the gain margin expressed as a ratio — the
    bisection doubles as a consistency check of the margin computation).

    Returns ``inf`` if even ``upper`` keeps the loop stable, 0 if the
    loop is already unstable at the given gains.
    """
    base = {
        "reno_pi": lambda g: margins_reno_pi(p, r0, g),
        "reno_pie": lambda g: margins_reno_pie(p, r0, g),
        "reno_pi2": lambda g: margins_reno_pi2(p, r0, g),
        "scal_pi": lambda g: margins_scal_pi(p, r0, g),
    }
    if kind not in base:
        raise ValueError(f"unknown kind {kind!r}; choose from {sorted(base)}")

    def stable(scale: float) -> bool:
        m = base[kind](gains.scaled(scale))
        return m.gain_margin_db is None or m.gain_margin_db > 0

    if not stable(1.0):
        return 0.0
    if stable(upper):
        return math.inf
    lo, hi = 1.0, upper
    while hi / lo > 1.0 + tolerance:
        mid = math.sqrt(lo * hi)
        if stable(mid):
            lo = mid
        else:
            hi = mid
    return lo


def margin_sweep(
    kind: str,
    probabilities: np.ndarray,
    r0: float,
    gains: PiGains,
    tune_factor: float = 1.0,
) -> list[Margins]:
    """Sweep an operating-point range, returning one :class:`Margins` each.

    ``kind`` selects the configuration: ``"reno_pie"``, ``"reno_pi"``,
    ``"reno_pi2"`` or ``"scal_pi"``.  For the Reno-on-p kinds the
    probabilities are classic ``p``; for the primed kinds they are ``p'``.
    """
    dispatch = {
        "reno_pie": lambda p: margins_reno_pie(p, r0, gains),
        "reno_pi": lambda p: margins_reno_pi(p, r0, gains, tune_factor),
        "reno_pi2": lambda p: margins_reno_pi2(p, r0, gains),
        "scal_pi": lambda p: margins_scal_pi(p, r0, gains),
    }
    if kind not in dispatch:
        raise ValueError(f"unknown sweep kind {kind!r}; choose from {sorted(dispatch)}")
    fn = dispatch[kind]
    return [fn(float(p)) for p in probabilities]
