"""Benchmark harness: events/sec, figure wall-clock, speedup, cache.

Four layers, each answering one question:

* :func:`bench_engine_events` — how fast is the bare event loop?
  (schedule/fire churn with trivial callbacks; pure engine overhead)
* :func:`bench_cancel_churn` — does lazy cancellation stay cheap under
  timer re-arming, i.e. does heap compaction do its job?
* :func:`bench_experiment` — how many *simulation* events per second
  does a realistic scenario sustain, TCP + AQM + recorders included?
* :func:`bench_link_batching` — what does link-layer event batching buy
  on a grid workload?  Runs the same cells with ``link_batching`` off
  and on, reports logical events/sec both ways plus the speedup, and
  asserts bit-exact digest parity between the two modes.
* :func:`bench_scheduler` — what does the timer-wheel event core buy
  over the reference binary heap?  A 4-cell timer-population ×
  delay-spread grid, events/sec per backend plus dispatch-order and
  experiment digest parity (``matches_heap``).
* :func:`bench_shared_cache` — does the cross-process single-flight
  cache collapse N workers' repeated-figure requests to one simulation
  per unique cell (``single_flight_ok``)?
* :func:`bench_grid` — what does a paper grid (Figures 15–18 shaped)
  cost wall-clock: serial, parallel (``jobs``), cold cache, warm cache?
* :func:`bench_tracing` — is the observability layer really free when
  off?  Interleaved A/A timing of the untraced path bounds the
  tracing-off overhead (``tracing_overhead_ok`` gates it at ≤ 1 %),
  and a fully traced run must reproduce the untraced digest bit-exact
  (``matches_untraced``).

:func:`run_benchmarks` bundles them into one JSON-able payload and
:func:`write_bench_json` emits ``BENCH_<date>.json``, the artifact CI
uploads and ``docs/PERFORMANCE.md`` explains how to read.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.harness.cache import ResultCache
from repro.harness.factories import coupled_factory, pi2_factory
from repro.harness.scenarios import light_tcp
from repro.harness.sweep import run_coexistence_grid
from repro.sim.engine import Simulator

__all__ = [
    "BenchRecord",
    "bench_engine_events",
    "bench_cancel_churn",
    "bench_experiment",
    "bench_link_batching",
    "bench_scheduler",
    "bench_shared_cache",
    "bench_grid",
    "bench_figure_resume",
    "bench_supervised",
    "bench_tracing",
    "run_benchmarks",
    "write_bench_json",
    "format_bench_table",
]

#: Tiny Figures-15–18-shaped grid used by the quick/smoke benchmarks.
QUICK_GRID = {"links_mbps": (4, 12), "rtts_ms": (5, 10), "duration": 5.0, "warmup": 2.0}
#: Fuller grid for `--full` runs on real hardware.
FULL_GRID = {
    "links_mbps": (4, 12, 40),
    "rtts_ms": (5, 10, 20),
    "duration": 15.0,
    "warmup": 6.0,
}
#: Grid cells for the batching A/B benchmark: paper cells with a
#: meaningful bandwidth-delay product, where per-packet link and pipe
#: events dominate the heap and batching has something to absorb.
BATCHING_GRID = {
    "links_mbps": (40, 120),
    "rtts_ms": (20, 50),
    "duration": 5.0,
    "warmup": 2.0,
}


@dataclass
class BenchRecord:
    """One benchmark's outcome: wall-clock plus whatever it counted."""

    name: str
    wall_seconds: float
    events: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
        }
        if self.events:
            payload["events"] = self.events
            payload["events_per_sec"] = self.events_per_sec
        payload.update(self.extra)
        return payload


def bench_engine_events(n_events: int = 200_000) -> BenchRecord:
    """Raw event-loop throughput: one self-rescheduling timer chain."""
    sim = Simulator()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    start = time.perf_counter()
    sim.run(until=n_events)  # far beyond the last event's timestamp
    wall = time.perf_counter() - start
    return BenchRecord("engine_events", wall, events=sim.events_processed)


def bench_cancel_churn(n_events: int = 100_000) -> BenchRecord:
    """Timer re-arm churn: every firing cancels a pending event and arms
    two more, the way TCP retransmission timers behave under ACK clocking.
    Exercises lazy deletion + threshold compaction; the compaction count
    and peak heap size come back in ``extra``."""
    sim = Simulator()
    state = {"fired": 0, "pending": None, "peak_heap": 0}

    def tick():
        state["fired"] += 1
        if state["pending"] is not None:
            state["pending"].cancel()
        if state["fired"] < n_events:
            # The event armed here is immediately superseded on the next
            # tick — exactly the re-arm pattern that used to accumulate.
            state["pending"] = sim.schedule(10.0, tick)
            sim.schedule(0.001, tick)
        state["peak_heap"] = max(state["peak_heap"], sim.pending_events)

    sim.schedule(0.001, tick)
    start = time.perf_counter()
    sim.run(until=n_events)
    wall = time.perf_counter() - start
    return BenchRecord(
        "cancel_churn",
        wall,
        events=sim.events_processed,
        extra={
            "compactions": sim.compactions,
            "peak_heap": state["peak_heap"],
            "cancelled_pending_final": sim.cancelled_pending,
        },
    )


def bench_experiment(duration: float = 10.0, seed: int = 1) -> BenchRecord:
    """End-to-end simulation throughput on the paper's light-TCP scenario."""
    from repro.harness.experiment import run_experiment

    exp = light_tcp(pi2_factory(), duration=duration, seed=seed)
    start = time.perf_counter()
    result = run_experiment(exp)
    wall = time.perf_counter() - start
    return BenchRecord(
        "experiment_light_tcp",
        wall,
        events=result.bed.sim.events_processed,
        extra={"sim_seconds": duration, "sim_seconds_per_wall": duration / wall},
    )


def bench_link_batching(
    grid: Optional[dict] = None,
    seed: int = 1,
) -> BenchRecord:
    """A/B the link-layer event batcher on a high-BDP grid workload.

    Runs each grid cell twice — ``link_batching=False`` then ``True`` —
    and compares *logical* events/sec, where logical events are
    ``events_processed + events_batched``: batching absorbs dispatches,
    it does not remove work, so the logical count is identical in both
    modes and the speedup is purely wall-clock.  Digest equality across
    the two runs is checked per cell; any mismatch is flagged in
    ``extra["matches_unbatched"]`` (and would fail the perf smoke test).
    """
    from dataclasses import replace

    from repro.harness.experiment import run_experiment
    from repro.harness.scenarios import coexistence_pair

    params = dict(grid or BATCHING_GRID)
    cells = [
        (mbps, rtt_ms)
        for mbps in params["links_mbps"]
        for rtt_ms in params["rtts_ms"]
    ]

    walls = {False: 0.0, True: 0.0}
    processed = {False: 0, True: 0}
    absorbed = {False: 0, True: 0}
    breaks = 0
    matches = True
    for mbps, rtt_ms in cells:
        base = coexistence_pair(
            pi2_factory(),
            capacity_bps=mbps * 1_000_000,
            rtt=rtt_ms / 1_000.0,
            duration=params["duration"],
            warmup=params["warmup"],
            seed=seed,
        )
        digests = {}
        for batching in (False, True):
            exp = replace(base, link_batching=batching)
            start = time.perf_counter()
            result = run_experiment(exp)
            walls[batching] += time.perf_counter() - start
            sim = result.bed.sim
            processed[batching] += sim.events_processed
            absorbed[batching] += sim.events_batched
            if batching:
                breaks += sim.batch_breaks
            digests[batching] = result.digest()
        matches = matches and digests[False] == digests[True]

    logical_off = processed[False] + absorbed[False]
    logical_on = processed[True] + absorbed[True]
    eps_off = logical_off / walls[False] if walls[False] > 0 else 0.0
    eps_on = logical_on / walls[True] if walls[True] > 0 else 0.0
    return BenchRecord(
        "link_batching",
        walls[True],
        events=logical_on,
        extra={
            "cells": len(cells),
            "wall_seconds_unbatched": walls[False],
            "events_per_sec_unbatched": eps_off,
            "speedup_vs_unbatched": eps_on / eps_off if eps_off > 0 else 0.0,
            "events_batched": absorbed[True],
            "batch_breaks": breaks,
            "matches_unbatched": matches,
        },
    )


#: The scheduler A/B grid: timer populations × delay spreads.  The
#: populations bracket light and heavy concurrent-timer loads; the
#: spreads are the engine's *residual* event delays in real experiments
#: — AQM sample ticks (~16 ms) and paper-scale ACK-clock RTTs (up to
#: 100 ms).  Sub-millisecond serialization events are absent on purpose:
#: those ride the link/pipe stream lanes (PR 3's batching), never the
#: scheduler.
SCHEDULER_GRID = ((1024, 0.016), (4096, 0.016), (1024, 0.1), (4096, 0.1))


def _scheduler_workload(scheduler, population, spread, target, trace=None):
    """Run ``target`` self-rescheduling timers; returns (events, cpu_s).

    The delay pattern is a deterministic Weyl-style spread over
    ``[0.1 ms, spread]`` so both backends see the identical schedule.
    With ``trace`` given, every dispatch appends ``(now, timer_id)`` —
    the material for the pop-order digest — at the cost of the append,
    so parity passes and timing passes are kept separate.
    """
    sim = Simulator(scheduler=scheduler)
    count = [0]

    if trace is None:
        def tick(i, d):
            count[0] += 1
            sim.call_later(d, tick, i, d)
    else:
        def tick(i, d):
            count[0] += 1
            trace.append((sim.now, i))
            sim.call_later(d, tick, i, d)

    for i in range(population):
        d = 0.0001 + ((i * 2654435761) % 1200) / 1200.0 * spread
        sim.call_later(d, tick, i, d)
    sim.run(until=sim.now + 0.05)  # warm the wheel/heap before timing
    count[0] = 0
    # repro: allow[DET] wall/CPU measurement only; never feeds simulation state
    start = time.process_time()
    until = sim.now
    while count[0] < target:
        until += 1.0
        sim.run(until)
    # repro: allow[DET] wall/CPU measurement only; never feeds simulation state
    return count[0], time.process_time() - start


def bench_scheduler(
    events_per_cell: int = 80_000,
    repeats: int = 3,
    seed: int = 1,
) -> BenchRecord:
    """A/B the timer-wheel scheduler against the reference heap.

    Two layers of comparison over the 4-cell :data:`SCHEDULER_GRID`:

    * **Parity** — an untimed traced pass per cell hashes the full
      ``(time, timer)`` dispatch stream of each backend; plus one real
      experiment (the quick grid's smallest cell) run under both
      backends and compared by result digest.  Any divergence makes
      ``matches_heap`` False, which fails ``repro bench`` and the perf
      smoke test.
    * **Throughput** — per cell, ``repeats`` interleaved timed passes
      per backend on CPU time (best-of, so scheduler preemption noise
      cancels); the headline ``speedup_vs_heap`` is the grid-aggregate
      events/sec ratio (total events over summed best times).
    """
    import hashlib as _hashlib

    from dataclasses import replace

    from repro.harness.experiment import run_experiment
    from repro.harness.scenarios import coexistence_pair

    matches = True
    for population, spread in SCHEDULER_GRID:
        digests = {}
        for scheduler in ("heap", "wheel"):
            trace: List[tuple] = []
            _scheduler_workload(
                scheduler, population, spread, events_per_cell // 4, trace
            )
            digests[scheduler] = _hashlib.sha256(
                repr(trace).encode()
            ).hexdigest()
        matches = matches and digests["heap"] == digests["wheel"]

    # Experiment-level parity: same cell, both backends, equal digests.
    base = coexistence_pair(
        pi2_factory(),
        capacity_bps=4 * 1_000_000,
        rtt=10 / 1_000.0,
        duration=5.0,
        warmup=2.0,
        seed=seed,
    )
    exp_digests = {
        scheduler: run_experiment(replace(base, scheduler=scheduler)).digest()
        for scheduler in ("heap", "wheel")
    }
    matches = matches and exp_digests["heap"] == exp_digests["wheel"]

    totals = {"heap": 0.0, "wheel": 0.0}
    events = {"heap": 0, "wheel": 0}
    for population, spread in SCHEDULER_GRID:
        best = {"heap": float("inf"), "wheel": float("inf")}
        cell_events = {"heap": 0, "wheel": 0}
        for _ in range(repeats):
            for scheduler in ("heap", "wheel"):
                n, cpu = _scheduler_workload(
                    scheduler, population, spread, events_per_cell
                )
                if cpu < best[scheduler]:
                    best[scheduler] = cpu
                    cell_events[scheduler] = n
        for scheduler in ("heap", "wheel"):
            totals[scheduler] += best[scheduler]
            events[scheduler] += cell_events[scheduler]

    eps_heap = events["heap"] / totals["heap"] if totals["heap"] > 0 else 0.0
    eps_wheel = events["wheel"] / totals["wheel"] if totals["wheel"] > 0 else 0.0
    return BenchRecord(
        "scheduler",
        totals["wheel"],
        events=events["wheel"],
        extra={
            "cells": len(SCHEDULER_GRID),
            "cpu_seconds_heap": totals["heap"],
            "events_per_sec_heap": eps_heap,
            "speedup_vs_heap": eps_wheel / eps_heap if eps_heap > 0 else 0.0,
            "matches_heap": matches,
        },
    )


def _shared_cache_worker(payload):
    """Pool body for :func:`bench_shared_cache`: fetch every cell once."""
    from repro.harness.cache import SharedResultCache
    from repro.harness.experiment import run_experiment
    from repro.harness.frozen import freeze_result

    root, cells = payload
    cache = SharedResultCache(root)
    digests = []
    for key, experiment in cells:
        result = cache.fetch_or_compute(
            key, lambda experiment=experiment: freeze_result(
                run_experiment(experiment)
            )
        )
        digests.append(result.digest_hex())
    return digests


def bench_shared_cache(
    jobs: Optional[int] = None,
    seed: int = 1,
) -> BenchRecord:
    """Single-flight dedup under a parallel repeated-figure workload.

    ``jobs`` workers (capped at 4) each request the *same* set of unique
    cells through one :class:`~repro.harness.cache.SharedResultCache` —
    the repeated-figure shape, N processes asking for one grid.  The
    per-key file locks must collapse the ``workers x cells`` requests to
    exactly ``cells`` simulations (``compute_count``), everyone else
    waiting and sharing; ``single_flight_ok`` gates that, and digest
    equality across workers gates that shared results are the same
    object the computing worker produced.
    """
    import multiprocessing

    from repro.harness.cache import SharedResultCache, experiment_cache_key
    from repro.harness.parallel import resolve_jobs
    from repro.harness.scenarios import coexistence_pair

    workers = min(resolve_jobs(jobs), 4)
    cells = []
    for rtt_ms in (5, 10):
        experiment = coexistence_pair(
            pi2_factory(),
            capacity_bps=4 * 1_000_000,
            rtt=rtt_ms / 1_000.0,
            duration=3.0,
            warmup=1.0,
            seed=seed,
        )
        cells.append((experiment_cache_key(experiment), experiment))

    with tempfile.TemporaryDirectory(prefix="repro-bench-shared-") as root:
        payload = (root, cells)
        start = time.perf_counter()
        if workers > 1:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers) as pool:
                digest_lists = pool.map(
                    _shared_cache_worker, [payload] * workers
                )
        else:
            digest_lists = [_shared_cache_worker(payload)]
        wall = time.perf_counter() - start
        counts = SharedResultCache(root).event_counts()

    digests_equal = len({tuple(d) for d in digest_lists}) == 1
    compute_count = counts["compute"]
    return BenchRecord(
        "shared_cache",
        wall,
        extra={
            "workers": workers,
            "unique_cells": len(cells),
            "requests": workers * len(cells),
            "compute_count": compute_count,
            "wait_count": counts["wait"],
            "dedup_saved_runs": workers * len(cells) - compute_count,
            "single_flight_ok": (
                compute_count == len(cells) and digests_equal
            ),
        },
    )


def bench_grid(
    jobs: Optional[int] = None,
    grid: Optional[dict] = None,
    seed: int = 1,
) -> List[BenchRecord]:
    """Wall-clock a Figures-15–18-shaped grid four ways.

    Serial, parallel (``jobs``; 0/None = one worker per CPU), cold cache
    and warm cache — the speedup and cache-hit numbers land in ``extra``.
    The determinism cross-check (serial digests == parallel digests) is
    performed here too, so every benchmark run doubles as a regression
    test of the parallel executor.
    """
    params = dict(grid or QUICK_GRID)
    records: List[BenchRecord] = []

    start = time.perf_counter()
    serial = run_coexistence_grid(coupled_factory(), seed=seed, **params)
    serial_wall = time.perf_counter() - start
    records.append(
        BenchRecord("grid_serial", serial_wall, extra={"cells": len(serial)})
    )

    start = time.perf_counter()
    parallel = run_coexistence_grid(
        coupled_factory(), seed=seed, jobs=jobs or 0, **params
    )
    parallel_wall = time.perf_counter() - start
    digests_equal = all(
        a.result.digest() == b.result.digest() for a, b in zip(serial, parallel)
    )
    records.append(
        BenchRecord(
            "grid_parallel",
            parallel_wall,
            extra={
                "jobs": jobs or (os.cpu_count() or 1),
                "speedup_vs_serial": serial_wall / parallel_wall
                if parallel_wall > 0
                else 0.0,
                "matches_serial": digests_equal,
            },
        )
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        start = time.perf_counter()
        cold = run_coexistence_grid(
            coupled_factory(), seed=seed, cache=cache, **params
        )
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_coexistence_grid(
            coupled_factory(), seed=seed, cache=cache, **params
        )
        warm_wall = time.perf_counter() - start
        cached_equal = all(
            a.result.digest() == b.result.digest() for a, b in zip(cold, warm)
        )
        records.append(
            BenchRecord(
                "grid_cache_cold", cold_wall, extra={"stores": cache.stats.stores}
            )
        )
        records.append(
            BenchRecord(
                "grid_cache_warm",
                warm_wall,
                extra={
                    "hits": cache.stats.hits,
                    "speedup_vs_cold": cold_wall / warm_wall if warm_wall > 0 else 0.0,
                    "matches_cold": cached_equal,
                },
            )
        )
    return records


def bench_supervised(
    jobs: Optional[int] = None,
    grid: Optional[dict] = None,
    seed: int = 1,
) -> BenchRecord:
    """Cost and correctness of supervised, journaled, resumable sweeps.

    Runs the quick grid four ways — plain serial (the reference digests),
    supervised without a journal, supervised with the fsync'd journal,
    and a resume that replays the journal — and reports:

    * ``journal_overhead_pct`` — wall-clock cost of journaling relative
      to the same supervised run without it.  Gated by
      ``journal_overhead_ok`` (≤ 5 %, with a 0.5 s absolute-floor grace
      so the quick grid's tiny wall times don't produce noise failures).
    * ``matches_serial`` / ``matches_resume`` — bit-exact digest parity
      of the journaled run and of the resumed (fully replayed) run
      against the serial reference.  Either being False fails
      ``repro bench`` exactly like the other determinism gates.
    """
    from repro.harness.supervisor import SupervisorReport

    params = dict(grid or QUICK_GRID)

    start = time.perf_counter()
    serial = run_coexistence_grid(coupled_factory(), seed=seed, **params)
    serial_wall = time.perf_counter() - start
    reference = [cell.result.digest() for cell in serial]

    start = time.perf_counter()
    bare = run_coexistence_grid(
        coupled_factory(), seed=seed, jobs=jobs, supervised=True, **params
    )
    bare_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        journal_path = os.path.join(tmp, "grid.journal")
        start = time.perf_counter()
        journaled = run_coexistence_grid(
            coupled_factory(), seed=seed, jobs=jobs,
            journal=journal_path, **params
        )
        journal_wall = time.perf_counter() - start
        journal_bytes = os.path.getsize(journal_path)

        start = time.perf_counter()
        resumed = run_coexistence_grid(
            coupled_factory(), seed=seed, jobs=jobs,
            journal=journal_path, resume=True, **params
        )
        resume_wall = time.perf_counter() - start
        resume_report: SupervisorReport = resumed.recovery

    matches_serial = [c.result.digest() for c in journaled] == reference
    matches_resume = [c.result.digest() for c in resumed] == reference
    overhead = journal_wall - bare_wall
    overhead_pct = (overhead / bare_wall * 100.0) if bare_wall > 0 else 0.0
    overhead_ok = overhead_pct <= 5.0 or overhead <= 0.5
    heartbeat_count = (
        bare.recovery.heartbeats if bare.recovery is not None else 0
    )
    return BenchRecord(
        "grid_supervised",
        journal_wall,
        extra={
            "cells": len(serial),
            "wall_seconds_serial": serial_wall,
            "wall_seconds_no_journal": bare_wall,
            "wall_seconds_resume": resume_wall,
            "journal_overhead_pct": overhead_pct,
            "journal_overhead_ok": overhead_ok,
            "journal_bytes": journal_bytes,
            "replayed": resume_report.replayed if resume_report else 0,
            "heartbeats": heartbeat_count,
            "matches_serial": matches_serial,
            "matches_resume": matches_resume,
        },
    )


def bench_figure_resume(scale: float = 0.15, seed: int = 1) -> BenchRecord:
    """Cost and correctness of the journal-backed figure pipeline.

    Generates fig12 three ways — plain (the reference rows), journaled
    (every completed cell fsync'd), and resumed from that journal — and
    reports:

    * ``journal_overhead_pct`` — wall-clock cost of journaling the
      figure relative to the plain run, gated by ``journal_overhead_ok``
      (≤ 5 %, with the same 0.5 s absolute-floor grace as the grid
      journal gate).
    * ``matches_serial`` / ``matches_resume`` — the journaled run's rows
      and the resumed (fully replayed) run's rows must equal the plain
      run's rows bit-for-bit.  Either being False fails ``repro bench``
      like the other determinism gates.

    ``seed`` is unused by fig12 (its cells carry fixed seeds); it is
    accepted for signature symmetry with the other grid benchmarks.
    """
    from repro.harness.figures import generate_figure

    del seed  # fig12's experiments embed their own fixed seeds

    start = time.perf_counter()
    plain = generate_figure("fig12", scale=scale)
    plain_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-bench-figjournal-") as tmp:
        start = time.perf_counter()
        journaled = generate_figure("fig12", scale=scale, journal=tmp)
        journal_wall = time.perf_counter() - start
        journal_bytes = os.path.getsize(os.path.join(tmp, "fig12.journal"))

        start = time.perf_counter()
        resumed = generate_figure(
            "fig12", scale=scale, journal=tmp, resume=True
        )
        resume_wall = time.perf_counter() - start

    overhead = journal_wall - plain_wall
    overhead_pct = (overhead / plain_wall * 100.0) if plain_wall > 0 else 0.0
    overhead_ok = overhead_pct <= 5.0 or overhead <= 0.5
    return BenchRecord(
        "figure_resume",
        journal_wall,
        extra={
            "cells": journaled.report.journal_appends,
            "wall_seconds_plain": plain_wall,
            "wall_seconds_resume": resume_wall,
            "journal_overhead_pct": overhead_pct,
            "journal_overhead_ok": overhead_ok,
            "journal_bytes": journal_bytes,
            "replayed": resumed.report.replayed,
            "resume_executed": resumed.report.executed,
            "matches_serial": journaled.rows == plain.rows,
            "matches_resume": resumed.rows == plain.rows,
        },
    )


def bench_tracing(
    duration: float = 5.0,
    repeats: int = 3,
    seed: int = 1,
) -> BenchRecord:
    """Cost and correctness of the :mod:`repro.obs` tracing layer.

    Two claims are measured on the light-TCP scenario:

    * **Off is free.**  When no tracer is passed, the observability
      hooks reduce to one ``is None`` check per engine run plus a
      metrics snapshot at teardown — nothing per event.  There is no
      hook-free build to diff against, so the honest measurement is an
      interleaved A/A comparison: two best-of-``repeats`` series of the
      *identical* untraced run, whose relative gap bounds both the
      hooks' cost and the timer noise floor.  ``tracing_off_overhead_pct``
      reports that gap; ``tracing_overhead_ok`` gates it at ≤ 1 % (with
      a 50 ms absolute-floor grace, as quick runs finish in ~1 s and a
      single scheduler preemption exceeds 1 % of that).
    * **On observes, never perturbs.**  A fully traced run (all
      categories, JSONL to a temp file) must produce the bit-exact
      digest of the untraced run — ``matches_untraced``, failing
      ``repro bench`` like the other determinism gates.  The traced
      wall-clock and event/byte volume land in ``extra`` for scale.

    The traced run's ``telemetry`` snapshot rides along in ``extra`` so
    :func:`run_benchmarks` can lift it into the payload's top-level
    ``telemetry`` block.
    """
    from repro.harness.experiment import run_experiment
    from repro.obs.trace import JsonlTracer

    exp = light_tcp(pi2_factory(), duration=duration, seed=seed)

    best = {"a": float("inf"), "b": float("inf")}
    baseline = None
    for _ in range(repeats):
        for series in ("a", "b"):
            start = time.perf_counter()
            result = run_experiment(exp)
            wall = time.perf_counter() - start
            best[series] = min(best[series], wall)
            if baseline is None:
                baseline = result
    floor = min(best.values())
    gap = abs(best["a"] - best["b"])
    off_pct = gap / floor * 100.0 if floor > 0 else 0.0
    overhead_ok = off_pct <= 1.0 or gap <= 0.05

    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        trace_path = os.path.join(tmp, "bench-trace.jsonl")
        tracer = JsonlTracer(trace_path)
        start = time.perf_counter()
        traced = run_experiment(exp, tracer=tracer)
        traced_wall = time.perf_counter() - start
        tracer.close()
        trace_events = tracer.total_events
        trace_counts = dict(sorted(tracer.counts.items()))
        trace_bytes = os.path.getsize(trace_path)

    assert baseline is not None
    on_pct = (traced_wall - floor) / floor * 100.0 if floor > 0 else 0.0
    return BenchRecord(
        "tracing",
        floor,
        extra={
            "wall_seconds_traced": traced_wall,
            "tracing_off_overhead_pct": off_pct,
            "tracing_overhead_ok": overhead_ok,
            "tracing_on_overhead_pct": on_pct,
            "trace_events": trace_events,
            "trace_event_counts": trace_counts,
            "trace_bytes": trace_bytes,
            "matches_untraced": traced.digest() == baseline.digest(),
            "telemetry": traced.telemetry,
        },
    )


def run_benchmarks(
    quick: bool = True,
    jobs: Optional[int] = None,
    seed: int = 1,
) -> Dict[str, object]:
    """Run the full benchmark set; returns the JSON-able payload."""
    scale = 1 if quick else 4
    records = [
        bench_engine_events(50_000 * scale),
        bench_cancel_churn(25_000 * scale),
        bench_experiment(duration=5.0 * scale, seed=seed),
        bench_link_batching(
            grid=dict(
                BATCHING_GRID,
                duration=BATCHING_GRID["duration"] * (1 if quick else 2),
            ),
            seed=seed,
        ),
        bench_scheduler(
            events_per_cell=80_000 * (1 if quick else 2), seed=seed
        ),
        bench_shared_cache(jobs=jobs, seed=seed),
    ]
    records.extend(
        bench_grid(jobs=jobs, grid=QUICK_GRID if quick else FULL_GRID, seed=seed)
    )
    records.append(
        bench_supervised(
            jobs=jobs, grid=QUICK_GRID if quick else FULL_GRID, seed=seed
        )
    )
    records.append(bench_figure_resume(scale=0.15 if quick else 0.4, seed=seed))
    tracing = bench_tracing(duration=5.0 * (1 if quick else 2), seed=seed)
    # The traced run's metrics snapshot becomes the payload's top-level
    # telemetry block; the per-benchmark record keeps only the numbers.
    telemetry = tracing.extra.pop("telemetry", None)
    records.append(tracing)
    return {
        "schema": 1,
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "static_analysis": _static_analysis_summary(),
        "telemetry": telemetry,
        "benchmarks": [record.to_dict() for record in records],
    }


#: Full-tree ``repro check`` wall-clock budget.  Pre-commit and CI lean
#: on the analyzer being interactive-fast; the two-pass project analysis
#: (symbol table + call graph + TAINT/UNIT summaries) must stay well
#: inside this even as the tree grows.
STATIC_ANALYSIS_BUDGET_SECONDS = 10.0


def _static_analysis_summary() -> Dict[str, object]:
    """``repro check`` counts and wall-clock recorded alongside the perf
    numbers, so a BENCH file also certifies whether the measured tree was
    lint-clean and the analyzer stayed inside its time budget."""
    from repro.analysis.static import analyze_paths

    start = time.perf_counter()
    report = analyze_paths()
    seconds = time.perf_counter() - start
    return {
        "rules": len(report.rules),
        "files_checked": report.files_checked,
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
        "counts": dict(sorted(report.counts.items())),
        "seconds": seconds,
        "budget_seconds": STATIC_ANALYSIS_BUDGET_SECONDS,
        "within_budget": seconds <= STATIC_ANALYSIS_BUDGET_SECONDS,
    }


def write_bench_json(payload: Dict[str, object], output=None) -> Path:
    """Write the payload as ``BENCH_<date>.json`` (or to ``output``)."""
    if output is None:
        output = f"BENCH_{payload.get('date', datetime.date.today().isoformat())}.json"
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_bench_table(payload: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark payload."""
    from repro.harness.sweep import format_table

    rows = []
    for bench in payload["benchmarks"]:
        note_parts = []
        for key in ("speedup_vs_serial", "speedup_vs_cold", "speedup_vs_unbatched",
                    "speedup_vs_heap"):
            if key in bench:
                note_parts.append(f"{key.split('_vs_')[-1]}×{bench[key]:.2f}")
        for key in ("matches_serial", "matches_cold", "matches_unbatched",
                    "matches_resume", "matches_heap", "matches_untraced"):
            if key in bench and not bench[key]:
                note_parts.append("MISMATCH!")
        if "single_flight_ok" in bench:
            note_parts.append(
                f"dedup {bench['requests']}→{bench['compute_count']}"
                + ("" if bench["single_flight_ok"] else " SINGLE-FLIGHT!")
            )
        if "journal_overhead_pct" in bench:
            note_parts.append(f"journal+{bench['journal_overhead_pct']:.1f}%")
            if not bench.get("journal_overhead_ok", True):
                note_parts.append("OVERHEAD!")
        if "tracing_off_overhead_pct" in bench:
            note_parts.append(
                f"off+{bench['tracing_off_overhead_pct']:.2f}% "
                f"{bench['trace_events']} ev"
            )
            if not bench.get("tracing_overhead_ok", True):
                note_parts.append("OVERHEAD!")
        rows.append(
            (
                bench["name"],
                bench["wall_seconds"],
                bench.get("events_per_sec", ""),
                " ".join(note_parts),
            )
        )
    host = payload["host"]
    return format_table(
        ["benchmark", "wall [s]", "events/s", "notes"],
        rows,
        title=f"repro bench {payload['date']} "
        f"(python {host['python']}, {host['cpus']} cpu)",
    )
