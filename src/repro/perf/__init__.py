"""Performance measurement: benchmarks, profiling, BENCH_*.json artifacts.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows" — which is only a claim if it is *measured*.  This package is the
measuring stick:

* :mod:`repro.perf.bench` — engine and end-to-end benchmarks
  (events/sec, per-figure wall-clock, serial-vs-parallel speedup,
  cold-vs-warm cache), emitted as ``BENCH_<date>.json`` so successive
  PRs leave a perf trajectory behind them.
* :mod:`repro.perf.profiling` — cProfile helpers for finding the next
  hot spot.

Run it via ``python -m repro bench`` (see ``docs/PERFORMANCE.md``) or the
``perf/run_bench.py`` script.
"""

from repro.perf.bench import (
    BenchRecord,
    bench_cancel_churn,
    bench_engine_events,
    bench_experiment,
    bench_grid,
    bench_link_batching,
    bench_scheduler,
    bench_shared_cache,
    bench_figure_resume,
    bench_supervised,
    format_bench_table,
    run_benchmarks,
    write_bench_json,
)
from repro.perf.profiling import profile_callable, profile_experiment

__all__ = [
    "BenchRecord",
    "bench_engine_events",
    "bench_cancel_churn",
    "bench_experiment",
    "bench_link_batching",
    "bench_scheduler",
    "bench_shared_cache",
    "bench_grid",
    "bench_figure_resume",
    "bench_supervised",
    "run_benchmarks",
    "write_bench_json",
    "format_bench_table",
    "profile_callable",
    "profile_experiment",
]
