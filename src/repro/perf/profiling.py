"""cProfile helpers: find the next hot spot without writing boilerplate.

``python -m repro bench --profile`` uses :func:`profile_experiment` to
print where a representative simulation spends its time; the same helpers
are importable for profiling any callable or experiment from a script.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Tuple

__all__ = ["profile_callable", "profile_experiment"]


def profile_callable(
    fn: Callable[[], object], top: int = 25, sort: str = "cumulative"
) -> Tuple[object, str]:
    """Run ``fn()`` under cProfile; returns ``(fn's result, report text)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buffer.getvalue()


def profile_experiment(experiment, top: int = 25) -> str:
    """Profile one experiment run; returns the report text."""
    from repro.harness.experiment import run_experiment

    _result, report = profile_callable(lambda: run_experiment(experiment), top=top)
    return report
