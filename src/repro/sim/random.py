"""Seeded, named random-number streams.

Every stochastic component in the simulator (each AQM's drop decision, each
TCP flow's start-time jitter, the web workload's flow sizes, ...) draws from
its own named stream derived from a single master seed.  This gives two
properties the paper's evaluation methodology needs:

* **Reproducibility** — a run is a pure function of (scenario, seed).
* **Variance isolation** — changing one component (say, swapping PIE for
  PI2) does not perturb the random numbers any *other* component sees, so
  A/B comparisons such as Figure 11's PIE-vs-PI2 columns differ only in the
  AQM decision sequence, not in incidental noise.

The derivation hashes the stream name with the master seed, so streams are
independent of the order in which they are requested.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "default_stream"]


class RandomStreams:
    """Factory of independent named :class:`random.Random` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=1)
    >>> aqm_rng = streams.stream("aqm")
    >>> flow_rng = streams.stream("flow/3")
    >>> streams.stream("aqm") is aqm_rng   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are namespaced under ``name``.

        Useful when a sub-component (e.g. the web workload generator) wants
        to hand out its own sub-streams without risk of colliding with the
        parent's names.
        """
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"


def default_stream(seed: int = 0) -> random.Random:
    """A deterministic fallback stream for components built without a
    :class:`RandomStreams` factory (direct construction in unit tests,
    standalone scripts).

    Harness-built experiments always inject a named stream; this exists so
    the ``rng or default_stream()`` fallback in AQM constructors is still a
    pure function of ``seed`` rather than of process entropy.  Bit-identical
    to the historical ``random.Random(0)`` fallback.
    """
    # repro: allow[DET] this is the sanctioned seeded-fallback constructor
    return random.Random(seed)
