"""Discrete-event simulation substrate: engine, clock, seeded RNG streams."""

from repro.sim.engine import Event, PeriodicTimer, Simulator
from repro.sim.random import RandomStreams

__all__ = ["Simulator", "Event", "PeriodicTimer", "RandomStreams"]
