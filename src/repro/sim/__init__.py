"""Discrete-event simulation substrate: engine, clock, seeded RNG streams,
run watchdog and the optional invariant checker."""

from repro.sim.engine import Event, PeriodicTimer, Simulator, Watchdog
from repro.sim.invariants import InvariantChecker
from repro.sim.random import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "PeriodicTimer",
    "Watchdog",
    "InvariantChecker",
    "RandomStreams",
]
