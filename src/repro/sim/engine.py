"""Discrete-event simulation engine.

This is the substrate that replaces the paper's physical Linux testbed
(Figure 10).  It is a classic calendar-queue simulator: a binary heap of
timestamped events, a virtual clock, and helpers for one-shot and periodic
callbacks.  Everything else in the repository (links, queues, TCP senders,
AQM update timers) is driven by this engine.

Determinism
-----------
Events scheduled for the same timestamp fire in scheduling order (a
monotonic sequence number breaks ties), so a simulation with a fixed seed
is exactly reproducible run-to-run and platform-to-platform.  Heap
compaction (below) only ever removes cancelled events and re-heapifies;
the (time, seq) total order means the pop sequence is unchanged, so
compaction never perturbs results.

Cancelled events
----------------
Cancellation is lazy: a cancelled event stays in the heap and is skipped
when popped.  Workloads that re-arm timers constantly (every TCP ACK
cancels and reschedules the retransmission timer) can accumulate large
numbers of dead entries, inflating every push/pop.  The simulator counts
cancellations and compacts the heap in place once the dead fraction
crosses a threshold, keeping heap operations proportional to *live*
events.

Event batching
--------------
A component that knows its *own* next event time can avoid the heap
entirely: inside a callback it may call :meth:`Simulator.peek` to see
when the next foreign event is due and, if its continuation sorts
strictly before that (and within the current :attr:`Simulator.horizon`),
handle it inline via :meth:`Simulator.advance_to` instead of scheduling
it.  The bottleneck :class:`~repro.net.link.Link` drains back-to-back
packet transmissions this way, and :class:`~repro.net.pipe.Pipe` keeps
its in-flight packets on an *arrival train* served by a single pending
heap event instead of one event per packet — which also shrinks the heap
from thousands of entries (every in-flight packet) to a handful, making
every remaining push/pop cheaper.

Bit-exactness rests on two rules.  First, inline handling is only
allowed when the continuation provably sorts before every pending heap
event, so nothing that *would* have fired earlier is displaced.  Second,
batchers draw their sequence numbers from the same counter at the same
points as the unbatched code (:meth:`Simulator.reserve_seq` /
:meth:`Simulator.at_reserved`), so the ``(time, seq)`` identity of every
event — heaped or absorbed — is identical in both modes and every
same-timestamp tie breaks the same way.  A batched run therefore
produces bit-exact results (equal ``digest()``\\ s) for a fixed seed.
Absorbed events are counted in :attr:`Simulator.events_batched`; a batch
forced to stop because a foreign event intervened is counted in
:attr:`Simulator.batch_breaks`.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> sim.schedule(1.5, lambda: fired.append(sim.now))
>>> sim.run(until=10.0)
>>> fired
[1.5]
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Optional, Tuple

from repro.errors import CallbackError, SimulationError, WatchdogExceeded

__all__ = ["Simulator", "Event", "PeriodicTimer", "Watchdog"]


class Event:
    """A scheduled callback.

    Holding a reference to the returned :class:`Event` allows cancellation
    (used e.g. by TCP retransmission timers that are re-armed on every ACK).
    Cancelled events stay in the heap but are skipped when popped; this is
    the standard lazy-deletion scheme and keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Watchdog:
    """Budget limits for a :meth:`Simulator.run` call.

    A runaway simulation (an event loop that keeps rescheduling itself, or
    a scenario far larger than intended) would otherwise consume the whole
    process.  The watchdog bounds one ``run`` call by total events
    processed and/or host wall-clock seconds; exceeding either raises
    :class:`~repro.errors.WatchdogExceeded` with the virtual time reached.

    The wall clock is sampled every :data:`WALL_CHECK_STRIDE` events to
    keep the per-event overhead negligible.
    """

    WALL_CHECK_STRIDE = 1024

    __slots__ = ("max_events", "max_wall_seconds")

    def __init__(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ):
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive (got {max_events})")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise ValueError(
                f"max_wall_seconds must be positive (got {max_wall_seconds})"
            )
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds


class Simulator:
    """Event-driven virtual-time simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.  Defaults to 0.

    Notes
    -----
    The engine makes no assumptions about what the callbacks do; components
    hold a reference to the simulator and schedule their own continuations.
    Time is a float in seconds.  The paper's experiments span at most a few
    hundred seconds at microsecond-scale event granularity, comfortably
    within double precision.
    """

    #: Minimum number of pending cancelled events before a compaction is
    #: considered.  Below this the dead weight is negligible and the scan
    #: would cost more than it saves.
    COMPACT_THRESHOLD = 1024

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._heap: list[Event] = []
        #: Stream lane: (time, seq, fn, args) tuples for batcher
        #: continuations (see :meth:`stream_schedule`).
        self._streams: list = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_pending = 0
        self._compactions = 0
        self._events_batched = 0
        self._batch_breaks = 0
        self._horizon: Optional[float] = None
        self._running = False
        self._watchdog: Optional[Watchdog] = None

    def set_watchdog(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
    ) -> None:
        """Install (or, with no arguments, remove) a run budget.

        Subsequent :meth:`run` calls are each limited to ``max_events``
        processed events and ``max_wall_seconds`` of host time; exceeding
        either raises :class:`~repro.errors.WatchdogExceeded`.
        """
        if max_events is None and max_wall_seconds is None:
            self._watchdog = None
        else:
            self._watchdog = Watchdog(max_events, max_wall_seconds)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        ev = Event(time, next(self._seq), fn, args, sim=self)
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Cancelled-event accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; triggers compaction past the
        threshold once dead entries outnumber live ones."""
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= self.COMPACT_THRESHOLD
            and self._cancelled_pending * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> int:
        """Drop cancelled events from the heap; returns how many were removed.

        The heap list is mutated in place (``run`` holds a local reference
        to it), and re-heapified.  Safe to call at any time, including from
        inside an event callback; pop order is unaffected because events
        are totally ordered by (time, seq).
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [ev for ev in heap if not ev.cancelled]
        removed = before - len(heap)
        if removed:
            heapq.heapify(heap)
            self._compactions += 1
        self._cancelled_pending = 0
        return removed

    # ------------------------------------------------------------------
    # Inline event batching (see module docstring, "Event batching")
    # ------------------------------------------------------------------
    def peek(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the next pending event, or None if idle.

        Considers both the general heap and the stream lane.  Lazily-
        cancelled events at the top of the heap are discarded on the way,
        exactly as the run loop would skip them, so peeking never changes
        which callbacks fire or when.  The ``seq`` lets a batcher compare
        its own *reserved* event identity lexicographically — the exact
        tie-break the dispatch loop applies at equal timestamps.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if not head.cancelled:
                break
            heapq.heappop(heap)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1
        streams = self._streams
        if heap:
            head = heap[0]
            if streams and streams[0][0] <= head.time:
                entry = streams[0]
                if entry[0] < head.time or entry[1] < head.seq:
                    return (entry[0], entry[1])
            return (head.time, head.seq)
        if streams:
            return (streams[0][0], streams[0][1])
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        head = self.peek()
        return None if head is None else head[0]

    def reserve_seq(self) -> int:
        """Claim the sequence number the next scheduled event would get.

        The batching contract: a batcher reserves a seq at *exactly* the
        point the unbatched code would have called :meth:`schedule`, so
        the sequence-number stream — and therefore every same-timestamp
        tie-break — is identical whether events are heaped, streamed or
        absorbed.  A reserved seq is either spent via
        :meth:`stream_schedule` (the batch broke; the continuation waits
        its turn in the stream lane) or dropped (the continuation was
        handled inline via :meth:`advance_to`).
        """
        return next(self._seq)

    def at_reserved(
        self, time: float, seq: int, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule a heap event carrying a seq from :meth:`reserve_seq`.

        The unbatched twin of :meth:`stream_schedule`: components that
        reserve their continuation seq up front use this when batching is
        off, so the event lands in exactly the (time, seq) slot the
        batched run would have given it.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        ev = Event(time, seq, fn, args, sim=self)
        heapq.heappush(self._heap, ev)
        return ev

    def stream_schedule(
        self, time: float, seq: int, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Schedule a batcher continuation in the stream lane.

        The stream lane is a second, small heap of plain ``(time, seq,
        fn, args)`` tuples that the dispatch loop merges with the general
        event heap in exact ``(time, seq)`` order.  Batchers (the link's
        transmission drain, pipe arrival trains) route their per-packet
        continuations here: tuples compare in C (no :meth:`Event.__lt__`
        round-trips), nothing is allocated per event, and the lane stays
        a few entries deep — one pending continuation per batcher —
        regardless of how many packets are in flight.  Entries cannot be
        cancelled; ``seq`` must come from :meth:`reserve_seq` so the
        merged order is identical to the unbatched schedule.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        heapq.heappush(self._streams, (time, seq, fn, args))

    def advance_to(self, time: float) -> None:
        """Move the clock forward inside a callback, absorbing one event.

        This is the event-batching primitive: a component that has proven
        (via :meth:`peek` and :attr:`horizon`) that nothing else can fire
        before ``time`` may advance the clock itself and handle its
        continuation inline instead of scheduling it.  Each call counts
        one absorbed heap event in :attr:`events_batched`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot advance backwards to t={time} from t={self.now}"
            )
        self.now = time
        self._events_batched += 1

    def note_batch_break(self) -> None:
        """Record that a batch had to stop because an event intervened.

        Called by batching components (the link) when they fall back to
        scheduling a real heap event mid-drain; exposed as
        :attr:`batch_breaks` so batching efficiency is observable.
        """
        self._batch_breaks += 1

    @property
    def horizon(self) -> Optional[float]:
        """The ``until`` bound of the :meth:`run` call currently executing.

        ``None`` outside :meth:`run` (including :meth:`step`), which
        disables inline batching — a batcher may never advance the clock
        past the point the run loop has been asked to stop at.
        """
        return self._horizon

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> "PeriodicTimer":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled.

        The first firing is after ``start_delay`` (default: one interval).
        Used for AQM update timers (the paper's ``T`` = 32 ms / 16 ms).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval})")
        timer = PeriodicTimer(self, interval, fn, args)
        timer.start(start_delay if start_delay is not None else interval)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Process events in timestamp order until the clock reaches ``until``.

        The clock is left exactly at ``until`` so back-to-back ``run`` calls
        compose: ``run(10); run(20)`` is equivalent to ``run(20)``.

        If a callback raises, the exception propagates wrapped in a
        :class:`~repro.errors.CallbackError` carrying the event's virtual
        time and callback name (structured :class:`SimulationError`\\ s pass
        through with their sim-time filled in); ``_running`` is always
        reset so the simulator stays usable, with the clock left at the
        failing event's time.
        """
        if until < self.now:
            raise ValueError(f"cannot run backwards to t={until} from t={self.now}")
        watchdog = self._watchdog
        event_budget = (
            self._events_processed + watchdog.max_events
            if watchdog is not None and watchdog.max_events is not None
            else None
        )
        wall_limit = watchdog.max_wall_seconds if watchdog is not None else None
        # repro: allow[DET] watchdog wall-time budget; never feeds simulation state
        wall_start = time.monotonic() if wall_limit is not None else 0.0
        self._running = True
        self._horizon = until
        # Hot loop: the engine spends essentially all of a simulation here,
        # so the per-event work is kept to heap ops + the callback itself.
        # Heap, pop and clock access are bound to locals, the dispatch
        # wrapper is inlined (one fewer Python frame per event), and the
        # budget checks are single comparisons that short-circuit when no
        # watchdog is installed.  The general event heap and the stream
        # lane (batcher continuations, see stream_schedule) are merged in
        # exact (time, seq) order.
        heap = self._heap
        streams = self._streams
        heappop = heapq.heappop
        # repro: allow[DET] hot-loop local for the watchdog's wall-time check only
        monotonic = time.monotonic
        stride = Watchdog.WALL_CHECK_STRIDE
        processed = self._events_processed
        fn: Optional[Callable[..., Any]] = None
        try:
            while True:
                while heap and heap[0].cancelled:
                    heappop(heap)
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                if streams and (
                    not heap
                    or streams[0][0] < heap[0].time
                    or (
                        streams[0][0] == heap[0].time
                        and streams[0][1] < heap[0].seq
                    )
                ):
                    entry = streams[0]
                    t = entry[0]
                    if t > until:
                        break
                    heappop(streams)
                    fn = entry[2]
                    self.now = t
                    fn(*entry[3])
                elif heap:
                    ev = heap[0]
                    t = ev.time
                    if t > until:
                        break
                    heappop(heap)
                    fn = ev.fn
                    self.now = t
                    fn(*ev.args)
                else:
                    break
                processed += 1
                if event_budget is not None and processed >= event_budget:
                    raise WatchdogExceeded(
                        f"event budget of {watchdog.max_events} events exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"events_processed": processed},
                    )
                if (
                    wall_limit is not None
                    and processed % stride == 0
                    and monotonic() - wall_start > wall_limit
                ):
                    raise WatchdogExceeded(
                        f"wall-clock budget of {wall_limit}s exhausted "
                        f"before reaching t={until}",
                        sim_time=self.now,
                        component="Simulator",
                        context={"wall_seconds": monotonic() - wall_start},
                    )
            self.now = until
        except SimulationError as exc:
            # Already structured (watchdog, invariant checker, nested
            # engine, ...); just fill in the virtual time if the raiser
            # could not.  self.now is preferred over the event's own time:
            # a batching callback may have advanced the clock past it.
            if exc.sim_time is None and fn is not None:
                exc.sim_time = self.now
            raise
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", repr(fn)
            )
            raise CallbackError(
                f"event callback {name!r} raised {type(exc).__name__}: {exc}",
                sim_time=self.now,
                callback=name,
                component="Simulator",
            ) from exc
        finally:
            self._events_processed = processed
            self._running = False
            self._horizon = None

    def step(self) -> bool:
        """Process a single event.  Returns False when nothing is pending.

        Merges the event heap and the stream lane exactly as :meth:`run`
        does.  No run horizon is in effect, so batchers cannot absorb
        events inline — each continuation is dispatched one per call.
        Callback failures receive the same structured wrapping as in
        :meth:`run`.
        """
        heap = self._heap
        streams = self._streams
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            if self._cancelled_pending > 0:
                self._cancelled_pending -= 1
        if streams and (
            not heap
            or streams[0][0] < heap[0].time
            or (streams[0][0] == heap[0].time and streams[0][1] < heap[0].seq)
        ):
            when, _seq, fn, args = heapq.heappop(streams)
            self.now = when
            self._dispatch(fn, args, when)
            self._events_processed += 1
            return True
        if heap:
            ev = heapq.heappop(heap)
            self.now = ev.time
            self._dispatch(ev.fn, ev.args, ev.time)
            self._events_processed += 1
            return True
        return False

    def _dispatch(self, fn: Callable[..., Any], args: tuple, when: float) -> None:
        """Run one callback, converting failures into structured errors."""
        try:
            fn(*args)
        except SimulationError as exc:
            # Already structured (invariant checker, nested engine, ...);
            # just fill in the virtual time if the raiser could not.
            if exc.sim_time is None:
                exc.sim_time = when
            raise
        except Exception as exc:
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", repr(fn)
            )
            raise CallbackError(
                f"event callback {name!r} raised {type(exc).__name__}: {exc}",
                sim_time=when,
                callback=name,
                component="Simulator",
            ) from exc

    @property
    def pending_events(self) -> int:
        """Number of events still queued — heap entries (including
        lazily-cancelled ones) plus pending stream-lane continuations."""
        return len(self._heap) + len(self._streams)

    @property
    def cancelled_pending(self) -> int:
        """Lazily-cancelled events still sitting in the heap.

        An upper bound: events cancelled *after* they fired (or after the
        heap was already drained of them) are counted until the next
        compaction resets the tally.
        """
        return self._cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed so far."""
        return self._compactions

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def events_batched(self) -> int:
        """Heap events absorbed inline by batching (:meth:`advance_to`).

        ``events_processed + events_batched`` is the workload's *logical*
        event count — what an unbatched run would have dispatched.
        """
        return self._events_batched

    @property
    def batch_breaks(self) -> int:
        """Times a batch stopped early because a foreign event intervened."""
        return self._batch_breaks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self.now:.6f} pending={len(self._heap)}>"


class PeriodicTimer:
    """Re-arming timer produced by :meth:`Simulator.every`."""

    __slots__ = (
        "_sim", "interval", "_fn", "_args", "_event", "_stopped", "fires", "_jitter",
    )

    def __init__(self, sim: Simulator, interval: float, fn: Callable[..., Any], args: tuple):
        self._sim = sim
        self.interval = interval
        self._fn = fn
        self._args = args
        self._event: Optional[Event] = None
        self._stopped = False
        self.fires = 0
        self._jitter: Optional[Callable[[], float]] = None

    def start(self, delay: float) -> None:
        self._event = self._sim.schedule(delay, self._fire)

    def set_jitter(self, jitter: Optional[Callable[[], float]]) -> None:
        """Install (or clear, with ``None``) a per-firing delay perturbation.

        ``jitter()`` is sampled before each re-arm and added to the
        nominal interval; the result is floored at 0.  Used by the fault
        injector to model an AQM update timer that drifts under load.
        """
        self._jitter = jitter

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fires += 1
        self._fn(*self._args)
        if not self._stopped:
            delay = self.interval
            if self._jitter is not None:
                delay = max(0.0, delay + self._jitter())
            self._event = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the timer; pending firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped
